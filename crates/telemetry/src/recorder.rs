//! The recording probe: per-thread rings + exact counters + residual trace.

use crate::ring::EventRing;
use crate::trace::{CheckpointRecord, ResidualSample, SolveTrace};
use crate::{Event, FaultKind, FaultRecord, Phase, Probe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on grid (level) ids tracked by the exact correction
/// counters. AMG hierarchies in this workspace have well under 64 levels.
const MAX_GRIDS: usize = 64;

/// A [`Probe`] that records events into per-thread rings.
///
/// Hot-path recording (corrections, phases) is lock-free: thread `t` writes
/// only to ring `t`. The exact per-grid correction counters are relaxed
/// atomic increments (cheap, and exact even when rings overwrite). Only the
/// low-rate residual trace — fed by the solver's monitor thread, a few
/// hundred samples per solve — takes a lock.
pub struct TelemetryProbe {
    rings: Vec<EventRing>,
    corrections: Vec<AtomicU64>,
    residuals: Mutex<Vec<ResidualSample>>,
    faults: Mutex<Vec<FaultRecord>>,
    checkpoints: Mutex<Vec<CheckpointRecord>>,
}

impl TelemetryProbe {
    /// A probe for up to `n_threads` recording threads, each with a ring of
    /// `capacity` events.
    pub fn new(n_threads: usize, capacity: usize) -> Self {
        TelemetryProbe {
            rings: (0..n_threads.max(1)).map(|_| EventRing::new(capacity)).collect(),
            corrections: (0..MAX_GRIDS).map(|_| AtomicU64::new(0)).collect(),
            residuals: Mutex::new(Vec::new()),
            faults: Mutex::new(Vec::new()),
            checkpoints: Mutex::new(Vec::new()),
        }
    }

    /// A probe sized for a typical solve: 16 Ki events per thread.
    pub fn with_threads(n_threads: usize) -> Self {
        TelemetryProbe::new(n_threads, 16 * 1024)
    }

    /// Number of rings (recording threads) this probe supports.
    pub fn n_threads(&self) -> usize {
        self.rings.len()
    }

    /// Merges all rings into a [`SolveTrace`], clearing the recorder.
    ///
    /// Takes `&mut self`, which guarantees every recording thread has been
    /// joined (they held `&self`).
    pub fn take_trace(&mut self) -> SolveTrace {
        let mut dropped = 0;
        let mut events: Vec<Event> = Vec::new();
        for ring in &mut self.rings {
            dropped += ring.dropped();
            events.extend(ring.drain());
        }
        let n_grids = self
            .corrections
            .iter()
            .rposition(|c| c.load(Ordering::Relaxed) > 0)
            .map_or(0, |p| p + 1);
        let counts: Vec<u64> =
            self.corrections[..n_grids].iter().map(|c| c.swap(0, Ordering::Relaxed)).collect();
        let residuals = std::mem::take(&mut *self.residuals.lock().unwrap());
        let faults = std::mem::take(&mut *self.faults.lock().unwrap());
        let mut checkpoints = std::mem::take(&mut *self.checkpoints.lock().unwrap());
        checkpoints.sort_by_key(|c| c.t_ns);
        let mut trace = SolveTrace::from_events(events, &counts, residuals, dropped, faults);
        trace.checkpoints = checkpoints;
        trace
    }
}

impl Probe for TelemetryProbe {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn correction(&self, thread: usize, grid: usize, index: usize, t_ns: u64, local_res: f64) {
        if grid < MAX_GRIDS {
            self.corrections[grid].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ring) = self.rings.get(thread) {
            // SAFETY: the Probe contract — `thread` is the caller's own
            // global rank, so each ring has a single writer; the merge in
            // `take_trace` requires `&mut self`, after threads are joined.
            unsafe {
                ring.push(Event::Correction {
                    grid: grid as u32,
                    index: index as u32,
                    t_ns,
                    local_res,
                });
            }
        }
    }

    #[inline]
    fn phase(&self, thread: usize, grid: usize, phase: Phase, start_ns: u64, dur_ns: u64) {
        if let Some(ring) = self.rings.get(thread) {
            // SAFETY: as in `correction`.
            unsafe {
                ring.push(Event::Phase { grid: grid as u32, phase, start_ns, dur_ns });
            }
        }
    }

    #[inline]
    fn residual_sample(&self, t_ns: u64, relres: f64) {
        self.residuals.lock().unwrap().push(ResidualSample { t_ns, relres });
    }

    #[inline]
    fn fault(&self, t_ns: u64, kind: FaultKind) {
        self.faults.lock().unwrap().push(FaultRecord { t_ns, kind });
    }

    #[inline]
    fn checkpoint(&self, t_ns: u64, attempt: u32, relres: f64, restored: bool) {
        self.checkpoints.lock().unwrap().push(CheckpointRecord { t_ns, attempt, relres, restored });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges_across_threads() {
        let mut probe = TelemetryProbe::new(4, 128);
        std::thread::scope(|s| {
            let probe = &probe;
            for t in 0..4usize {
                s.spawn(move || {
                    for i in 0..10usize {
                        probe.correction(t, t % 2, i, (t * 100 + i) as u64, f64::NAN);
                        probe.phase(t, t % 2, Phase::Smooth, i as u64, 5);
                    }
                });
            }
            probe.residual_sample(1, 0.5);
            probe.residual_sample(2, 0.25);
            probe.fault(3, FaultKind::GuardTripped { grid: 0 });
            probe.checkpoint(4, 0, 0.25, false);
        });
        let trace = probe.take_trace();
        assert_eq!(trace.grid_corrections(), vec![20, 20]);
        assert_eq!(trace.phase_totals[Phase::Smooth.index()].count, 40);
        assert_eq!(trace.residual_history.len(), 2);
        assert_eq!(
            trace.faults,
            vec![FaultRecord { t_ns: 3, kind: FaultKind::GuardTripped { grid: 0 } }]
        );
        assert_eq!(
            trace.checkpoints,
            vec![CheckpointRecord { t_ns: 4, attempt: 0, relres: 0.25, restored: false }]
        );
        assert_eq!(trace.dropped_events, 0);
        // The recorder is cleared for reuse.
        assert!(probe.take_trace().grid_corrections().is_empty());
    }

    #[test]
    fn out_of_range_thread_ids_are_ignored() {
        let mut probe = TelemetryProbe::new(1, 8);
        probe.correction(5, 0, 0, 0, f64::NAN); // counter still counts
        let trace = probe.take_trace();
        assert_eq!(trace.grid_corrections(), vec![1]);
        assert!(trace.grids[0].events.is_empty());
    }
}
