//! A fixed-capacity, single-writer event ring.
//!
//! Each solver thread owns one ring: recording is an index computation and
//! two plain stores — no allocation, no locking, no atomic RMW — so the hot
//! path of an asynchronous solve is not perturbed. When the ring is full
//! the oldest events are overwritten (the total push count is kept, so the
//! merge step can report how many were dropped). Rings are merged after the
//! run, when the writer threads have been joined.

use crate::Event;
use std::cell::UnsafeCell;

/// A fixed-capacity overwrite-oldest ring of [`Event`]s.
///
/// # Safety contract
///
/// [`EventRing::push`] is `unsafe`: the ring must have exactly one writer
/// thread at a time, and reads ([`EventRing::drain`], which takes `&mut
/// self`) must be separated from the last write by a happens-before edge
/// (joining the writer thread, as `std::thread::scope` provides).
pub struct EventRing {
    slots: UnsafeCell<Box<[Option<Event>]>>,
    pushed: UnsafeCell<u64>,
}

// SAFETY: the unsafe `push` contract (single writer, joined before reads)
// provides the synchronisation that the type itself does not.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// A ring holding at most `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            slots: UnsafeCell::new(vec![None; capacity].into_boxed_slice()),
            pushed: UnsafeCell::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        // SAFETY: the length is immutable after construction.
        unsafe { (&*self.slots.get()).len() }
    }

    /// Records an event, overwriting the oldest if full.
    ///
    /// # Safety
    /// Only the ring's designated writer thread may call this, and no other
    /// thread may be reading concurrently (see the type-level contract).
    #[inline]
    pub unsafe fn push(&self, event: Event) {
        let pushed = &mut *self.pushed.get();
        let slots = &mut *self.slots.get();
        let idx = (*pushed % slots.len() as u64) as usize;
        slots[idx] = Some(event);
        *pushed += 1;
    }

    /// Total number of events ever pushed (including overwritten ones).
    pub fn pushed(&mut self) -> u64 {
        unsafe { *self.pushed.get() }
    }

    /// Number of events lost to overwriting.
    pub fn dropped(&mut self) -> u64 {
        let cap = self.capacity() as u64;
        self.pushed().saturating_sub(cap)
    }

    /// The retained events in push order (oldest first), clearing the ring.
    pub fn drain(&mut self) -> Vec<Event> {
        let pushed = unsafe { *self.pushed.get() };
        let slots = unsafe { &mut *self.slots.get() };
        let cap = slots.len() as u64;
        let retained = pushed.min(cap) as usize;
        // Oldest retained event sits at `pushed % cap` once wrapped.
        let start = if pushed > cap { (pushed % cap) as usize } else { 0 };
        let mut out = Vec::with_capacity(retained);
        for off in 0..retained {
            let idx = (start + off) % slots.len();
            if let Some(e) = slots[idx].take() {
                out.push(e);
            }
        }
        unsafe { *self.pushed.get() = 0 };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correction(i: u32) -> Event {
        Event::Correction { grid: 0, index: i, t_ns: i as u64, local_res: f64::NAN }
    }

    fn indices(events: &[Event]) -> Vec<u32> {
        events
            .iter()
            .map(|e| match e {
                Event::Correction { index, .. } => *index,
                Event::Phase { .. } => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut ring = EventRing::new(8);
        for i in 0..5 {
            unsafe { ring.push(correction(i)) };
        }
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(indices(&ring.drain()), vec![0, 1, 2, 3, 4]);
        // Drain clears.
        assert_eq!(ring.pushed(), 0);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let mut ring = EventRing::new(4);
        for i in 0..11 {
            unsafe { ring.push(correction(i)) };
        }
        assert_eq!(ring.pushed(), 11);
        assert_eq!(ring.dropped(), 7);
        // The four newest, oldest first.
        assert_eq!(indices(&ring.drain()), vec![7, 8, 9, 10]);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut ring = EventRing::new(3);
        for i in 0..3 {
            unsafe { ring.push(correction(i)) };
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(indices(&ring.drain()), vec![0, 1, 2]);
        // One past capacity drops exactly one.
        for i in 0..4 {
            unsafe { ring.push(correction(i)) };
        }
        assert_eq!(ring.dropped(), 1);
        assert_eq!(indices(&ring.drain()), vec![1, 2, 3]);
    }

    #[test]
    fn capacity_one_always_holds_newest() {
        let mut ring = EventRing::new(1);
        for i in 0..100 {
            unsafe { ring.push(correction(i)) };
        }
        assert_eq!(indices(&ring.drain()), vec![99]);
    }
}
