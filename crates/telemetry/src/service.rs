//! Telemetry for the long-lived solver service: hierarchy-cache events and
//! aggregate service counters.
//!
//! The service (`asyncmg-service`) records one [`CacheEvent`] per cache
//! decision and keeps running [`ServiceStats`]. Both are deterministic
//! functions of the request stream — no timestamps — so a seeded service
//! fuzz case replays to identical event logs and stats, and the harness can
//! fold them into a fingerprint.

/// One hierarchy-cache decision, in request order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// A request's matrix was already cached (setup skipped).
    Hit {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A request's matrix was not cached; a hierarchy was built.
    Miss {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A cached hierarchy was evicted to stay under the capacity cap.
    Evict {
        /// Content fingerprint of the evicted matrix.
        fingerprint: u64,
    },
}

impl CacheEvent {
    /// Stable lowercase name (used in JSON exports and fingerprints).
    pub fn name(self) -> &'static str {
        match self {
            CacheEvent::Hit { .. } => "hit",
            CacheEvent::Miss { .. } => "miss",
            CacheEvent::Evict { .. } => "evict",
        }
    }

    /// The matrix fingerprint this event concerns.
    pub fn fingerprint(self) -> u64 {
        match self {
            CacheEvent::Hit { fingerprint }
            | CacheEvent::Miss { fingerprint }
            | CacheEvent::Evict { fingerprint } => fingerprint,
        }
    }
}

/// Aggregate counters of a solver service, exported for scraping.
///
/// All counters are monotone over the service's lifetime except
/// `queue_depth`, which is the current gauge value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batch dispatches whose matrix hit the hierarchy cache.
    pub cache_hits: u64,
    /// Batch dispatches whose matrix required a fresh AMG setup.
    pub cache_misses: u64,
    /// Hierarchies evicted under the capacity cap.
    pub evictions: u64,
    /// Batches dispatched (one blocked solve each).
    pub batches: u64,
    /// Total right-hand sides solved across all batches.
    pub batched_rhs: u64,
    /// Requests completed with a solve outcome.
    pub completed: u64,
    /// Requests rejected because their deadline had already passed or could
    /// not be met.
    pub rejected_deadline: u64,
    /// Requests rejected at submission because the queue was full.
    pub rejected_queue_full: u64,
    /// Current number of queued (not yet dispatched) requests.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
}

impl ServiceStats {
    /// Hierarchy-cache lookups (one per dispatched batch).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// JSON object (stable key order), for dashboards and bench output.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, ",
                "\"batches\": {}, \"batched_rhs\": {}, \"completed\": {}, ",
                "\"rejected_deadline\": {}, \"rejected_queue_full\": {}, ",
                "\"queue_depth\": {}, \"max_queue_depth\": {}}}"
            ),
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.batches,
            self.batched_rhs,
            self.completed,
            self.rejected_deadline,
            self.rejected_queue_full,
            self.queue_depth,
            self.max_queue_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = CacheEvent::Hit { fingerprint: 7 };
        assert_eq!(e.name(), "hit");
        assert_eq!(e.fingerprint(), 7);
        assert_eq!(CacheEvent::Miss { fingerprint: 1 }.name(), "miss");
        assert_eq!(CacheEvent::Evict { fingerprint: 2 }.name(), "evict");
    }

    #[test]
    fn stats_json_is_balanced_and_complete() {
        let s =
            ServiceStats { cache_hits: 3, cache_misses: 2, queue_depth: 1, ..Default::default() };
        let j = s.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"cache_hits\": 3"));
        assert!(j.contains("\"queue_depth\": 1"));
        assert_eq!(s.cache_lookups(), 5);
    }
}
