//! Telemetry for the long-lived solver service: hierarchy-cache events and
//! aggregate service counters.
//!
//! The service (`asyncmg-service`) records one [`CacheEvent`] per cache
//! decision and keeps running [`ServiceStats`]. Both are deterministic
//! functions of the request stream — no timestamps — so a seeded service
//! fuzz case replays to identical event logs and stats, and the harness can
//! fold them into a fingerprint.

/// One hierarchy-cache decision, in request order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// A request's matrix was already cached (setup skipped).
    Hit {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A request's matrix was not cached; a hierarchy was built.
    Miss {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A cached hierarchy was evicted to stay under the capacity cap.
    Evict {
        /// Content fingerprint of the evicted matrix.
        fingerprint: u64,
    },
    /// A cached hierarchy failed its integrity checksum and was thrown
    /// away (a rebuild follows as an ordinary miss).
    Quarantine {
        /// Content fingerprint of the poisoned matrix.
        fingerprint: u64,
    },
}

impl CacheEvent {
    /// Stable lowercase name (used in JSON exports and fingerprints).
    pub fn name(self) -> &'static str {
        match self {
            CacheEvent::Hit { .. } => "hit",
            CacheEvent::Miss { .. } => "miss",
            CacheEvent::Evict { .. } => "evict",
            CacheEvent::Quarantine { .. } => "quarantine",
        }
    }

    /// The matrix fingerprint this event concerns.
    pub fn fingerprint(self) -> u64 {
        match self {
            CacheEvent::Hit { fingerprint }
            | CacheEvent::Miss { fingerprint }
            | CacheEvent::Evict { fingerprint }
            | CacheEvent::Quarantine { fingerprint } => fingerprint,
        }
    }
}

/// One fault-plane decision of the solver service, in decision order.
///
/// Like [`CacheEvent`], every field is deterministic under a virtual
/// clock, so a seeded chaos run replays to an identical event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceEvent {
    /// Repeated failures opened the circuit breaker of a fingerprint:
    /// its requests fail fast until `until_ns`.
    BreakerOpened {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
        /// Service-clock nanoseconds at which a half-open probe is allowed.
        until_ns: u64,
        /// Consecutive failures that tripped the breaker.
        failures: u32,
    },
    /// The breaker's backoff elapsed; the next batch of this fingerprint
    /// runs as a probe.
    BreakerHalfOpen {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A half-open probe succeeded; the fingerprint serves normally again.
    BreakerClosed {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A cached hierarchy failed its integrity checksum; it was dropped
    /// and rebuilt.
    Quarantined {
        /// Content fingerprint of the matrix.
        fingerprint: u64,
    },
    /// A queued request was shed at the overload high-water mark.
    Shed {
        /// Ticket id of the shed request.
        ticket: u64,
    },
    /// A sick batch column was retried solo down the degradation ladder.
    Rescued {
        /// Ticket id of the rescued request.
        ticket: u64,
        /// Session attempts the rescue took.
        attempts: u32,
        /// Whether the rescue reached its goal.
        converged: bool,
    },
}

impl ServiceEvent {
    /// Stable lowercase name (used in JSON exports and fingerprints).
    pub fn name(self) -> &'static str {
        match self {
            ServiceEvent::BreakerOpened { .. } => "breaker_opened",
            ServiceEvent::BreakerHalfOpen { .. } => "breaker_half_open",
            ServiceEvent::BreakerClosed { .. } => "breaker_closed",
            ServiceEvent::Quarantined { .. } => "quarantined",
            ServiceEvent::Shed { .. } => "shed",
            ServiceEvent::Rescued { .. } => "rescued",
        }
    }

    /// A stable numeric digest of the event's payload, for fingerprinting
    /// (fields folded in declaration order).
    pub fn key(self) -> u64 {
        match self {
            ServiceEvent::BreakerOpened { fingerprint, until_ns, failures } => {
                fingerprint ^ until_ns.rotate_left(17) ^ (failures as u64).rotate_left(41)
            }
            ServiceEvent::BreakerHalfOpen { fingerprint }
            | ServiceEvent::BreakerClosed { fingerprint }
            | ServiceEvent::Quarantined { fingerprint } => fingerprint,
            ServiceEvent::Shed { ticket } => ticket,
            ServiceEvent::Rescued { ticket, attempts, converged } => {
                ticket ^ (attempts as u64).rotate_left(17) ^ (converged as u64).rotate_left(41)
            }
        }
    }
}

/// Aggregate counters of a solver service, exported for scraping.
///
/// All counters are monotone over the service's lifetime except
/// `queue_depth`, which is the current gauge value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batch dispatches whose matrix hit the hierarchy cache.
    pub cache_hits: u64,
    /// Batch dispatches whose matrix required a fresh AMG setup.
    pub cache_misses: u64,
    /// Hierarchies evicted under the capacity cap.
    pub evictions: u64,
    /// Batches dispatched (one blocked solve each).
    pub batches: u64,
    /// Total right-hand sides solved across all batches.
    pub batched_rhs: u64,
    /// Requests completed with a solve outcome.
    pub completed: u64,
    /// Requests rejected because their deadline had already passed or could
    /// not be met.
    pub rejected_deadline: u64,
    /// Requests rejected at submission because the queue was full.
    pub rejected_queue_full: u64,
    /// Current number of queued (not yet dispatched) requests.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
    /// Circuit-breaker open transitions (closed/half-open → open).
    pub breaker_opened: u64,
    /// Circuit-breaker close transitions (half-open probe succeeded).
    pub breaker_closed: u64,
    /// Requests rejected fail-fast because their fingerprint's breaker was
    /// open.
    pub rejected_circuit_open: u64,
    /// Cached hierarchies quarantined (checksum mismatch) and rebuilt.
    pub quarantined: u64,
    /// Requests shed at the overload high-water mark.
    pub shed: u64,
    /// Sick batch columns retried solo down the degradation ladder.
    pub rescued: u64,
    /// Rescues that still failed after the ladder was exhausted.
    pub rescue_failed: u64,
    /// Total rescue-session attempts beyond each rescue's first.
    pub retries: u64,
    /// Resolved outcomes evicted unclaimed to bound the resolved store.
    pub resolved_evicted: u64,
}

impl ServiceStats {
    /// Hierarchy-cache lookups (one per dispatched batch).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// JSON object (stable key order), for dashboards and bench output.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, ",
                "\"batches\": {}, \"batched_rhs\": {}, \"completed\": {}, ",
                "\"rejected_deadline\": {}, \"rejected_queue_full\": {}, ",
                "\"queue_depth\": {}, \"max_queue_depth\": {}, ",
                "\"breaker_opened\": {}, \"breaker_closed\": {}, ",
                "\"rejected_circuit_open\": {}, \"quarantined\": {}, ",
                "\"shed\": {}, \"rescued\": {}, \"rescue_failed\": {}, ",
                "\"retries\": {}, \"resolved_evicted\": {}}}"
            ),
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.batches,
            self.batched_rhs,
            self.completed,
            self.rejected_deadline,
            self.rejected_queue_full,
            self.queue_depth,
            self.max_queue_depth,
            self.breaker_opened,
            self.breaker_closed,
            self.rejected_circuit_open,
            self.quarantined,
            self.shed,
            self.rescued,
            self.rescue_failed,
            self.retries,
            self.resolved_evicted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = CacheEvent::Hit { fingerprint: 7 };
        assert_eq!(e.name(), "hit");
        assert_eq!(e.fingerprint(), 7);
        assert_eq!(CacheEvent::Miss { fingerprint: 1 }.name(), "miss");
        assert_eq!(CacheEvent::Evict { fingerprint: 2 }.name(), "evict");
        assert_eq!(CacheEvent::Quarantine { fingerprint: 3 }.name(), "quarantine");
        assert_eq!(CacheEvent::Quarantine { fingerprint: 3 }.fingerprint(), 3);
    }

    #[test]
    fn service_event_names_and_keys_are_stable() {
        let events = [
            ServiceEvent::BreakerOpened { fingerprint: 1, until_ns: 2, failures: 3 },
            ServiceEvent::BreakerHalfOpen { fingerprint: 1 },
            ServiceEvent::BreakerClosed { fingerprint: 1 },
            ServiceEvent::Quarantined { fingerprint: 1 },
            ServiceEvent::Shed { ticket: 9 },
            ServiceEvent::Rescued { ticket: 9, attempts: 2, converged: true },
        ];
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "breaker_opened",
                "breaker_half_open",
                "breaker_closed",
                "quarantined",
                "shed",
                "rescued"
            ]
        );
        // Keys distinguish payloads of the same variant.
        assert_ne!(
            ServiceEvent::Rescued { ticket: 9, attempts: 2, converged: true }.key(),
            ServiceEvent::Rescued { ticket: 9, attempts: 2, converged: false }.key()
        );
        assert_ne!(
            ServiceEvent::BreakerOpened { fingerprint: 1, until_ns: 2, failures: 3 }.key(),
            ServiceEvent::BreakerOpened { fingerprint: 1, until_ns: 3, failures: 3 }.key()
        );
    }

    #[test]
    fn stats_json_is_balanced_and_complete() {
        let s = ServiceStats {
            cache_hits: 3,
            cache_misses: 2,
            queue_depth: 1,
            breaker_opened: 4,
            shed: 5,
            resolved_evicted: 6,
            ..Default::default()
        };
        let j = s.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"cache_hits\": 3"));
        assert!(j.contains("\"queue_depth\": 1"));
        assert!(j.contains("\"breaker_opened\": 4"));
        assert!(j.contains("\"shed\": 5"));
        assert!(j.contains("\"resolved_evicted\": 6"));
        assert_eq!(s.cache_lookups(), 5);
    }
}
