//! The merged outcome of an instrumented solve, and its JSON export.

use crate::{Event, FaultRecord, Phase};

/// One observation of the global relative residual.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResidualSample {
    /// Nanoseconds since the solve epoch.
    pub t_ns: u64,
    /// Relative residual 2-norm at that instant.
    pub relres: f64,
}

/// One correction in a grid's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrectionRecord {
    /// The grid's own correction counter at this event.
    pub index: u32,
    /// Nanoseconds since the solve epoch.
    pub t_ns: u64,
    /// Team-local residual norm if cheaply available, else `NaN`.
    pub local_res: f64,
}

/// The correction timeline of one grid.
#[derive(Clone, Debug, Default)]
pub struct GridTimeline {
    /// Exact number of corrections performed (counter-backed: correct even
    /// when ring overwrite dropped some events).
    pub corrections: u64,
    /// The retained correction events, in time order.
    pub events: Vec<CorrectionRecord>,
}

/// Accumulated time of one phase across all threads.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotal {
    /// Number of timed occurrences.
    pub count: u64,
    /// Total duration in nanoseconds.
    pub total_ns: u64,
}

/// One resilience checkpoint event: a snapshot taken (`restored == false`)
/// or the iterate restored from the best known snapshot (`restored ==
/// true`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointRecord {
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// The session attempt this checkpoint belongs to (0 for plain solves).
    pub attempt: u32,
    /// Relative residual of the snapshot.
    pub relres: f64,
    /// `true` when the event is a rollback *to* a checkpoint rather than
    /// the taking of one.
    pub restored: bool,
}

/// One attempt boundary of a resilience session.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptRecord {
    /// Attempt number (0-based).
    pub index: u32,
    /// Degradation-ladder rung the attempt ran on (stable lowercase name,
    /// e.g. `async_atomic`, `pcg`).
    pub rung: String,
    /// Nanoseconds since the trace epoch at which the attempt started.
    pub start_ns: u64,
    /// Wall-clock duration of the attempt in nanoseconds.
    pub elapsed_ns: u64,
    /// Exact relative residual after the attempt.
    pub relres: f64,
    /// Structured outcome name (`converged`, `max_iterations`, `degraded`,
    /// `faulted`).
    pub outcome: String,
    /// Why the session escalated past this attempt, when it did.
    pub escalation: Option<String>,
}

/// Per-rank message counters of one sharded solve (schema v3 `"messages"`
/// array). Ranks `0..S` are shard workers, rank `S` the hub. The transport
/// invariant `sent == delivered + dropped + overflowed + pending` is
/// checked by the harness oracle, not here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardMessageStats {
    /// Shard rank the counters belong to.
    pub rank: u32,
    /// Messages this rank handed to the transport.
    pub sent: u64,
    /// Messages this rank received.
    pub delivered: u64,
    /// Messages addressed to this rank the transport dropped (lossy or
    /// faulted links).
    pub dropped: u64,
    /// Messages addressed to this rank rejected by a full ring.
    pub overflowed: u64,
    /// Reliable control-plane payloads this rank retransmitted (non-zero
    /// only for the hub of a recovery-armed sharded solve; additive v3
    /// field, absent counts as zero).
    pub retransmits: u64,
}

/// One completed asynchronous residual reduction (schema v3 `"reductions"`
/// array): the epoch's partial norms from every shard arrived and the
/// global relative residual was published.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReductionRecord {
    /// Shard epoch the reduction covers.
    pub epoch: u64,
    /// Published global relative residual.
    pub relres: f64,
    /// Number of partial norms combined (the shard count).
    pub parts: u32,
    /// Nanoseconds since the trace epoch at publication.
    pub t_ns: u64,
}

/// Everything observed during one instrumented solve.
#[derive(Clone, Debug, Default)]
pub struct SolveTrace {
    /// Low-rate global residual trace (monitor thread / sync cycle ends),
    /// in time order.
    pub residual_history: Vec<ResidualSample>,
    /// Per-grid correction timelines, indexed by grid (level) id.
    pub grids: Vec<GridTimeline>,
    /// Phase-time breakdown, indexed like [`Phase::ALL`].
    pub phase_totals: [PhaseTotal; Phase::ALL.len()],
    /// Events lost to ring-buffer overwriting (0 unless a run outgrew its
    /// rings).
    pub dropped_events: u64,
    /// Injected faults and recovery actions, in time order (empty for
    /// fault-free solves).
    pub faults: Vec<FaultRecord>,
    /// Resilience checkpoint events, in time order (empty unless a session
    /// or a checkpoint hook ran).
    pub checkpoints: Vec<CheckpointRecord>,
    /// Resilience-session attempt boundaries, in order (empty for plain
    /// solves).
    pub attempts: Vec<AttemptRecord>,
    /// Per-rank message counters, by rank (empty unless a sharded solve
    /// ran).
    pub messages: Vec<ShardMessageStats>,
    /// Completed residual reductions of a sharded solve, in publication
    /// order — epochs are strictly increasing (empty for non-sharded
    /// solves).
    pub reductions: Vec<ReductionRecord>,
}

impl SolveTrace {
    /// Builds a trace from merged ring events, exact per-grid counters, the
    /// residual history, and the fault log.
    pub fn from_events(
        mut events: Vec<Event>,
        corrections: &[u64],
        residual_history: Vec<ResidualSample>,
        dropped_events: u64,
        mut faults: Vec<FaultRecord>,
    ) -> Self {
        let n_grids = corrections.len().max(
            events
                .iter()
                .map(|e| match e {
                    Event::Correction { grid, .. } | Event::Phase { grid, .. } => {
                        *grid as usize + 1
                    }
                })
                .max()
                .unwrap_or(0),
        );
        events.sort_by_key(|e| match e {
            Event::Correction { t_ns, .. } => *t_ns,
            Event::Phase { start_ns, .. } => *start_ns,
        });
        let mut grids: Vec<GridTimeline> = vec![GridTimeline::default(); n_grids];
        for (g, &c) in corrections.iter().enumerate() {
            grids[g].corrections = c;
        }
        let mut phase_totals = [PhaseTotal::default(); Phase::ALL.len()];
        for e in events {
            match e {
                Event::Correction { grid, index, t_ns, local_res } => {
                    grids[grid as usize].events.push(CorrectionRecord { index, t_ns, local_res });
                }
                Event::Phase { phase, dur_ns, .. } => {
                    let t = &mut phase_totals[phase.index()];
                    t.count += 1;
                    t.total_ns += dur_ns;
                }
            }
        }
        faults.sort_by_key(|f| f.t_ns);
        SolveTrace {
            residual_history,
            grids,
            phase_totals,
            dropped_events,
            faults,
            checkpoints: Vec::new(),
            attempts: Vec::new(),
            messages: Vec::new(),
            reductions: Vec::new(),
        }
    }

    /// Appends `other` (one attempt of a resilience session) onto this
    /// trace, shifting all of its timestamps by `offset_ns` so the merged
    /// timeline stays monotone. Correction counters, phase totals and
    /// dropped-event counts accumulate; event streams concatenate.
    pub fn absorb(&mut self, other: SolveTrace, offset_ns: u64) {
        self.residual_history.extend(
            other
                .residual_history
                .into_iter()
                .map(|s| ResidualSample { t_ns: s.t_ns + offset_ns, ..s }),
        );
        if self.grids.len() < other.grids.len() {
            self.grids.resize(other.grids.len(), GridTimeline::default());
        }
        for (dst, src) in self.grids.iter_mut().zip(other.grids) {
            dst.corrections += src.corrections;
            dst.events.extend(
                src.events.into_iter().map(|e| CorrectionRecord { t_ns: e.t_ns + offset_ns, ..e }),
            );
        }
        for (dst, src) in self.phase_totals.iter_mut().zip(other.phase_totals) {
            dst.count += src.count;
            dst.total_ns += src.total_ns;
        }
        self.dropped_events += other.dropped_events;
        self.faults.extend(
            other.faults.into_iter().map(|f| FaultRecord { t_ns: f.t_ns + offset_ns, ..f }),
        );
        self.checkpoints.extend(
            other
                .checkpoints
                .into_iter()
                .map(|c| CheckpointRecord { t_ns: c.t_ns + offset_ns, ..c }),
        );
        self.attempts.extend(
            other
                .attempts
                .into_iter()
                .map(|a| AttemptRecord { start_ns: a.start_ns + offset_ns, ..a }),
        );
        if self.messages.len() < other.messages.len() {
            self.messages.extend(
                (self.messages.len()..other.messages.len())
                    .map(|rank| ShardMessageStats { rank: rank as u32, ..Default::default() }),
            );
        }
        for (dst, src) in self.messages.iter_mut().zip(other.messages) {
            dst.sent += src.sent;
            dst.delivered += src.delivered;
            dst.dropped += src.dropped;
            dst.overflowed += src.overflowed;
            dst.retransmits += src.retransmits;
        }
        self.reductions.extend(
            other.reductions.into_iter().map(|r| ReductionRecord { t_ns: r.t_ns + offset_ns, ..r }),
        );
    }

    /// Per-grid correction counts (the shape of `AsyncResult::grid_corrections`).
    pub fn grid_corrections(&self) -> Vec<usize> {
        self.grids.iter().map(|g| g.corrections as usize).collect()
    }

    /// The final observed relative residual, if any was sampled.
    pub fn final_relres(&self) -> Option<f64> {
        self.residual_history.last().map(|s| s.relres)
    }

    /// The schema identifier [`SolveTrace::to_json`] emits.
    pub const SCHEMA: &'static str = "asyncmg-trace-v5";

    /// The schema identifier of a serialised trace, if it carries one
    /// (version-compatibility checks of golden files).
    pub fn schema_of(json: &str) -> Option<&str> {
        let tail = json.split("\"schema\"").nth(1)?;
        let tail = tail.split('"').nth(1)?;
        Some(tail)
    }

    /// Serialises the trace to JSON (schema `asyncmg-trace-v5`; see
    /// `docs/telemetry.md`). v4 adds the `"retransmits"` counter to each
    /// `"messages"` entry (v3 added the `"messages"` and `"reductions"`
    /// arrays of the sharded execution model); every v3 field is unchanged,
    /// so consumers keyed on field names still parse newer traces.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\n  \"schema\": \"{}\",\n", Self::SCHEMA));
        out.push_str(&format!("  \"dropped_events\": {},\n", self.dropped_events));

        out.push_str("  \"residual_history\": [");
        for (i, s) in self.residual_history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"t_ns\": {}, \"relres\": {}}}",
                s.t_ns,
                json_f64(s.relres)
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"phase_totals\": [");
        for (i, (ph, t)) in Phase::ALL.iter().zip(&self.phase_totals).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"phase\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
                ph.name(),
                t.count,
                t.total_ns
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"grids\": [");
        for (g, timeline) in self.grids.iter().enumerate() {
            if g > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"grid\": {g}, \"corrections\": {}, \"events\": [",
                timeline.corrections
            ));
            for (i, e) in timeline.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"index\": {}, \"t_ns\": {}, \"local_res\": {}}}",
                    e.index,
                    e.t_ns,
                    json_f64(e.local_res)
                ));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"faults\": [");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"t_ns\": {}, \"kind\": \"{}\"{}}}",
                f.t_ns,
                f.kind.name(),
                fault_detail(f.kind)
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"checkpoints\": [");
        for (i, c) in self.checkpoints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"t_ns\": {}, \"attempt\": {}, \"relres\": {}, \"restored\": {}}}",
                c.t_ns,
                c.attempt,
                json_f64(c.relres),
                c.restored
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"attempts\": [");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let escalation = match &a.escalation {
                Some(reason) => format!("\"{reason}\""),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n    {{\"index\": {}, \"rung\": \"{}\", \"start_ns\": {}, \"elapsed_ns\": {}, \
                 \"relres\": {}, \"outcome\": \"{}\", \"escalation\": {}}}",
                a.index,
                a.rung,
                a.start_ns,
                a.elapsed_ns,
                json_f64(a.relres),
                a.outcome,
                escalation
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"messages\": [");
        for (i, m) in self.messages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rank\": {}, \"sent\": {}, \"delivered\": {}, \"dropped\": {}, \
                 \"overflowed\": {}, \"retransmits\": {}}}",
                m.rank, m.sent, m.delivered, m.dropped, m.overflowed, m.retransmits
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"reductions\": [");
        for (i, r) in self.reductions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"epoch\": {}, \"relres\": {}, \"parts\": {}, \"t_ns\": {}}}",
                r.epoch,
                json_f64(r.relres),
                r.parts,
                r.t_ns
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Kind-specific JSON fields of one fault record (leading comma included).
fn fault_detail(kind: crate::FaultKind) -> String {
    use crate::FaultKind::*;
    match kind {
        Straggler { worker, steps } => format!(", \"worker\": {worker}, \"steps\": {steps}"),
        TeamCrash { team } => format!(", \"team\": {team}"),
        WriteCorrupted { grid }
        | WriteDropped { grid }
        | GuardTripped { grid }
        | Damped { grid }
        | Quarantined { grid }
        | Stalled { grid } => {
            format!(", \"grid\": {grid}")
        }
        ShardDeclaredDead { shard } => format!(", \"shard\": {shard}"),
        RowsAdopted { from, to } => format!(", \"from\": {from}, \"to\": {to}"),
        Rollback | Timeout => String::new(),
    }
}

/// JSON-safe float rendering: finite values in scientific notation, NaN and
/// infinities as `null` (JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> SolveTrace {
        let events = vec![
            Event::Phase { grid: 0, phase: Phase::Smooth, start_ns: 5, dur_ns: 10 },
            Event::Correction { grid: 1, index: 0, t_ns: 20, local_res: f64::NAN },
            Event::Correction { grid: 0, index: 0, t_ns: 10, local_res: 0.5 },
            Event::Phase { grid: 0, phase: Phase::Smooth, start_ns: 30, dur_ns: 7 },
        ];
        SolveTrace::from_events(
            events,
            &[1, 1],
            vec![
                ResidualSample { t_ns: 0, relres: 1.0 },
                ResidualSample { t_ns: 50, relres: 1e-3 },
            ],
            0,
            vec![
                FaultRecord { t_ns: 40, kind: crate::FaultKind::Quarantined { grid: 1 } },
                FaultRecord { t_ns: 15, kind: crate::FaultKind::TeamCrash { team: 1 } },
            ],
        )
    }

    #[test]
    fn events_are_grouped_and_sorted() {
        let t = sample_trace();
        assert_eq!(t.grids.len(), 2);
        assert_eq!(t.grid_corrections(), vec![1, 1]);
        assert_eq!(t.grids[0].events[0].t_ns, 10);
        assert_eq!(t.phase_totals[Phase::Smooth.index()], PhaseTotal { count: 2, total_ns: 17 });
        assert_eq!(t.final_relres(), Some(1e-3));
        // Fault records are sorted by time.
        assert_eq!(t.faults[0].kind, crate::FaultKind::TeamCrash { team: 1 });
        assert_eq!(t.faults[1].kind, crate::FaultKind::Quarantined { grid: 1 });
    }

    #[test]
    fn counters_win_over_retained_events() {
        // Ring overwrite lost events: counters still report the truth.
        let t = SolveTrace::from_events(vec![], &[40, 38], vec![], 12, vec![]);
        assert_eq!(t.grid_corrections(), vec![40, 38]);
        assert_eq!(t.dropped_events, 12);
        assert!(t.faults.is_empty());
    }

    #[test]
    fn json_is_well_formed_and_nan_is_null() {
        let mut trace = sample_trace();
        trace.checkpoints.push(CheckpointRecord {
            t_ns: 25,
            attempt: 0,
            relres: 0.5,
            restored: false,
        });
        trace.attempts.push(AttemptRecord {
            index: 0,
            rung: "async_atomic".into(),
            start_ns: 0,
            elapsed_ns: 60,
            relres: 1e-3,
            outcome: "degraded".into(),
            escalation: Some("degraded".into()),
        });
        trace.messages.push(ShardMessageStats {
            rank: 0,
            sent: 12,
            delivered: 10,
            dropped: 1,
            overflowed: 0,
            retransmits: 2,
        });
        trace.reductions.push(ReductionRecord { epoch: 3, relres: 1e-4, parts: 2, t_ns: 55 });
        let json = trace.to_json();
        assert!(json.contains("\"schema\": \"asyncmg-trace-v5\""));
        assert_eq!(SolveTrace::schema_of(&json), Some(SolveTrace::SCHEMA));
        assert!(json.contains("\"rank\": 0, \"sent\": 12, \"delivered\": 10"));
        assert!(json.contains("\"overflowed\": 0, \"retransmits\": 2"));
        assert!(json.contains("\"epoch\": 3, \"relres\": 1e-4, \"parts\": 2"));
        assert!(json.contains("\"local_res\": null"));
        assert!(json.contains("\"phase\": \"smooth\""));
        assert!(json.contains("\"kind\": \"team_crash\", \"team\": 1"));
        assert!(json.contains("\"kind\": \"quarantined\", \"grid\": 1"));
        assert!(json.contains("\"attempt\": 0, \"relres\": 5e-1, \"restored\": false"));
        assert!(json.contains("\"rung\": \"async_atomic\""));
        assert!(json.contains("\"escalation\": \"degraded\""));
        // Balanced braces/brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn absorb_shifts_and_accumulates() {
        let mut a = sample_trace();
        let mut b = sample_trace();
        b.messages.push(ShardMessageStats { rank: 0, sent: 4, delivered: 3, ..Default::default() });
        b.reductions.push(ReductionRecord { epoch: 0, relres: 0.5, parts: 1, t_ns: 7 });
        b.checkpoints.push(CheckpointRecord { t_ns: 5, attempt: 1, relres: 0.1, restored: true });
        b.attempts.push(AttemptRecord {
            index: 1,
            rung: "pcg".into(),
            start_ns: 0,
            elapsed_ns: 9,
            relres: 1e-9,
            outcome: "converged".into(),
            escalation: None,
        });
        let base_corrections = a.grid_corrections();
        a.absorb(b, 100);
        // Counters accumulate, event streams concatenate with shifted times.
        assert_eq!(a.grid_corrections(), vec![base_corrections[0] * 2, base_corrections[1] * 2]);
        assert_eq!(a.residual_history.last().unwrap().t_ns, 150);
        assert_eq!(a.phase_totals[Phase::Smooth.index()].count, 4);
        assert_eq!(a.faults.last().unwrap().t_ns, 140);
        assert_eq!(a.checkpoints.last().unwrap().t_ns, 105);
        assert_eq!(a.attempts.last().unwrap().start_ns, 100);
        assert_eq!(a.messages.last().unwrap().sent, 4);
        assert_eq!(a.reductions.last().unwrap().t_ns, 107);
    }
}
