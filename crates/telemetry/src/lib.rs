//! Solver telemetry for the asyncmg workspace.
//!
//! The asynchronous solvers of the paper run "blind": stop criteria count
//! corrections and the relative residual is only recomputed after the run.
//! This crate adds the observability layer needed to see *inside* a solve —
//! convergence trajectories, per-grid progress skew, and where wall-clock
//! time goes (the data behind the paper's Figures 4–6):
//!
//! * [`Probe`] — the hook trait solvers call on the hot path. The default
//!   implementation of every method is an empty `#[inline]` body, so the
//!   [`NoopProbe`] compiles to nothing measurable; solvers are generic over
//!   `P: Probe` and monomorphise the no-op away.
//! * [`EventRing`] — a fixed-capacity, single-writer ring buffer. Each
//!   solver thread records into its own ring: no allocation and no locking
//!   on the hot path, merged once after the run.
//! * [`TelemetryProbe`] — the recording probe: one ring per thread, exact
//!   per-grid correction counters, and a low-rate global residual trace fed
//!   by the solver's monitor thread.
//! * [`SolveTrace`] — the merged result (residual history, per-grid
//!   correction timelines, phase-time breakdown) with JSON export
//!   (`docs/telemetry.md` describes the schema).

pub mod recorder;
pub mod ring;
pub mod service;
pub mod trace;

pub use recorder::TelemetryProbe;
pub use ring::EventRing;
pub use service::{CacheEvent, ServiceEvent, ServiceStats};
pub use trace::{
    AttemptRecord, CheckpointRecord, CorrectionRecord, GridTimeline, PhaseTotal, ReductionRecord,
    ResidualSample, ShardMessageStats, SolveTrace,
};

/// What happened in one fault event — an *injected* failure (from a
/// `FaultPlan`) or a *recovery* action the runtime took in response.
///
/// Grid ids are hierarchy level indices; worker/team ids follow the
/// solver's `GridTeamLayout`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Injected: a worker was stalled for `steps` scheduler yields.
    Straggler { worker: u32, steps: u32 },
    /// Injected: grid team `team` stopped making progress permanently.
    TeamCrash { team: u32 },
    /// Injected: a correction write on `grid` was corrupted before the
    /// guard saw it.
    WriteCorrupted { grid: u32 },
    /// Injected: a correction write on `grid` was dropped entirely.
    WriteDropped { grid: u32 },
    /// Recovery: the non-finite/magnitude guard rejected a correction on
    /// `grid` (the write was suppressed).
    GuardTripped { grid: u32 },
    /// Recovery: `grid` accumulated enough strikes that its corrections
    /// are now additively damped.
    Damped { grid: u32 },
    /// Recovery: `grid` was quarantined — its corrections are no longer
    /// applied to the shared iterate.
    Quarantined { grid: u32 },
    /// Recovery: the watchdog saw no heartbeat from `grid` within the
    /// configured stall window.
    Stalled { grid: u32 },
    /// Recovery: divergence detected; the iterate was rolled back to the
    /// last known-good snapshot.
    Rollback,
    /// Recovery: the hard wall-clock timeout fired and stopped the solve.
    Timeout,
    /// Recovery: the sharded hub's failure detector declared shard `shard`
    /// dead (bounded silence in epochs or clock time, or retransmit
    /// exhaustion).
    ShardDeclaredDead { shard: u32 },
    /// Recovery: a dead shard's row range was adopted — shard `from`'s rows
    /// now belong to surviving shard `to`.
    RowsAdopted { from: u32, to: u32 },
}

impl FaultKind {
    /// Stable lowercase name (used in the JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::TeamCrash { .. } => "team_crash",
            FaultKind::WriteCorrupted { .. } => "write_corrupted",
            FaultKind::WriteDropped { .. } => "write_dropped",
            FaultKind::GuardTripped { .. } => "guard_tripped",
            FaultKind::Damped { .. } => "damped",
            FaultKind::Quarantined { .. } => "quarantined",
            FaultKind::Stalled { .. } => "stalled",
            FaultKind::Rollback => "rollback",
            FaultKind::Timeout => "timeout",
            FaultKind::ShardDeclaredDead { .. } => "shard_declared_dead",
            FaultKind::RowsAdopted { .. } => "rows_adopted",
        }
    }

    /// The grid (level) this fault concerns, when it concerns one.
    pub fn grid(self) -> Option<u32> {
        match self {
            FaultKind::WriteCorrupted { grid }
            | FaultKind::WriteDropped { grid }
            | FaultKind::GuardTripped { grid }
            | FaultKind::Damped { grid }
            | FaultKind::Quarantined { grid }
            | FaultKind::Stalled { grid } => Some(grid),
            _ => None,
        }
    }

    /// Whether this event was injected by a fault plan (as opposed to a
    /// recovery action the runtime took).
    pub fn is_injected(self) -> bool {
        matches!(
            self,
            FaultKind::Straggler { .. }
                | FaultKind::TeamCrash { .. }
                | FaultKind::WriteCorrupted { .. }
                | FaultKind::WriteDropped { .. }
        )
    }
}

/// One entry of a solve's fault log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRecord {
    /// Nanoseconds since the solve epoch.
    pub t_ns: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// The instrumented phases of one grid correction (Algorithm 5), plus the
/// timed stages of the hierarchy setup.
///
/// Setup events use the hierarchy *level being built* as their `grid`
/// argument, so a trace shows where each level's build time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Restriction of the residual down to the grid's level.
    Restrict,
    /// The level-`k` smoothing / Λ application (or coarse solve).
    Smooth,
    /// Prolongation of the correction back to the fine grid.
    Prolong,
    /// The racy `x += e` write (lock-write or atomic-write).
    SharedWrite,
    /// Local/global/residual-based refresh of the fine-grid residual.
    ResidualUpdate,
    /// Setup: strength-of-connection graph and C/F coarsening of one level.
    SetupStrength,
    /// Setup: interpolation operator construction (including smoothing of
    /// the interpolant when enabled).
    SetupInterp,
    /// Setup: the Galerkin product `Pᵀ A P` and restriction transpose.
    SetupRap,
    /// Resilience: a checkpoint snapshot of the shared iterate (monitor
    /// thread cadence or quarantine-triggered).
    Checkpoint,
}

impl Phase {
    /// All phases: the solve pipeline in order, then the setup stages, then
    /// the resilience snapshots.
    pub const ALL: [Phase; 9] = [
        Phase::Restrict,
        Phase::Smooth,
        Phase::Prolong,
        Phase::SharedWrite,
        Phase::ResidualUpdate,
        Phase::SetupStrength,
        Phase::SetupInterp,
        Phase::SetupRap,
        Phase::Checkpoint,
    ];

    /// Stable lowercase name (used in the JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Restrict => "restrict",
            Phase::Smooth => "smooth",
            Phase::Prolong => "prolong",
            Phase::SharedWrite => "shared_write",
            Phase::ResidualUpdate => "residual_update",
            Phase::SetupStrength => "setup_strength",
            Phase::SetupInterp => "setup_interp",
            Phase::SetupRap => "setup_rap",
            Phase::Checkpoint => "checkpoint",
        }
    }

    /// Dense index into [`Phase::ALL`].
    pub fn index(self) -> usize {
        match self {
            Phase::Restrict => 0,
            Phase::Smooth => 1,
            Phase::Prolong => 2,
            Phase::SharedWrite => 3,
            Phase::ResidualUpdate => 4,
            Phase::SetupStrength => 5,
            Phase::SetupInterp => 6,
            Phase::SetupRap => 7,
            Phase::Checkpoint => 8,
        }
    }
}

/// One recorded solver event.
///
/// Timestamps are nanoseconds since the solve's epoch (the caller owns the
/// clock; probes only record).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Grid `grid` finished its `index`-th correction at `t_ns`.
    /// `local_res` is the team-local residual norm when cheaply available,
    /// `NaN` otherwise.
    Correction { grid: u32, index: u32, t_ns: u64, local_res: f64 },
    /// One timed phase of a correction.
    Phase { grid: u32, phase: Phase, start_ns: u64, dur_ns: u64 },
}

/// Solver-side telemetry hooks.
///
/// Implementations must be cheap and thread-safe: solvers call these from
/// every worker thread. The `thread` argument is the caller's global rank,
/// which recording probes use to pick a single-writer ring — callers must
/// pass their own rank and nothing else.
pub trait Probe: Sync {
    /// Whether events will be recorded. Solvers use this to skip timestamp
    /// acquisition entirely; with [`NoopProbe`] the branch constant-folds
    /// to `false` and disappears.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// A grid finished a correction.
    #[inline(always)]
    fn correction(&self, _thread: usize, _grid: usize, _index: usize, _t_ns: u64, _local_res: f64) {
    }

    /// A timed phase of a correction completed.
    #[inline(always)]
    fn phase(&self, _thread: usize, _grid: usize, _phase: Phase, _start_ns: u64, _dur_ns: u64) {}

    /// The monitor (or a synchronous cycle) observed the global relative
    /// residual.
    #[inline(always)]
    fn residual_sample(&self, _t_ns: u64, _relres: f64) {}

    /// A fault was injected or a recovery action taken. Cold path: faults
    /// are rare by construction, so recording probes may lock here.
    #[inline(always)]
    fn fault(&self, _t_ns: u64, _kind: FaultKind) {}

    /// A resilience checkpoint was taken (`restored == false`) or the
    /// iterate was restored from one (`restored == true`). Cold path, like
    /// [`Probe::fault`]: checkpoints happen at monitor cadence, not in the
    /// correction hot loop.
    #[inline(always)]
    fn checkpoint(&self, _t_ns: u64, _attempt: u32, _relres: f64, _restored: bool) {}
}

/// The default probe: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

impl<P: Probe + ?Sized> Probe for &P {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn correction(&self, thread: usize, grid: usize, index: usize, t_ns: u64, local_res: f64) {
        (**self).correction(thread, grid, index, t_ns, local_res);
    }

    #[inline(always)]
    fn phase(&self, thread: usize, grid: usize, phase: Phase, start_ns: u64, dur_ns: u64) {
        (**self).phase(thread, grid, phase, start_ns, dur_ns);
    }

    #[inline(always)]
    fn residual_sample(&self, t_ns: u64, relres: f64) {
        (**self).residual_sample(t_ns, relres);
    }

    #[inline(always)]
    fn fault(&self, t_ns: u64, kind: FaultKind) {
        (**self).fault(t_ns, kind);
    }

    #[inline(always)]
    fn checkpoint(&self, t_ns: u64, attempt: u32, relres: f64, restored: bool) {
        (**self).checkpoint(t_ns, attempt, relres, restored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled() {
        assert!(!NoopProbe.enabled());
        // And usable through the blanket reference impl / dyn dispatch.
        let p: &dyn Probe = &NoopProbe;
        assert!(!Probe::enabled(&p));
        p.correction(0, 0, 0, 0, f64::NAN);
        p.phase(0, 0, Phase::Smooth, 0, 1);
        p.residual_sample(0, 1.0);
        p.fault(0, FaultKind::Timeout);
        p.checkpoint(0, 0, 1.0, false);
    }

    #[test]
    fn fault_kind_names_and_grids() {
        assert_eq!(FaultKind::Quarantined { grid: 3 }.name(), "quarantined");
        assert_eq!(FaultKind::Quarantined { grid: 3 }.grid(), Some(3));
        assert_eq!(FaultKind::Timeout.grid(), None);
        assert!(FaultKind::TeamCrash { team: 1 }.is_injected());
        assert!(!FaultKind::GuardTripped { grid: 0 }.is_injected());
        // The sharded recovery events are actions, not injections, and are
        // shard-scoped rather than grid-scoped.
        assert_eq!(FaultKind::ShardDeclaredDead { shard: 2 }.name(), "shard_declared_dead");
        assert_eq!(FaultKind::RowsAdopted { from: 2, to: 1 }.name(), "rows_adopted");
        assert!(!FaultKind::ShardDeclaredDead { shard: 2 }.is_injected());
        assert!(!FaultKind::RowsAdopted { from: 2, to: 1 }.is_injected());
        assert_eq!(FaultKind::ShardDeclaredDead { shard: 2 }.grid(), None);
        assert_eq!(FaultKind::RowsAdopted { from: 2, to: 1 }.grid(), None);
    }

    #[test]
    fn phase_indices_match_all() {
        for (i, ph) in Phase::ALL.iter().enumerate() {
            assert_eq!(ph.index(), i);
        }
    }
}
