//! Finite-difference Laplacians on a box grid (the 7pt and 27pt test sets).
//!
//! The matrices are defined over *all* grid points with homogeneous
//! Dirichlet conditions absorbed into the stencil: every point keeps the
//! full-stencil diagonal (6 or 26) while connections leaving the grid are
//! dropped. This yields symmetric positive definite M-matrices and exactly
//! reproduces the row/nnz counts reported in the paper's Table I
//! (27,000 rows with 183,600 / 681,472 non-zeros at grid length 30).

use asyncmg_mesh::StructuredGrid;
use asyncmg_sparse::{Coo, Csr};

/// 7-point Laplacian on an `nx × ny × nz` grid: diagonal 6, `-1` on each
/// existing axis neighbour.
pub fn laplacian_7pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let g = StructuredGrid::new(nx, ny, nz);
    let n = g.n_vertices();
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for id in 0..n {
        let (i, j, k) = g.coords(id);
        coo.push(id, id, 6.0);
        let mut nb = |cond: bool, other: usize| {
            if cond {
                coo.push(id, other, -1.0);
            }
        };
        nb(i > 0, id.wrapping_sub(1));
        nb(i + 1 < nx, id + 1);
        nb(j > 0, id.wrapping_sub(nx));
        nb(j + 1 < ny, id + nx);
        nb(k > 0, id.wrapping_sub(nx * ny));
        nb(k + 1 < nz, id + nx * ny);
    }
    coo.to_csr()
}

/// 27-point Laplacian: diagonal 26, `-1` on each of the up-to-26 neighbours
/// in the surrounding 3×3×3 cube.
pub fn laplacian_27pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let g = StructuredGrid::new(nx, ny, nz);
    let n = g.n_vertices();
    let mut coo = Coo::with_capacity(n, n, 27 * n);
    for id in 0..n {
        let (i, j, k) = g.coords(id);
        coo.push(id, id, 26.0);
        for dk in -1i64..=1 {
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 && dk == 0 {
                        continue;
                    }
                    let (ni, nj, nk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                    if ni >= 0
                        && nj >= 0
                        && nk >= 0
                        && (ni as usize) < nx
                        && (nj as usize) < ny
                        && (nk as usize) < nz
                    {
                        coo.push(id, g.vertex(ni as usize, nj as usize, nk as usize), -1.0);
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_sparse::DenseLu;

    #[test]
    fn seven_point_1d_degenerates_to_tridiagonal_stencil() {
        let a = laplacian_7pt(4, 1, 1);
        assert_eq!(a.nrows(), 4);
        assert_eq!(a.get(1, 1), 6.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 2), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn seven_point_symmetric_and_diagonally_dominant() {
        let a = laplacian_7pt(5, 4, 3);
        assert!(a.is_symmetric(0.0));
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let off: f64 =
                cols.iter().zip(vals).filter(|(&c, _)| c as usize != i).map(|(_, v)| v.abs()).sum();
            assert!(a.get(i, i) >= off);
        }
    }

    #[test]
    fn twenty_seven_point_interior_row() {
        let a = laplacian_27pt(3, 3, 3);
        // Center point of 3³ grid has all 26 neighbours.
        let center = 13;
        let (cols, vals) = a.row(center);
        assert_eq!(cols.len(), 27);
        assert_eq!(vals.iter().sum::<f64>(), 0.0); // zero row sum interior
                                                   // Corner has 7 neighbours.
        assert_eq!(a.row(0).0.len(), 8);
    }

    #[test]
    fn nnz_counts_match_paper_at_30() {
        assert_eq!(laplacian_7pt(30, 30, 30).nnz(), 183_600);
        assert_eq!(laplacian_27pt(30, 30, 30).nnz(), 681_472);
    }

    #[test]
    fn both_are_positive_definite_small() {
        for a in [laplacian_7pt(3, 3, 3), laplacian_27pt(3, 3, 3)] {
            // Nonsingular (LU succeeds) and solves accurately.
            let lu = DenseLu::factor(&a).expect("singular");
            let ones = vec![1.0; a.nrows()];
            let mut b = vec![0.0; a.nrows()];
            a.spmv(&ones, &mut b);
            let x = lu.solve_vec(&b);
            for v in x {
                assert!((v - 1.0).abs() < 1e-10);
            }
        }
    }
}
