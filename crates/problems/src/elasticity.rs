//! 3-D linear elasticity on a multi-material cantilever beam.
//!
//! Substitute for the paper's "MFEM Elasticity" test set. Trilinear 8-node
//! hexahedral elements with 2×2×2 Gauss quadrature, isotropic materials,
//! three displacement dofs per node. The beam is clamped (homogeneous
//! Dirichlet on all components) at the `x = 0` face, and is split into two
//! materials along its length, stiff near the clamp and soft at the free
//! end — the structure of MFEM's cantilever example the paper used.

use asyncmg_mesh::HexMesh;
use asyncmg_sparse::{Coo, Csr};

/// An isotropic material.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Young's modulus.
    pub e: f64,
    /// Poisson ratio.
    pub nu: f64,
}

impl Material {
    /// Lamé parameters `(λ, μ)`.
    pub fn lame(self) -> (f64, f64) {
        let lambda = self.e * self.nu / ((1.0 + self.nu) * (1.0 - 2.0 * self.nu));
        let mu = self.e / (2.0 * (1.0 + self.nu));
        (lambda, mu)
    }
}

/// The two materials of the beam.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeamMaterials {
    /// Material of the clamped half.
    pub stiff: Material,
    /// Material of the free half.
    pub soft: Material,
}

impl Default for BeamMaterials {
    fn default() -> Self {
        BeamMaterials { stiff: Material { e: 10.0, nu: 0.25 }, soft: Material { e: 1.0, nu: 0.25 } }
    }
}

/// Assembles the elasticity stiffness matrix for a beam of
/// `ex × ey × ez` hexahedral elements with physical size `dims`,
/// clamped at `x = 0`. Returns the SPD system over free dofs.
pub fn elasticity_beam(
    ex: usize,
    ey: usize,
    ez: usize,
    dims: [f64; 3],
    materials: BeamMaterials,
) -> Csr {
    let mesh = HexMesh::beam(ex, ey, ez, dims);
    assemble_elasticity(&mesh, materials, true)
}

/// Assembles the elasticity stiffness matrix on `mesh`. When `clamp` is set,
/// all dofs of nodes on the `x = 0` face are eliminated; otherwise the full
/// singular (floating) system is returned — useful for testing the
/// rigid-body null space.
pub fn assemble_elasticity(mesh: &HexMesh, materials: BeamMaterials, clamp: bool) -> Csr {
    let nv = mesh.n_vertices();
    let mut free: Vec<Option<usize>> = vec![None; 3 * nv];
    let mut n_free = 0usize;
    for v in 0..nv {
        let clamped = clamp && mesh.on_clamped_face(v);
        for d in 0..3 {
            if !clamped {
                free[3 * v + d] = Some(n_free);
                n_free += 1;
            }
        }
    }
    // All elements share one geometry; cache one stiffness per material.
    let h = [
        mesh.dims[0] / (mesh.grid.nx - 1) as f64,
        mesh.dims[1] / (mesh.grid.ny - 1) as f64,
        mesh.dims[2] / (mesh.grid.nz - 1) as f64,
    ];
    let k_stiff = hex_stiffness(h, materials.stiff);
    let k_soft = hex_stiffness(h, materials.soft);
    let half = mesh.dims[0] / 2.0;

    let mut coo = Coo::with_capacity(n_free, n_free, mesh.n_elements() * 24 * 24 / 2);
    for e in 0..mesh.n_elements() {
        let ke = if mesh.element_centroid(e)[0] <= half { &k_stiff } else { &k_soft };
        let verts = mesh.elements[e];
        for (li, &vi) in verts.iter().enumerate() {
            for di in 0..3 {
                let Some(ri) = free[3 * vi + di] else { continue };
                for (lj, &vj) in verts.iter().enumerate() {
                    for dj in 0..3 {
                        let Some(rj) = free[3 * vj + dj] else { continue };
                        let v = ke[(3 * li + di) * 24 + (3 * lj + dj)];
                        // Exact zeros are stored on purpose: keeping every
                        // component pair of every adjacent node pair makes
                        // the assembled pattern fully 3×3 block-dense (nodes
                        // are eliminated whole, dofs stay interleaved), the
                        // natural BSR structure the blocked kernel layer
                        // relies on.
                        coo.push(ri, rj, v);
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// The 24×24 stiffness matrix of an axis-aligned hexahedral element of size
/// `h` with isotropic material `mat`, computed with 2×2×2 Gauss quadrature.
/// Row-major, dof order `(node, component)` with nodes in x-fastest bit
/// order.
pub fn hex_stiffness(h: [f64; 3], mat: Material) -> Vec<f64> {
    let (lambda, mu) = mat.lame();
    // Constitutive matrix D (6×6, Voigt order xx,yy,zz,xy,yz,zx).
    let mut dmat = [[0.0f64; 6]; 6];
    for i in 0..3 {
        for j in 0..3 {
            dmat[i][j] = lambda;
        }
        dmat[i][i] = lambda + 2.0 * mu;
        dmat[3 + i][3 + i] = mu;
    }
    let gp = 1.0 / 3.0f64.sqrt();
    let det_j = h[0] * h[1] * h[2] / 8.0; // Jacobian of [-1,1]³ → element
    let scale = [2.0 / h[0], 2.0 / h[1], 2.0 / h[2]]; // dξ/dx etc.

    let mut k = vec![0.0f64; 24 * 24];
    for &gx in &[-gp, gp] {
        for &gy in &[-gp, gp] {
            for &gz in &[-gp, gp] {
                // Shape-function derivatives in physical coordinates.
                let mut dn = [[0.0f64; 3]; 8]; // dn[node][dim]
                for (l, d) in dn.iter_mut().enumerate() {
                    let sx = if l & 1 == 0 { -1.0 } else { 1.0 };
                    let sy = if l & 2 == 0 { -1.0 } else { 1.0 };
                    let sz = if l & 4 == 0 { -1.0 } else { 1.0 };
                    d[0] = sx * (1.0 + sy * gy) * (1.0 + sz * gz) / 8.0 * scale[0];
                    d[1] = (1.0 + sx * gx) * sy * (1.0 + sz * gz) / 8.0 * scale[1];
                    d[2] = (1.0 + sx * gx) * (1.0 + sy * gy) * sz / 8.0 * scale[2];
                }
                // B matrix (6×24): strain = B · u.
                let mut b = [[0.0f64; 24]; 6];
                for l in 0..8 {
                    let c = 3 * l;
                    b[0][c] = dn[l][0];
                    b[1][c + 1] = dn[l][1];
                    b[2][c + 2] = dn[l][2];
                    b[3][c] = dn[l][1];
                    b[3][c + 1] = dn[l][0];
                    b[4][c + 1] = dn[l][2];
                    b[4][c + 2] = dn[l][1];
                    b[5][c] = dn[l][2];
                    b[5][c + 2] = dn[l][0];
                }
                // K += Bᵀ D B · detJ (unit Gauss weights).
                let mut db = [[0.0f64; 24]; 6];
                for i in 0..6 {
                    for j in 0..24 {
                        let mut acc = 0.0;
                        for m in 0..6 {
                            acc += dmat[i][m] * b[m][j];
                        }
                        db[i][j] = acc;
                    }
                }
                for i in 0..24 {
                    for j in 0..24 {
                        let mut acc = 0.0;
                        for m in 0..6 {
                            acc += b[m][i] * db[m][j];
                        }
                        k[i * 24 + j] += acc * det_j;
                    }
                }
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_sparse::DenseLu;

    #[test]
    fn element_stiffness_is_symmetric() {
        let k = hex_stiffness([1.0, 0.5, 2.0], Material { e: 3.0, nu: 0.3 });
        for i in 0..24 {
            for j in 0..24 {
                assert!((k[i * 24 + j] - k[j * 24 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn element_annihilates_rigid_translations() {
        let k = hex_stiffness([1.0, 1.0, 1.0], Material { e: 1.0, nu: 0.25 });
        for d in 0..3 {
            let mut u = [0.0f64; 24];
            for l in 0..8 {
                u[3 * l + d] = 1.0;
            }
            for i in 0..24 {
                let r: f64 = (0..24).map(|j| k[i * 24 + j] * u[j]).sum();
                assert!(r.abs() < 1e-12, "row {i}: {r}");
            }
        }
    }

    #[test]
    fn element_annihilates_rigid_rotation() {
        // Rotation about z: u = (-y, x, 0) evaluated at the 8 corners of a
        // unit element centred at the origin.
        let h = [1.0, 1.0, 1.0];
        let k = hex_stiffness(h, Material { e: 2.0, nu: 0.3 });
        let mut u = [0.0f64; 24];
        for l in 0..8 {
            let x = if l & 1 == 0 { -0.5 } else { 0.5 };
            let y = if l & 2 == 0 { -0.5 } else { 0.5 };
            u[3 * l] = -y;
            u[3 * l + 1] = x;
        }
        for i in 0..24 {
            let r: f64 = (0..24).map(|j| k[i * 24 + j] * u[j]).sum();
            assert!(r.abs() < 1e-12, "row {i}: {r}");
        }
    }

    #[test]
    fn floating_assembly_has_rigid_null_space() {
        let mesh = asyncmg_mesh::HexMesh::beam(3, 2, 2, [3.0, 1.0, 1.0]);
        let a = assemble_elasticity(&mesh, BeamMaterials::default(), false);
        let nv = mesh.n_vertices();
        // Translation in y.
        let mut u = vec![0.0; 3 * nv];
        for v in 0..nv {
            u[3 * v + 1] = 1.0;
        }
        let mut r = vec![0.0; 3 * nv];
        a.spmv(&u, &mut r);
        let nrm: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(nrm < 1e-10, "translation residual {nrm}");
        // Rotation about x: u = (0, -z, y).
        for v in 0..nv {
            let p = mesh.vertices[v];
            u[3 * v] = 0.0;
            u[3 * v + 1] = -p[2];
            u[3 * v + 2] = p[1];
        }
        a.spmv(&u, &mut r);
        let nrm: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(nrm < 1e-10, "rotation residual {nrm}");
    }

    #[test]
    fn clamped_beam_is_spd() {
        let a = elasticity_beam(4, 2, 2, [4.0, 1.0, 1.0], BeamMaterials::default());
        assert!(a.is_symmetric(1e-10));
        assert!(a.diag().iter().all(|&d| d > 0.0));
        assert!(DenseLu::factor(&a).is_some());
        // 5×3×3 nodes minus the 3×3 clamped face, ×3 dofs.
        assert_eq!(a.nrows(), (5 * 9 - 9) * 3);
    }

    #[test]
    fn two_materials_change_entries() {
        let uniform = BeamMaterials {
            stiff: Material { e: 1.0, nu: 0.25 },
            soft: Material { e: 1.0, nu: 0.25 },
        };
        let a_two = elasticity_beam(4, 2, 2, [4.0, 1.0, 1.0], BeamMaterials::default());
        let a_uni = elasticity_beam(4, 2, 2, [4.0, 1.0, 1.0], uniform);
        assert_eq!(a_two.nrows(), a_uni.nrows());
        assert!(a_two.vals().iter().zip(a_uni.vals()).any(|(x, y)| (x - y).abs() > 1e-12));
    }
}
