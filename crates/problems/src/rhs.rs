//! Right-hand sides for the experiments.
//!
//! Section V: "We used random right-hand sides with values in [−1, 1]."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible random right-hand side with entries uniform in `[−1, 1]`.
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect()
}

/// The vector of all ones (manufactured-solution tests).
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_in_range() {
        let b = random_rhs(1000, 7);
        assert!(b.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn rhs_reproducible_and_seed_sensitive() {
        assert_eq!(random_rhs(64, 1), random_rhs(64, 1));
        assert_ne!(random_rhs(64, 1), random_rhs(64, 2));
    }

    #[test]
    fn rhs_not_degenerate() {
        let b = random_rhs(1000, 3);
        let mean: f64 = b.iter().sum::<f64>() / b.len() as f64;
        assert!(mean.abs() < 0.2);
        assert!(b.iter().any(|&v| v > 0.5) && b.iter().any(|&v| v < -0.5));
    }

    #[test]
    fn ones_is_ones() {
        assert_eq!(ones(3), vec![1.0, 1.0, 1.0]);
    }
}
