//! Test-matrix generators reproducing the paper's four test sets.
//!
//! * [`stencil::laplacian_7pt`] / [`stencil::laplacian_27pt`] — the "7pt" and
//!   "27pt" sets: 3-D Laplacians in a cube discretised with centered
//!   differences,
//! * [`fem::fem_laplace_ball`] — the "MFEM Laplace" substitute: a P1
//!   tetrahedral finite-element Laplacian on a ball (the paper used a NURBS
//!   sphere mesh; see DESIGN.md for the substitution argument),
//! * [`elasticity::elasticity_beam`] — the "MFEM Elasticity" substitute:
//!   3-D linear elasticity on a multi-material cantilever beam with
//!   trilinear hexahedral elements,
//! * [`rhs::random_rhs`] — random right-hand sides with entries in `[-1, 1]`
//!   (Section V).

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod elasticity;
pub mod fem;
pub mod rhs;
pub mod stencil;

use asyncmg_sparse::Csr;

/// The four test sets of the paper's Section V.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestSet {
    /// 3-D Laplacian, 7-point stencil in a cube.
    SevenPt,
    /// 3-D Laplacian, 27-point stencil in a cube.
    TwentySevenPt,
    /// FEM Laplacian on a ball (MFEM Laplace substitute).
    FemLaplace,
    /// Multi-material cantilever-beam elasticity (MFEM Elasticity
    /// substitute).
    Elasticity,
}

impl TestSet {
    /// Builds the matrix for the given "grid length" `n` (vertices per cube
    /// side for the Laplacians; elements along the beam for elasticity).
    pub fn matrix(self, n: usize) -> Csr {
        match self {
            TestSet::SevenPt => stencil::laplacian_7pt(n, n, n),
            TestSet::TwentySevenPt => stencil::laplacian_27pt(n, n, n),
            TestSet::FemLaplace => fem::fem_laplace_ball(n),
            TestSet::Elasticity => {
                // Beam with 4:1:1 aspect ratio, as in MFEM's cantilever
                // example; n elements along the long axis.
                let c = (n / 4).max(1);
                elasticity::elasticity_beam(n, c, c, [4.0, 1.0, 1.0], Default::default())
            }
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TestSet::SevenPt => "7pt",
            TestSet::TwentySevenPt => "27pt",
            TestSet::FemLaplace => "MFEM Laplace",
            TestSet::Elasticity => "MFEM Elasticity",
        }
    }

    /// All four test sets in the paper's order.
    pub fn all() -> [TestSet; 4] {
        [TestSet::SevenPt, TestSet::TwentySevenPt, TestSet::FemLaplace, TestSet::Elasticity]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(TestSet::SevenPt.name(), "7pt");
        assert_eq!(TestSet::Elasticity.name(), "MFEM Elasticity");
        assert_eq!(TestSet::all().len(), 4);
    }

    #[test]
    fn matrices_are_spd_shaped() {
        for set in TestSet::all() {
            let a = set.matrix(6);
            assert_eq!(a.nrows(), a.ncols());
            assert!(a.is_symmetric(1e-10), "{} not symmetric", set.name());
            assert!(a.diag().iter().all(|&d| d > 0.0), "{} diag", set.name());
        }
    }

    #[test]
    fn table1_row_counts_match_paper() {
        // Table I: 7pt/27pt have 27,000 rows (30³) with 183,600 and 681,472
        // non-zeros respectively.
        let a7 = TestSet::SevenPt.matrix(30);
        assert_eq!(a7.nrows(), 27_000);
        assert_eq!(a7.nnz(), 183_600);
        let a27 = TestSet::TwentySevenPt.matrix(30);
        assert_eq!(a27.nrows(), 27_000);
        assert_eq!(a27.nnz(), 681_472);
    }
}
