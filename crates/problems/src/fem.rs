//! P1 tetrahedral finite-element Laplacian on a ball.
//!
//! This is the substitute for the paper's "MFEM Laplace" test set (a NURBS
//! sphere mesh with H¹ nodal elements). A cube grid is mapped onto the unit
//! ball and subdivided into tetrahedra; the standard P1 stiffness matrix
//! `K_ij = Σ_T |T| ∇φ_i · ∇φ_j` is assembled and homogeneous Dirichlet
//! boundary nodes are eliminated, leaving an SPD system over interior nodes
//! with irregular, geometry-dependent stencil weights.

use asyncmg_mesh::TetMesh;
use asyncmg_sparse::{Coo, Csr};

/// Assembles the P1 Laplacian stiffness matrix on `mesh`, eliminating the
/// nodes where `mesh.on_boundary` is set. Returns the reduced SPD matrix.
pub fn assemble_p1_laplacian(mesh: &TetMesh) -> Csr {
    let (matrix, _) = assemble_p1_laplacian_with_map(mesh);
    matrix
}

/// Like [`assemble_p1_laplacian`], also returning `free[node] = Some(row)`
/// for interior nodes.
pub fn assemble_p1_laplacian_with_map(mesh: &TetMesh) -> (Csr, Vec<Option<usize>>) {
    let nv = mesh.n_vertices();
    let mut free: Vec<Option<usize>> = vec![None; nv];
    let mut n_free = 0usize;
    for v in 0..nv {
        if !mesh.on_boundary[v] {
            free[v] = Some(n_free);
            n_free += 1;
        }
    }
    let mut coo = Coo::with_capacity(n_free, n_free, mesh.n_tets() * 16);
    for t in 0..mesh.n_tets() {
        let verts = mesh.tets[t];
        let grads = p1_gradients(mesh, t);
        let vol = mesh.tet_volume(t).abs();
        for (li, &vi) in verts.iter().enumerate() {
            let Some(ri) = free[vi] else { continue };
            for (lj, &vj) in verts.iter().enumerate() {
                let Some(rj) = free[vj] else { continue };
                let k = vol * dot3(grads[li], grads[lj]);
                coo.push(ri, rj, k);
            }
        }
    }
    (coo.to_csr(), free)
}

/// Convenience: the FEM Laplacian on the unit ball with `n` vertices per
/// side of the underlying cube grid.
pub fn fem_laplace_ball(n: usize) -> Csr {
    assemble_p1_laplacian(&TetMesh::ball(n))
}

/// Gradients of the four P1 basis functions on tetrahedron `t`.
fn p1_gradients(mesh: &TetMesh, t: usize) -> [[f64; 3]; 4] {
    let [a, b, c, d] = mesh.tets[t];
    let va = mesh.vertices[a];
    let e1 = sub(mesh.vertices[b], va);
    let e2 = sub(mesh.vertices[c], va);
    let e3 = sub(mesh.vertices[d], va);
    // Rows of the inverse of J = [e1; e2; e3] (as rows) are the gradients of
    // the barycentric coordinates λ1, λ2, λ3; λ0's gradient is minus their
    // sum.
    let det = det3(e1, e2, e3);
    debug_assert!(det.abs() > 1e-300, "degenerate tet");
    let inv_det = 1.0 / det;
    // Inverse of a 3x3 with rows e1,e2,e3: columns are cross products.
    let c1 = cross(e2, e3);
    let c2 = cross(e3, e1);
    let c3 = cross(e1, e2);
    let g1 = scale(c1, inv_det);
    let g2 = scale(c2, inv_det);
    let g3 = scale(c3, inv_det);
    let g0 = [-(g1[0] + g2[0] + g3[0]), -(g1[1] + g2[1] + g3[1]), -(g1[2] + g2[2] + g3[2])];
    [g0, g1, g2, g3]
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

fn det3(a: [f64; 3], b: [f64; 3], c: [f64; 3]) -> f64 {
    dot3(a, cross(b, c))
}

fn dot3(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn scale(a: [f64; 3], s: f64) -> [f64; 3] {
    [a[0] * s, a[1] * s, a[2] * s]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_sparse::DenseLu;

    #[test]
    fn gradients_sum_to_zero() {
        let mesh = TetMesh::unit_cube(2);
        for t in 0..mesh.n_tets() {
            let g = p1_gradients(&mesh, t);
            for d in 0..3 {
                let s: f64 = g.iter().map(|gi| gi[d]).sum();
                assert!(s.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gradients_reproduce_linear_functions() {
        // ∇(Σ f(v_i) φ_i) must equal the gradient of a linear f.
        let mesh = TetMesh::ball(3);
        let f = |p: [f64; 3]| 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2];
        for t in 0..mesh.n_tets().min(20) {
            let g = p1_gradients(&mesh, t);
            let mut grad = [0.0; 3];
            for (l, &v) in mesh.tets[t].iter().enumerate() {
                let fv = f(mesh.vertices[v]);
                for d in 0..3 {
                    grad[d] += fv * g[l][d];
                }
            }
            assert!((grad[0] - 2.0).abs() < 1e-10);
            assert!((grad[1] + 3.0).abs() < 1e-10);
            assert!((grad[2] - 0.5).abs() < 1e-10);
        }
    }

    #[test]
    fn stiffness_is_spd() {
        let a = fem_laplace_ball(5);
        assert!(a.nrows() > 0);
        assert!(a.is_symmetric(1e-12));
        assert!(a.diag().iter().all(|&d| d > 0.0));
        // Positive definite: Dirichlet Laplacian is nonsingular.
        assert!(DenseLu::factor(&a).is_some());
    }

    #[test]
    fn interior_size_matches_grid() {
        // Ball mesh marks exactly the cube-surface nodes as boundary, so the
        // reduced system has (n−2)³ rows.
        let a = fem_laplace_ball(5);
        assert_eq!(a.nrows(), 27);
    }

    #[test]
    fn solves_harmonic_patch_test() {
        // With f ≡ 0 and boundary data from a linear (harmonic) function,
        // the FEM solution reproduces that function exactly. We emulate the
        // inhomogeneous boundary by moving known boundary values to the RHS:
        // A_ii x_i = b_i − Σ_boundary K_ij g_j.
        let mesh = TetMesh::ball(4);
        let (a, free) = assemble_p1_laplacian_with_map(&mesh);
        let g = |p: [f64; 3]| 1.0 + 2.0 * p[0] - p[1] + 3.0 * p[2];
        // Assemble the full stiffness rows for interior nodes against
        // boundary nodes to build the RHS.
        let mut b = vec![0.0; a.nrows()];
        // Recompute element contributions for interior-boundary couplings.
        for t in 0..mesh.n_tets() {
            let verts = mesh.tets[t];
            let grads = super::p1_gradients(&mesh, t);
            let vol = mesh.tet_volume(t).abs();
            for (li, &vi) in verts.iter().enumerate() {
                let Some(ri) = free[vi] else { continue };
                for (lj, &vj) in verts.iter().enumerate() {
                    if free[vj].is_none() {
                        let k = vol * super::dot3(grads[li], grads[lj]);
                        b[ri] -= k * g(mesh.vertices[vj]);
                    }
                }
            }
        }
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve_vec(&b);
        for (v, row) in free.iter().enumerate() {
            if let Some(r) = row {
                let exact = g(mesh.vertices[v]);
                assert!((x[*r] - exact).abs() < 1e-9, "node {v}: {} vs {exact}", x[*r]);
            }
        }
    }
}
