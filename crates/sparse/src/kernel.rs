//! Kernel selection: which storage format executes a level's hot loops.
//!
//! [`KernelSelect`] is the user-facing policy knob (on `AmgOptions` in the
//! `asyncmg-amg` crate); [`Kernel`] is the per-operator dispatch handle the
//! solve loops call through. Every [`Kernel`] method is **bit-identical**
//! across variants — the BSR kernels replay the CSR `dot4` accumulation
//! stream exactly (see [`crate::bsr`]) — so kernel choice affects speed,
//! never results, and deterministic-replay fingerprints are stable across
//! the whole kernel axis.

use crate::bsr::Bsr;
use crate::csr::Csr;

/// Which kernel layer a solver should use for its per-level operators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelSelect {
    /// Use BSR where it is both applicable (block-aligned, zero fill-in)
    /// and judged profitable by the host calibration (or by the built-in
    /// default of "blocks of 2 or more are worth it" when no calibration
    /// is cached). The default.
    #[default]
    Auto,
    /// Always use the scalar-row CSR kernels.
    Csr,
    /// Use BSR wherever applicable (block-aligned, zero fill-in),
    /// regardless of calibration; falls back to CSR elsewhere.
    Bsr,
}

impl KernelSelect {
    /// Parses the common spellings used by env vars / CLI flags.
    pub fn parse(s: &str) -> Option<KernelSelect> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(KernelSelect::Auto),
            "csr" | "scalar" => Some(KernelSelect::Csr),
            "bsr" | "block" | "blocked" => Some(KernelSelect::Bsr),
            _ => None,
        }
    }

    /// Stable label for bench output and fuzz-case names.
    pub fn label(&self) -> &'static str {
        match self {
            KernelSelect::Auto => "auto",
            KernelSelect::Csr => "csr",
            KernelSelect::Bsr => "bsr",
        }
    }
}

/// A borrowed view of one operator plus the kernel that should execute it.
///
/// The CSR form is always present (coarsening, transposes, Gauss–Seidel row
/// sweeps and the atomic async kernels all read it); the BSR form rides
/// along when the level installed one. The hot vector kernels — `spmv`,
/// `residual` and their row ranges — dispatch to BSR when available.
#[derive(Clone, Copy)]
pub enum Kernel<'a> {
    /// Scalar-row CSR kernels.
    Csr(&'a Csr),
    /// Blocked kernels over `bsr`, with the CSR twin for everything the
    /// blocked layer does not cover.
    Bsr { csr: &'a Csr, bsr: &'a Bsr },
}

impl<'a> Kernel<'a> {
    /// The CSR form (always available).
    #[inline]
    pub fn csr(&self) -> &'a Csr {
        match self {
            Kernel::Csr(a) => a,
            Kernel::Bsr { csr, .. } => csr,
        }
    }

    /// The BSR form, when this kernel is blocked.
    #[inline]
    pub fn bsr(&self) -> Option<&'a Bsr> {
        match self {
            Kernel::Csr(_) => None,
            Kernel::Bsr { bsr, .. } => Some(bsr),
        }
    }

    /// Stable label for telemetry and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Csr(_) => "csr",
            Kernel::Bsr { .. } => "bsr",
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.csr().nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.csr().ncols()
    }

    /// Stored entries of the CSR form.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.csr().nnz()
    }

    /// `y = A x`.
    #[inline]
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            Kernel::Csr(a) => a.spmv(x, y),
            Kernel::Bsr { bsr, .. } => bsr.spmv(x, y),
        }
    }

    /// `y[i] = A[i,:]·x` for `i` in `rows`.
    #[inline]
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        match self {
            Kernel::Csr(a) => a.spmv_rows(rows, x, y),
            Kernel::Bsr { bsr, .. } => bsr.spmv_rows(rows, x, y),
        }
    }

    /// `r = b − A x`.
    #[inline]
    pub fn residual(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        match self {
            Kernel::Csr(a) => a.residual(b, x, r),
            Kernel::Bsr { bsr, .. } => bsr.residual(b, x, r),
        }
    }

    /// `r[i] = b[i] − A[i,:]·x` for `i` in `rows`.
    #[inline]
    pub fn residual_rows(&self, rows: std::ops::Range<usize>, b: &[f64], x: &[f64], r: &mut [f64]) {
        match self {
            Kernel::Csr(a) => a.residual_rows(rows, b, x, r),
            Kernel::Bsr { bsr, .. } => bsr.residual_rows(rows, b, x, r),
        }
    }

    /// `A[i,:]·x`.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        match self {
            Kernel::Csr(a) => a.row_dot(i, x),
            Kernel::Bsr { bsr, .. } => bsr.row_dot(i, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small_block3() -> Csr {
        let mut c = Coo::new(6, 6);
        for bi in 0..2 {
            for bj in 0..2 {
                for r in 0..3 {
                    for cc in 0..3 {
                        c.push(bi * 3 + r, bj * 3 + cc, (bi + bj + r + cc) as f64 + 0.5);
                    }
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn kernel_variants_agree() {
        let a = small_block3();
        let bsr = Bsr::from_csr(&a, 3).unwrap();
        let kc = Kernel::Csr(&a);
        let kb = Kernel::Bsr { csr: &a, bsr: &bsr };
        assert_eq!(kc.label(), "csr");
        assert_eq!(kb.label(), "bsr");
        assert_eq!(kb.nrows(), 6);
        assert!(kb.bsr().is_some() && kc.bsr().is_none());
        let x: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let (mut y0, mut y1) = (vec![0.0; 6], vec![0.0; 6]);
        kc.spmv(&x, &mut y0);
        kb.spmv(&x, &mut y1);
        assert_eq!(y0, y1);
        kc.residual(&b, &x, &mut y0);
        kb.residual(&b, &x, &mut y1);
        assert_eq!(y0, y1);
        assert_eq!(kc.row_dot(4, &x).to_bits(), kb.row_dot(4, &x).to_bits());
    }

    #[test]
    fn select_parses_and_labels() {
        assert_eq!(KernelSelect::parse("auto"), Some(KernelSelect::Auto));
        assert_eq!(KernelSelect::parse("CSR"), Some(KernelSelect::Csr));
        assert_eq!(KernelSelect::parse("blocked"), Some(KernelSelect::Bsr));
        assert_eq!(KernelSelect::parse("gpu"), None);
        assert_eq!(KernelSelect::default().label(), "auto");
    }
}
