//! Across-row SIMD SpMV for stencil-structured matrices.
//!
//! The per-row `dot4` kernel cannot use wide vectors profitably on a sparse
//! row: the column indices force gathers, and a 27-point row is only ~27
//! entries long. Stencil matrices have a much better axis: *consecutive rows
//! share the same column-offset pattern*. On a 3D finite-difference grid,
//! every interior x-line is a maximal run of rows whose columns are
//! `i + o` for a fixed offset list `o` — so lane `l` of a vector can carry
//! row `i + l`, the value loads become contiguous, and the `x` loads become
//! unit-stride vectors instead of gathers.
//!
//! `StencilPlan` (crate-private) detects those runs once per matrix
//! (pattern comparison is
//! translate-invariant: `cols[k] − i` must match) and repacks the run values
//! into lane-plane-major storage (`vals[base + j·stride + r]` holds offset
//! `j` of run-row `r`). The kernels then process up to 8 rows per vector op
//! (AVX-512, with masked tails) or 4 (AVX2 fallback).
//!
//! **Bit-identity.** Lane `l` of every vector op belongs wholly to row
//! `i + l`, and the offset loop walks the row's entries in exactly the
//! scalar [`crate::simd::dot4`] order: entry `k` accumulates into lane
//! accumulator `k mod 4`, the remainder into a separate tail accumulator,
//! combined as `(a0 + a1) + (a2 + a3) + tail`. Each row's result is
//! therefore bit-identical to the scalar path, independent of how a row
//! range is chunked — the proptests in this module and in `csr.rs` pin that
//! down at every lane remainder.
//!
//! The plan is a cache owned by [`Csr`] (built lazily on the first SIMD
//! SpMV, invalidated by value mutation); matrices without enough run
//! structure (Galerkin coarse operators, irregular graphs) get `None` once
//! and keep the per-row path.

use crate::csr::Csr;
use std::ops::Range;

/// Runs shorter than this are not worth the plan bookkeeping.
const MIN_RUN: usize = 4;

/// Lane-group width the value planes are padded to (AVX-512 lanes).
const LANES: usize = 8;

/// One maximal run of consecutive rows sharing a column-offset pattern.
#[derive(Clone, Copy, Debug)]
struct Run {
    /// First row of the run.
    start: u32,
    /// Number of rows.
    len: u32,
    /// Index into the deduplicated pattern table.
    pid: u32,
    /// Element offset of this run's value planes (before the alignment
    /// shift).
    base: u32,
}

/// Precomputed across-row vectorization plan for a stencil-structured CSR
/// matrix. See the module docs for the layout and bit-identity argument.
#[derive(Clone, Debug)]
pub(crate) struct StencilPlan {
    /// Concatenated column-offset patterns (`col − row`, strictly
    /// increasing within a pattern).
    pat_offsets: Vec<i64>,
    /// Pattern `p` occupies `pat_offsets[pat_ptr[p]..pat_ptr[p + 1]]`.
    pat_ptr: Vec<u32>,
    /// Runs in increasing row order, non-overlapping.
    runs: Vec<Run>,
    /// Lane-plane-major value copies: offset `j` of run-row `r` lives at
    /// `vals[shift + base + j·stride + r]` with `stride = len` rounded up
    /// to [`LANES`]. Allocated with a 2·[`LANES`] tail pad so every
    /// (possibly misaligned, range-clipped) vector load stays in bounds.
    vals: Vec<f64>,
    /// Elements to skip so `vals[shift]` sits on a 64-byte boundary; bases
    /// and strides are 8-multiples, so full-group value loads are then
    /// whole cache lines.
    shift: usize,
    /// Rows covered by runs (the rest take the scalar per-row path).
    covered: usize,
}

/// Plan summary for benchmarks and diagnostics; see
/// [`Csr::stencil_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StencilStats {
    /// Distinct column-offset patterns.
    pub patterns: usize,
    /// Maximal same-pattern row runs.
    pub runs: usize,
    /// Rows covered by runs; the remaining rows use the per-row kernel.
    pub covered_rows: usize,
}

impl StencilPlan {
    /// Detects run structure in `a` and builds the plan, or `None` when
    /// runs cover less than half the rows (the repack would cost more than
    /// the kernel saves). Only x86-64 hosts have the vector kernels, so
    /// other targets always get `None`.
    pub(crate) fn build(a: &Csr) -> Option<StencilPlan> {
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = a;
            None
        }
        #[cfg(target_arch = "x86_64")]
        {
            Self::detect(a)
        }
    }

    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    fn detect(a: &Csr) -> Option<StencilPlan> {
        use std::collections::HashMap;
        let nrows = a.nrows();
        let rp = a.row_ptr();
        let cols = a.col_idx();
        let avals = a.vals();
        let pattern_of = |i: usize| -> &[u32] { &cols[rp[i] as usize..rp[i + 1] as usize] };
        let same_pattern = |i: usize, j: usize| -> bool {
            let (pi, pj) = (pattern_of(i), pattern_of(j));
            pi.len() == pj.len()
                && pi.iter().zip(pj).all(|(&ci, &cj)| ci as i64 - i as i64 == cj as i64 - j as i64)
        };
        let mut pat_offsets = Vec::new();
        let mut pat_ptr = vec![0u32];
        let mut pat_ids: HashMap<Vec<i64>, u32> = HashMap::new();
        let mut runs = Vec::new();
        let mut total = 0usize;
        let mut covered = 0usize;
        let mut i = 0usize;
        while i < nrows {
            let mut end = i + 1;
            while end < nrows && same_pattern(i, end) {
                end += 1;
            }
            let len = end - i;
            if len >= MIN_RUN && rp[i + 1] > rp[i] {
                let key: Vec<i64> = pattern_of(i).iter().map(|&c| c as i64 - i as i64).collect();
                let pid = *pat_ids.entry(key.clone()).or_insert_with(|| {
                    pat_offsets.extend_from_slice(&key);
                    pat_ptr.push(pat_offsets.len() as u32);
                    (pat_ptr.len() - 2) as u32
                });
                let stride = (len + LANES - 1) & !(LANES - 1);
                runs.push(Run { start: i as u32, len: len as u32, pid, base: total as u32 });
                total += key.len() * stride;
                covered += len;
            }
            i = end;
        }
        if covered * 2 < nrows {
            return None;
        }
        // Tail pad: a range-clipped chunk may start at any row offset `r`
        // within a run, so a load of `LANES` values from the last plane can
        // reach `LANES − 1` past `total`; the alignment shift adds up to
        // `LANES − 1` more. Padding zeros contribute `0 · 0` in lanes the
        // store mask drops.
        let mut vals = vec![0.0f64; total + 2 * LANES];
        // `align_offset` on `*const f64` counts elements, not bytes.
        let shift = vals.as_ptr().align_offset(64);
        for &Run { start, len, pid, base } in &runs {
            let (start, len, base) = (start as usize, len as usize, base as usize);
            let m = (pat_ptr[pid as usize + 1] - pat_ptr[pid as usize]) as usize;
            let stride = (len + LANES - 1) & !(LANES - 1);
            for r in 0..len {
                let lo = rp[start + r] as usize;
                for j in 0..m {
                    vals[shift + base + j * stride + r] = avals[lo + j];
                }
            }
        }
        Some(StencilPlan { pat_offsets, pat_ptr, runs, vals, shift, covered })
    }

    /// Plan summary for diagnostics.
    pub(crate) fn stats(&self) -> StencilStats {
        StencilStats {
            patterns: self.pat_ptr.len() - 1,
            runs: self.runs.len(),
            covered_rows: self.covered,
        }
    }

    /// `y[rows] = (A x)[rows]`, bit-identical to the scalar per-row path.
    ///
    /// Rows inside runs go through the vector kernels (clipped to `rows`);
    /// gap rows fall back to [`Csr::row_dot`]. The caller (`Csr`) has
    /// checked `rows.end ≤ nrows`, `x.len() ≥ ncols`, `y.len() ≥ nrows`.
    pub(crate) fn spmv_rows(&self, a: &Csr, rows: Range<usize>, x: &[f64], y: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: plans are only built (see `Csr::stencil_plan`) when
            // `simd::active()`, which requires AVX2; the AVX-512 variant
            // additionally checks its features at runtime.
            if crate::simd::avx512_supported() {
                unsafe { self.spmv_rows_avx512(a, rows, x, y) }
            } else {
                unsafe { self.spmv_rows_avx2(a, rows, x, y) }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            // Plans are never built off x86-64, but keep the fallback total.
            for i in rows {
                y[i] = a.row_dot(i, x);
            }
        }
    }

    /// AVX-512 kernel: up to 8 rows per vector op; remainders of ≤ 4 rows
    /// drop to a masked 256-bit block instead of wasting half a zmm.
    ///
    /// # Safety
    /// Requires `avx512f` + `avx512vl`; `rows.end ≤ a.nrows()`,
    /// `x.len() ≥ a.ncols()`, `y.len() ≥ a.nrows()`, and `self` built from
    /// this `a`'s current structure and values.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512vl")]
    unsafe fn spmv_rows_avx512(&self, a: &Csr, rows: Range<usize>, x: &[f64], y: &mut [f64]) {
        use core::arch::x86_64::*;
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut next = rows.start;
        for run in &self.runs {
            let (start, len) = (run.start as usize, run.len as usize);
            if start + len <= rows.start {
                continue;
            }
            if start >= rows.end {
                break;
            }
            let lo = next.max(start);
            let hi = rows.end.min(start + len);
            for i in next..lo {
                y[i] = a.row_dot(i, x);
            }
            next = hi;
            let pid = run.pid as usize;
            let off = &self.pat_offsets[self.pat_ptr[pid] as usize..self.pat_ptr[pid + 1] as usize];
            let m = off.len();
            let m4 = m & !3;
            let stride = (len + LANES - 1) & !(LANES - 1);
            let vp = self.vals.as_ptr().add(self.shift + run.base as usize);
            let mut i = lo;
            while i < hi {
                let r = i - start;
                let cl = (hi - i).min(8);
                if cl <= 4 {
                    let mask: __mmask8 = (1u8 << cl) - 1;
                    let mut a0 = _mm256_setzero_pd();
                    let mut a1 = _mm256_setzero_pd();
                    let mut a2 = _mm256_setzero_pd();
                    let mut a3 = _mm256_setzero_pd();
                    let mut j = 0;
                    while j + 4 <= m4 {
                        let o0 = *off.get_unchecked(j);
                        let o1 = *off.get_unchecked(j + 1);
                        let o2 = *off.get_unchecked(j + 2);
                        let o3 = *off.get_unchecked(j + 3);
                        a0 = _mm256_add_pd(
                            a0,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add(j * stride + r)),
                                _mm256_maskz_loadu_pd(mask, xp.offset(i as isize + o0 as isize)),
                            ),
                        );
                        a1 = _mm256_add_pd(
                            a1,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 1) * stride + r)),
                                _mm256_maskz_loadu_pd(mask, xp.offset(i as isize + o1 as isize)),
                            ),
                        );
                        a2 = _mm256_add_pd(
                            a2,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 2) * stride + r)),
                                _mm256_maskz_loadu_pd(mask, xp.offset(i as isize + o2 as isize)),
                            ),
                        );
                        a3 = _mm256_add_pd(
                            a3,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 3) * stride + r)),
                                _mm256_maskz_loadu_pd(mask, xp.offset(i as isize + o3 as isize)),
                            ),
                        );
                        j += 4;
                    }
                    let mut tv = _mm256_setzero_pd();
                    while j < m {
                        let o = *off.get_unchecked(j);
                        tv = _mm256_add_pd(
                            tv,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add(j * stride + r)),
                                _mm256_maskz_loadu_pd(mask, xp.offset(i as isize + o as isize)),
                            ),
                        );
                        j += 1;
                    }
                    let s = _mm256_add_pd(
                        _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)),
                        tv,
                    );
                    _mm256_mask_storeu_pd(yp.add(i), mask, s);
                    i += cl;
                    continue;
                }
                let mask: __mmask8 = if cl == 8 { 0xff } else { (1u8 << cl) - 1 };
                let mut a0 = _mm512_setzero_pd();
                let mut a1 = _mm512_setzero_pd();
                let mut a2 = _mm512_setzero_pd();
                let mut a3 = _mm512_setzero_pd();
                let mut j = 0;
                while j + 4 <= m4 {
                    let o0 = *off.get_unchecked(j);
                    let o1 = *off.get_unchecked(j + 1);
                    let o2 = *off.get_unchecked(j + 2);
                    let o3 = *off.get_unchecked(j + 3);
                    a0 = _mm512_add_pd(
                        a0,
                        _mm512_mul_pd(
                            _mm512_loadu_pd(vp.add(j * stride + r)),
                            _mm512_maskz_loadu_pd(mask, xp.offset(i as isize + o0 as isize)),
                        ),
                    );
                    a1 = _mm512_add_pd(
                        a1,
                        _mm512_mul_pd(
                            _mm512_loadu_pd(vp.add((j + 1) * stride + r)),
                            _mm512_maskz_loadu_pd(mask, xp.offset(i as isize + o1 as isize)),
                        ),
                    );
                    a2 = _mm512_add_pd(
                        a2,
                        _mm512_mul_pd(
                            _mm512_loadu_pd(vp.add((j + 2) * stride + r)),
                            _mm512_maskz_loadu_pd(mask, xp.offset(i as isize + o2 as isize)),
                        ),
                    );
                    a3 = _mm512_add_pd(
                        a3,
                        _mm512_mul_pd(
                            _mm512_loadu_pd(vp.add((j + 3) * stride + r)),
                            _mm512_maskz_loadu_pd(mask, xp.offset(i as isize + o3 as isize)),
                        ),
                    );
                    j += 4;
                }
                let mut tv = _mm512_setzero_pd();
                while j < m {
                    let o = *off.get_unchecked(j);
                    tv = _mm512_add_pd(
                        tv,
                        _mm512_mul_pd(
                            _mm512_loadu_pd(vp.add(j * stride + r)),
                            _mm512_maskz_loadu_pd(mask, xp.offset(i as isize + o as isize)),
                        ),
                    );
                    j += 1;
                }
                let s =
                    _mm512_add_pd(_mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3)), tv);
                _mm512_mask_storeu_pd(yp.add(i), mask, s);
                i += 8;
            }
        }
        for i in next..rows.end {
            y[i] = a.row_dot(i, x);
        }
    }

    /// AVX2 fallback: 4 rows per vector op, `vmaskmovpd` for the
    /// fault-suppressed `x` loads and masked stores of partial chunks.
    ///
    /// # Safety
    /// Requires `avx2`; preconditions as in [`Self::spmv_rows_avx512`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn spmv_rows_avx2(&self, a: &Csr, rows: Range<usize>, x: &[f64], y: &mut [f64]) {
        use core::arch::x86_64::*;
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut next = rows.start;
        for run in &self.runs {
            let (start, len) = (run.start as usize, run.len as usize);
            if start + len <= rows.start {
                continue;
            }
            if start >= rows.end {
                break;
            }
            let lo = next.max(start);
            let hi = rows.end.min(start + len);
            for i in next..lo {
                y[i] = a.row_dot(i, x);
            }
            next = hi;
            let pid = run.pid as usize;
            let off = &self.pat_offsets[self.pat_ptr[pid] as usize..self.pat_ptr[pid + 1] as usize];
            let m = off.len();
            let m4 = m & !3;
            let stride = (len + LANES - 1) & !(LANES - 1);
            let vp = self.vals.as_ptr().add(self.shift + run.base as usize);
            let mut i = lo;
            while i < hi {
                let r = i - start;
                let cl = (hi - i).min(4);
                // Lanes `cl..4` are masked: `vmaskmovpd` suppresses their
                // faults and reads them as zero, the store drops them.
                let mask = match cl {
                    4 => _mm256_set1_epi64x(-1),
                    3 => _mm256_setr_epi64x(-1, -1, -1, 0),
                    2 => _mm256_setr_epi64x(-1, -1, 0, 0),
                    _ => _mm256_setr_epi64x(-1, 0, 0, 0),
                };
                let mut a0 = _mm256_setzero_pd();
                let mut a1 = _mm256_setzero_pd();
                let mut a2 = _mm256_setzero_pd();
                let mut a3 = _mm256_setzero_pd();
                let mut j = 0;
                while j + 4 <= m4 {
                    let o0 = *off.get_unchecked(j);
                    let o1 = *off.get_unchecked(j + 1);
                    let o2 = *off.get_unchecked(j + 2);
                    let o3 = *off.get_unchecked(j + 3);
                    if cl == 4 {
                        a0 = _mm256_add_pd(
                            a0,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add(j * stride + r)),
                                _mm256_loadu_pd(xp.offset(i as isize + o0 as isize)),
                            ),
                        );
                        a1 = _mm256_add_pd(
                            a1,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 1) * stride + r)),
                                _mm256_loadu_pd(xp.offset(i as isize + o1 as isize)),
                            ),
                        );
                        a2 = _mm256_add_pd(
                            a2,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 2) * stride + r)),
                                _mm256_loadu_pd(xp.offset(i as isize + o2 as isize)),
                            ),
                        );
                        a3 = _mm256_add_pd(
                            a3,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 3) * stride + r)),
                                _mm256_loadu_pd(xp.offset(i as isize + o3 as isize)),
                            ),
                        );
                    } else {
                        a0 = _mm256_add_pd(
                            a0,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add(j * stride + r)),
                                _mm256_maskload_pd(xp.offset(i as isize + o0 as isize), mask),
                            ),
                        );
                        a1 = _mm256_add_pd(
                            a1,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 1) * stride + r)),
                                _mm256_maskload_pd(xp.offset(i as isize + o1 as isize), mask),
                            ),
                        );
                        a2 = _mm256_add_pd(
                            a2,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 2) * stride + r)),
                                _mm256_maskload_pd(xp.offset(i as isize + o2 as isize), mask),
                            ),
                        );
                        a3 = _mm256_add_pd(
                            a3,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(vp.add((j + 3) * stride + r)),
                                _mm256_maskload_pd(xp.offset(i as isize + o3 as isize), mask),
                            ),
                        );
                    }
                    j += 4;
                }
                let mut tv = _mm256_setzero_pd();
                while j < m {
                    let o = *off.get_unchecked(j);
                    let xv = if cl == 4 {
                        _mm256_loadu_pd(xp.offset(i as isize + o as isize))
                    } else {
                        _mm256_maskload_pd(xp.offset(i as isize + o as isize), mask)
                    };
                    tv = _mm256_add_pd(
                        tv,
                        _mm256_mul_pd(_mm256_loadu_pd(vp.add(j * stride + r)), xv),
                    );
                    j += 1;
                }
                let s =
                    _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)), tv);
                _mm256_maskstore_pd(yp.add(i), mask, s);
                i += cl;
            }
        }
        for i in next..rows.end {
            y[i] = a.row_dot(i, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::coo::Coo;
    use crate::csr::Csr;
    use crate::simd::{set_mode, test_mode_lock, SimdMode};
    use proptest::prelude::*;

    /// 27-point stencil on an `n³` grid: the run-rich operator the plan is
    /// built for (every interior x-line is one run).
    fn twenty_seven_pt(n: usize) -> Csr {
        let id = |i: usize, j: usize, k: usize| i * n * n + j * n + k;
        let mut c = Coo::new(n * n * n, n * n * n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    for di in -1i64..=1 {
                        for dj in -1i64..=1 {
                            for dk in -1i64..=1 {
                                let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                                if ii < 0
                                    || jj < 0
                                    || kk < 0
                                    || ii >= n as i64
                                    || jj >= n as i64
                                    || kk >= n as i64
                                {
                                    continue;
                                }
                                let w = if (di, dj, dk) == (0, 0, 0) { 26.0 } else { -1.0 };
                                c.push(
                                    id(i, j, k),
                                    id(ii as usize, jj as usize, kk as usize),
                                    w + 0.01 * (id(i, j, k) % 7) as f64,
                                );
                            }
                        }
                    }
                }
            }
        }
        c.to_csr()
    }

    fn dense_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
                ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn plan_detected_on_stencil_not_on_irregular() {
        if !crate::simd::supported() || !cfg!(target_arch = "x86_64") {
            return;
        }
        let _guard = test_mode_lock();
        let a = twenty_seven_pt(6);
        set_mode(SimdMode::Off);
        assert!(a.stencil_stats().is_none(), "no plan while SIMD is off");
        set_mode(SimdMode::Force);
        let stats = a.stencil_stats().expect("27pt must be stencil-structured");
        // Every x-line interior (n − 2 of n rows) is covered.
        assert!(stats.covered_rows * 2 >= a.nrows());
        assert!(stats.runs >= 36, "one run per x-line at least");
        // Irregular row lengths defeat run detection.
        let mut c = Coo::new(64, 64);
        for i in 0..64usize {
            c.push(i, i, 4.0);
            for d in 1..=(i % 5) {
                if i >= d {
                    c.push(i, i - d, -1.0);
                }
            }
        }
        assert!(c.to_csr().stencil_stats().is_none());
        set_mode(SimdMode::Auto);
    }

    #[test]
    fn stencil_spmv_and_residual_bit_identical_to_scalar() {
        let _guard = test_mode_lock();
        for n in [4usize, 5, 6] {
            let a = twenty_seven_pt(n);
            let x = dense_vec(a.ncols(), n as u64);
            let b = dense_vec(a.nrows(), n as u64 + 17);
            let nr = a.nrows();
            let (mut y0, mut y1) = (vec![0.0; nr], vec![0.0; nr]);
            let (mut r0, mut r1) = (vec![0.0; nr], vec![0.0; nr]);
            set_mode(SimdMode::Off);
            a.spmv(&x, &mut y0);
            a.residual(&b, &x, &mut r0);
            set_mode(SimdMode::Force);
            a.spmv(&x, &mut y1);
            a.residual(&b, &x, &mut r1);
            set_mode(SimdMode::Auto);
            for i in 0..nr {
                assert_eq!(y1[i].to_bits(), y0[i].to_bits(), "spmv n={n} row {i}");
                assert_eq!(r1[i].to_bits(), r0[i].to_bits(), "residual n={n} row {i}");
            }
        }
    }

    /// Row-range clipping at every lane remainder: chunk boundaries landing
    /// anywhere inside a run (offsets 0..=8 from either end) must not change
    /// a single bit of any row.
    #[test]
    fn clipped_ranges_bit_identical_at_every_remainder() {
        let _guard = test_mode_lock();
        let a = twenty_seven_pt(5);
        let nr = a.nrows();
        let x = dense_vec(a.ncols(), 3);
        let mut reference = vec![0.0; nr];
        set_mode(SimdMode::Off);
        a.spmv(&x, &mut reference);
        set_mode(SimdMode::Force);
        let mut y = vec![0.0; nr];
        for split in 0..=16usize {
            let mid = (nr / 3 + split).min(nr);
            y.iter_mut().for_each(|v| *v = f64::NAN);
            a.spmv_rows(0..mid, &x, &mut y);
            a.spmv_rows(mid..nr, &x, &mut y);
            for i in 0..nr {
                assert_eq!(y[i].to_bits(), reference[i].to_bits(), "split {split} row {i}");
            }
        }
        // Narrow windows: every width 1..=9 at every alignment near a run.
        for start in 40..56usize {
            for w in 1..=9usize {
                let end = (start + w).min(nr);
                y.iter_mut().for_each(|v| *v = f64::NAN);
                a.spmv_rows(start..end, &x, &mut y);
                for i in start..end {
                    assert_eq!(
                        y[i].to_bits(),
                        reference[i].to_bits(),
                        "win {start}..{end} row {i}"
                    );
                }
            }
        }
        set_mode(SimdMode::Auto);
    }

    #[test]
    fn value_mutation_invalidates_plan() {
        let _guard = test_mode_lock();
        let mut a = twenty_seven_pt(4);
        let x = dense_vec(a.ncols(), 9);
        let nr = a.nrows();
        let mut y = vec![0.0; nr];
        set_mode(SimdMode::Force);
        a.spmv(&x, &mut y); // builds and uses the plan
        for v in a.vals_mut() {
            *v *= 2.0; // must drop the stale repack
        }
        let mut y2 = vec![0.0; nr];
        a.spmv(&x, &mut y2);
        set_mode(SimdMode::Off);
        let mut yref = vec![0.0; nr];
        a.spmv(&x, &mut yref);
        set_mode(SimdMode::Auto);
        for i in 0..nr {
            assert_eq!(y2[i].to_bits(), yref[i].to_bits(), "row {i}");
            assert_eq!(y2[i].to_bits(), (2.0 * y[i]).to_bits(), "doubling row {i}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random banded matrices (translate-invariant bands, so runs of
        /// every remainder class arise) with random dirty borders: the
        /// planned path must be bit-identical to scalar on every row and
        /// for an arbitrary two-cut range partition.
        #[test]
        fn planned_spmv_bit_identical_on_random_bands(
            nrows in 16usize..96,
            band_vec in proptest::collection::vec(-6i64..=6, 1..=5),
            border in 0usize..4,
            cuts in proptest::collection::vec(0usize..96, 2),
            seed in 0u64..1000,
        ) {
            let bands: std::collections::BTreeSet<i64> = band_vec.iter().copied().collect();
            let mut c = Coo::new(nrows, nrows);
            for i in 0..nrows {
                // Dirty border rows break the leading/trailing runs so the
                // clip logic sees gaps; they get a diagonal only.
                if i < border || i + border > nrows {
                    c.push(i, i, 1.0 + i as f64);
                    continue;
                }
                for &b in &bands {
                    let j = i as i64 + b;
                    if (0..nrows as i64).contains(&j) {
                        c.push(i, j as usize, 0.1 + ((i * 31 + j as usize) % 13) as f64);
                    }
                }
                if !bands.contains(&0) {
                    c.push(i, i, 3.0);
                }
            }
            let a = c.to_csr();
            let x = dense_vec(nrows, seed);
            let _guard = test_mode_lock();
            set_mode(SimdMode::Off);
            let mut yref = vec![0.0; nrows];
            a.spmv(&x, &mut yref);
            set_mode(SimdMode::Force);
            let mut y = vec![0.0; nrows];
            a.spmv(&x, &mut y);
            let (mut c0, mut c1) = (cuts[0] % (nrows + 1), cuts[1] % (nrows + 1));
            if c0 > c1 {
                std::mem::swap(&mut c0, &mut c1);
            }
            let mut yp = vec![0.0; nrows];
            a.spmv_rows(0..c0, &x, &mut yp);
            a.spmv_rows(c0..c1, &x, &mut yp);
            a.spmv_rows(c1..nrows, &x, &mut yp);
            set_mode(SimdMode::Auto);
            for i in 0..nrows {
                prop_assert_eq!(y[i].to_bits(), yref[i].to_bits(), "full row {}", i);
                prop_assert_eq!(yp[i].to_bits(), yref[i].to_bits(), "split row {}", i);
            }
        }
    }
}
