//! Coordinate-format (triplet) sparse matrix builder.
//!
//! Problem generators assemble matrices by pushing `(row, col, value)`
//! triplets; duplicates are summed when converting to [`Csr`], which matches
//! the assembly semantics of finite-element and finite-difference codes.

use crate::csr::Csr;

/// A sparse matrix under assembly, stored as unsorted triplets.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty builder with room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut c = Self::new(nrows, ncols);
        c.rows.reserve(cap);
        c.cols.reserve(cap);
        c.vals.reserve(cap);
        c
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates included).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `v` at `(i, j)`. Duplicate entries are summed on conversion.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols, "({i},{j}) out of bounds");
        self.rows.push(i as u32);
        self.cols.push(j as u32);
        self.vals.push(v);
    }

    /// Converts to CSR, summing duplicate entries and sorting columns within
    /// each row. Entries that sum to exactly zero are kept (structural
    /// zeros do occur in FEM assembly and are harmless).
    pub fn to_csr(&self) -> Csr {
        let nnz = self.vals.len();
        // Counting sort by row.
        let mut row_counts = vec![0u32; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let row_ptr_tmp = row_counts.clone();
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        {
            let mut next = row_ptr_tmp.clone();
            for k in 0..nnz {
                let r = self.rows[k] as usize;
                let dst = next[r] as usize;
                col_idx[dst] = self.cols[k];
                vals[dst] = self.vals[k];
                next[r] += 1;
            }
        }
        // Sort within each row and combine duplicates.
        let mut out_ptr = vec![0u32; self.nrows + 1];
        let mut out_cols: Vec<u32> = Vec::with_capacity(nnz);
        let mut out_vals: Vec<f64> = Vec::with_capacity(nnz);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for i in 0..self.nrows {
            let lo = row_ptr_tmp[i] as usize;
            let hi = row_ptr_tmp[i + 1] as usize;
            scratch.clear();
            scratch.extend(col_idx[lo..hi].iter().copied().zip(vals[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let c = scratch[k].0;
                let mut v = scratch[k].1;
                k += 1;
                while k < scratch.len() && scratch[k].0 == c {
                    v += scratch[k].1;
                    k += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
            }
            out_ptr[i + 1] = out_cols.len() as u32;
        }
        Csr::from_raw(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let coo = Coo::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 0, -1.0);
        coo.push(0, 1, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut coo = Coo::new(1, 5);
        for &j in &[4usize, 1, 3, 0, 2] {
            coo.push(0, j, j as f64);
        }
        let csr = coo.to_csr();
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0, 1, 2, 3, 4]);
        assert_eq!(vals, &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unbalanced_rows() {
        let mut coo = Coo::new(4, 4);
        coo.push(3, 0, 1.0);
        coo.push(3, 1, 2.0);
        coo.push(3, 2, 3.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row(0).0.len(), 0);
        assert_eq!(csr.row(3).0.len(), 3);
    }
}
