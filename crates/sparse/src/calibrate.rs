//! Host calibration: measure, once per machine, which kernels pay off.
//!
//! The thread-count heuristics and kernel defaults in this workspace were
//! tuned on one development box; the whole point of an *environment-aware*
//! perf layer is to stop hard-coding them. This module measures, on the
//! actual host:
//!
//! * the **serial/parallel crossover** for the setup-phase kernels (the
//!   smallest matrix where a 2-thread transpose beats the serial one), which
//!   drives [`auto_setup_threads`](crate::parallel::auto_setup_threads);
//! * the **scalar/SIMD speedup** of the `dot4` SpMV path;
//! * the **CSR/BSR speedup** on a 3×3 block-dense operator, which drives
//!   `KernelSelect::Auto`.
//!
//! ## Determinism rules
//!
//! Library code never measures implicitly — a timing loop inside
//! `build_hierarchy` would make test runs machine-load-dependent. Instead:
//!
//! * [`get`] only *loads* a cached calibration (from
//!   `$ASYNCMG_CALIBRATION_FILE`, else `~/.cache/asyncmg/calibration.json`),
//!   validated against the current [`HostFingerprint`] and format version;
//!   absent or stale caches silently fall back to the built-in defaults.
//!   Setting `ASYNCMG_CALIBRATE=1` additionally measures-and-saves on first
//!   use (opt-in, for long-running production processes).
//! * [`ensure_measured`] measures and saves unconditionally; the
//!   `calibrate` bin in `asyncmg-bench` (see `tools/calibrate.sh`) and the
//!   benches call it explicitly.
//!
//! Whatever the calibration says, results never change — kernel and thread
//! choices are bit-transparent by construction — and the values are clamped
//! to the documented safe ranges so a corrupt cache cannot produce
//! pathological behaviour.

use crate::bsr::Bsr;
use crate::coo::Coo;
use crate::csr::Csr;
use crate::simd;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// Format version of the cache file; bump when the measurement scheme or
/// schema changes so stale caches re-measure instead of mis-parsing.
pub const CALIBRATION_VERSION: u32 = 1;

/// Floor for the calibrated parallel-crossover threshold: below this many
/// nonzeros a fork-join can never pay for itself, and the clamp keeps the
/// small-matrix-stays-serial invariant the tests rely on even under a
/// corrupt cache.
pub const MIN_NNZ_PER_THREAD_FLOOR: usize = 16 * 1024;

/// Hard cap on setup threads, matching the pre-calibration heuristic.
pub const MAX_SETUP_THREADS_CAP: usize = 8;

/// Identity of the machine a calibration was measured on. A cached file
/// whose fingerprint differs from the running host is ignored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Target architecture (`x86_64`, `aarch64`, ...).
    pub arch: String,
    /// Available hardware parallelism (`nproc`).
    pub nproc: usize,
    /// Best SIMD path this CPU supports (`avx512`, `avx2`, `neon` or
    /// `scalar`) — independent of the current runtime mode.
    pub simd: String,
}

impl HostFingerprint {
    /// Fingerprint of the machine this process runs on.
    pub fn current() -> HostFingerprint {
        HostFingerprint {
            arch: std::env::consts::ARCH.to_string(),
            nproc: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            simd: simd::capability_name().to_string(),
        }
    }
}

/// Measured kernel characteristics of one host.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    /// The machine the numbers were measured on.
    pub fingerprint: HostFingerprint,
    /// Nonzeros per thread below which setup kernels stay serial.
    pub min_nnz_per_thread: usize,
    /// Largest setup-kernel team worth forking on this host.
    pub max_setup_threads: usize,
    /// Measured SIMD-over-scalar SpMV speedup (1.0 when unsupported).
    pub simd_speedup: f64,
    /// Measured BSR-over-CSR SpMV speedup on a 3×3 block operator.
    pub bsr_speedup: f64,
    /// Whether `KernelSelect::Auto` should take the SIMD path.
    pub use_simd: bool,
    /// Whether `KernelSelect::Auto` should install BSR operators.
    pub use_bsr: bool,
}

impl Default for Calibration {
    /// The built-in assumptions used when no calibration is cached: the
    /// historical 64 Ki-nnz crossover, up to 8 setup threads, and "SIMD and
    /// BSR are worth it wherever supported/applicable".
    fn default() -> Calibration {
        Calibration {
            fingerprint: HostFingerprint::current(),
            min_nnz_per_thread: 64 * 1024,
            max_setup_threads: MAX_SETUP_THREADS_CAP,
            simd_speedup: 1.0,
            bsr_speedup: 1.0,
            use_simd: simd::supported(),
            use_bsr: true,
        }
    }
}

/// Where the calibration cache lives: `$ASYNCMG_CALIBRATION_FILE` if set,
/// else `$XDG_CACHE_HOME/asyncmg/calibration.json`, else
/// `~/.cache/asyncmg/calibration.json`. `None` when no home directory can
/// be determined.
pub fn cache_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("ASYNCMG_CALIBRATION_FILE") {
        if !p.is_empty() {
            return Some(PathBuf::from(p));
        }
    }
    let base = match std::env::var("XDG_CACHE_HOME") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => {
            let home = std::env::var("HOME").ok().filter(|h| !h.is_empty())?;
            PathBuf::from(home).join(".cache")
        }
    };
    Some(base.join("asyncmg").join("calibration.json"))
}

impl Calibration {
    /// Serialises to the cache-file JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"fingerprint\": {{ \"arch\": \"{}\", \"nproc\": {}, \"simd\": \"{}\" }},\n  \"min_nnz_per_thread\": {},\n  \"max_setup_threads\": {},\n  \"simd_speedup\": {:.3},\n  \"bsr_speedup\": {:.3},\n  \"use_simd\": {},\n  \"use_bsr\": {}\n}}\n",
            CALIBRATION_VERSION,
            self.fingerprint.arch,
            self.fingerprint.nproc,
            self.fingerprint.simd,
            self.min_nnz_per_thread,
            self.max_setup_threads,
            self.simd_speedup,
            self.bsr_speedup,
            self.use_simd,
            self.use_bsr,
        )
    }

    /// Parses a cache file. Returns `None` on malformed input or a format
    /// version other than [`CALIBRATION_VERSION`].
    pub fn from_json(s: &str) -> Option<Calibration> {
        if json_num(s, "version")? as u32 != CALIBRATION_VERSION {
            return None;
        }
        Some(Calibration {
            fingerprint: HostFingerprint {
                arch: json_str(s, "arch")?,
                nproc: json_num(s, "nproc")? as usize,
                simd: json_str(s, "simd")?,
            },
            min_nnz_per_thread: json_num(s, "min_nnz_per_thread")? as usize,
            max_setup_threads: json_num(s, "max_setup_threads")? as usize,
            simd_speedup: json_num(s, "simd_speedup")?,
            bsr_speedup: json_num(s, "bsr_speedup")?,
            use_simd: json_bool(s, "use_simd")?,
            use_bsr: json_bool(s, "use_bsr")?,
        })
    }

    /// Clamps every field to its documented safe range.
    fn clamped(mut self) -> Calibration {
        self.min_nnz_per_thread = self.min_nnz_per_thread.clamp(MIN_NNZ_PER_THREAD_FLOOR, 1 << 24);
        self.max_setup_threads = self.max_setup_threads.clamp(1, MAX_SETUP_THREADS_CAP);
        self
    }

    /// Loads the cached calibration if present, parseable, current-version
    /// and measured on this machine.
    pub fn load() -> Option<Calibration> {
        let path = cache_path()?;
        let text = std::fs::read_to_string(path).ok()?;
        let cal = Calibration::from_json(&text)?;
        if cal.fingerprint != HostFingerprint::current() {
            return None;
        }
        Some(cal.clamped())
    }

    /// Writes this calibration to the cache path, creating parent
    /// directories as needed.
    pub fn save(&self) -> std::io::Result<()> {
        let path = cache_path().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no cache directory")
        })?;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Runs the measurement pass (a few hundred milliseconds) and returns
    /// the resulting calibration. Does not touch the cache; see
    /// [`ensure_measured`].
    pub fn measure() -> Calibration {
        let fp = HostFingerprint::current();

        // --- scalar vs SIMD SpMV on a 27-entry banded operator ---
        let a = banded_csr(24_000, 27);
        let x = vec![1.0 / 3.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        let prev = simd::mode();
        simd::set_mode(simd::SimdMode::Off);
        let t_scalar = time_min(5, || a.spmv(&x, &mut y));
        simd::set_mode(simd::SimdMode::Force);
        let t_simd = time_min(5, || a.spmv(&x, &mut y));
        simd::set_mode(prev);
        let simd_speedup = if simd::supported() && t_simd > 0.0 { t_scalar / t_simd } else { 1.0 };

        // --- CSR vs BSR SpMV on a 3×3 block-dense operator (compared with
        //     the ambient SIMD setting on both sides) ---
        let ab = block3_csr(6_000);
        let bsr = Bsr::from_csr(&ab, 3).expect("generator is 3-aligned");
        debug_assert_eq!(bsr.fill(), 0);
        let xb = vec![0.25; ab.ncols()];
        let mut yb = vec![0.0; ab.nrows()];
        let t_csr = time_min(5, || ab.spmv(&xb, &mut yb));
        let t_bsr = time_min(5, || bsr.spmv(&xb, &mut yb));
        let bsr_speedup = if t_bsr > 0.0 { t_csr / t_bsr } else { 1.0 };

        // --- serial/parallel crossover for the setup kernels ---
        let (min_nnz_per_thread, max_setup_threads) = if fp.nproc < 2 {
            // No second core: parallel setup can only lose.
            (64 * 1024, 1)
        } else {
            let mut crossover = None;
            for rows in [2_000usize, 4_000, 8_000, 16_000, 32_000] {
                let m = banded_csr(rows, 27);
                let t1 = time_min(3, || drop(crate::parallel::transpose_parallel(&m, 1)));
                let t2 = time_min(3, || drop(crate::parallel::transpose_parallel(&m, 2)));
                if t2 < t1 * 0.9 {
                    crossover = Some(m.nnz() / 2);
                    break;
                }
            }
            match crossover {
                Some(c) => (c, fp.nproc.min(MAX_SETUP_THREADS_CAP)),
                None => (1 << 24, 1),
            }
        };

        Calibration {
            fingerprint: fp,
            min_nnz_per_thread,
            max_setup_threads,
            simd_speedup,
            bsr_speedup,
            use_simd: simd::supported() && simd_speedup >= 1.05,
            use_bsr: bsr_speedup >= 1.05,
        }
        .clamped()
    }
}

static LOADED: OnceLock<Option<Calibration>> = OnceLock::new();

/// The process-wide calibration, if one is available.
///
/// Loads the cache on first call (and, when `ASYNCMG_CALIBRATE=1`, measures
/// and saves if the cache is absent or stale). Returns `None` when nothing
/// is cached — callers fall back to the built-in defaults. Never measures
/// unless explicitly opted in, so test runs stay machine-load-independent.
pub fn get() -> Option<&'static Calibration> {
    LOADED
        .get_or_init(|| {
            if let Some(c) = Calibration::load() {
                return Some(c);
            }
            if std::env::var("ASYNCMG_CALIBRATE").is_ok_and(|v| v == "1") {
                let c = Calibration::measure();
                let _ = c.save();
                return Some(c);
            }
            None
        })
        .as_ref()
}

/// Measures now, saves to the cache and installs the result process-wide
/// (unless [`get`] already resolved). For the `calibrate` bin and benches.
pub fn ensure_measured() -> Calibration {
    let c = Calibration::measure();
    let _ = c.save();
    let _ = LOADED.set(Some(c.clone()));
    c
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A square banded matrix with `diags` diagonals (27 ≈ the 27-point
/// stencil's row density), used as the measurement workload.
fn banded_csr(n: usize, diags: usize) -> Csr {
    let half = diags / 2;
    let mut c = Coo::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        for j in lo..hi {
            c.push(i, j, if i == j { diags as f64 } else { -1.0 / (diags as f64) });
        }
    }
    c.to_csr()
}

/// A 3×3 block-dense band matrix (`nbr` block rows, up to 9 blocks per
/// block row), the elasticity-like BSR measurement workload.
fn block3_csr(nbr: usize) -> Csr {
    let mut c = Coo::new(nbr * 3, nbr * 3);
    for bi in 0..nbr {
        let lo = bi.saturating_sub(4);
        let hi = (bi + 5).min(nbr);
        for bj in lo..hi {
            for r in 0..3 {
                for cc in 0..3 {
                    let v = if bi == bj && r == cc { 12.0 } else { -0.125 };
                    c.push(bi * 3 + r, bj * 3 + cc, v);
                }
            }
        }
    }
    c.to_csr()
}

// --- minimal flat-JSON field extraction (the cache schema is flat and
// generated by `to_json`; this is not a general JSON parser) ---

fn json_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    Some(rest)
}

fn json_num(s: &str, key: &str) -> Option<f64> {
    let rest = json_field(s, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_bool(s: &str, key: &str) -> Option<bool> {
    let rest = json_field(s, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn json_str(s: &str, key: &str) -> Option<String> {
    let rest = json_field(s, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let cal = Calibration {
            fingerprint: HostFingerprint { arch: "x86_64".into(), nproc: 4, simd: "avx2".into() },
            min_nnz_per_thread: 123_456,
            max_setup_threads: 4,
            simd_speedup: 2.125,
            bsr_speedup: 1.5,
            use_simd: true,
            use_bsr: false,
        };
        let parsed = Calibration::from_json(&cal.to_json()).unwrap();
        assert_eq!(parsed, cal);
    }

    #[test]
    fn version_mismatch_rejected() {
        let cal = Calibration::default();
        let bumped = cal.to_json().replace(
            &format!("\"version\": {CALIBRATION_VERSION}"),
            &format!("\"version\": {}", CALIBRATION_VERSION + 1),
        );
        assert!(Calibration::from_json(&bumped).is_none());
        assert!(Calibration::from_json("not json at all").is_none());
    }

    #[test]
    fn clamps_hold() {
        let wild = Calibration {
            min_nnz_per_thread: 0,
            max_setup_threads: 10_000,
            ..Calibration::default()
        }
        .clamped();
        assert_eq!(wild.min_nnz_per_thread, MIN_NNZ_PER_THREAD_FLOOR);
        assert_eq!(wild.max_setup_threads, MAX_SETUP_THREADS_CAP);
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(HostFingerprint::current(), HostFingerprint::current());
        assert!(HostFingerprint::current().nproc >= 1);
    }
}
