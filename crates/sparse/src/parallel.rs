//! Thread-parallel setup-phase kernels: SpGEMM, transpose and the Galerkin
//! triple product.
//!
//! The solve phase of the paper is parallel from the start, but a serial
//! setup phase caps end-to-end speedup (Amdahl). These kernels parallelise
//! the three operators the hierarchy build spends its time in, using the same
//! fork-join team machinery (`asyncmg-threads`) as the solvers — no external
//! thread pool.
//!
//! Every kernel follows the classic two-pass row-block scheme used by
//! BoomerAMG's Galerkin products:
//!
//! 1. **Symbolic pass** — each thread walks a contiguous block of rows
//!    (static `chunk_range` partitioning) and counts the entries it will
//!    produce, writing per-row (or per-thread-per-column) counts at disjoint
//!    positions.
//! 2. A serial **prefix sum** over the counts fixes the output layout and
//!    sizes the index/value arrays exactly — no reallocation, no guessing.
//! 3. **Numeric pass** — each thread fills its region of the shared output
//!    ([`RacyBuf`]) through provably disjoint writes.
//!
//! Because each thread processes its rows in the same order with the same
//! per-row dense-accumulator merge as the serial kernels, the output is
//! **bit-identical** to the serial result at any thread count — the property
//! tests in this module assert exact equality, and parallel setup can be
//! enabled by default without perturbing convergence histories.

use crate::csr::Csr;
use crate::spgemm::spgemm;
use asyncmg_threads::{run_teams, RacyBuf};

/// Threads to use for a setup kernel over a matrix with `nnz` stored entries,
/// when the caller asks for automatic selection.
///
/// Small matrices (the coarse grids of a hierarchy) stay serial: forking a
/// team costs more than the multiply. The threshold is deliberately
/// conservative — a 27-point 3-D operator crosses it around a `20³` grid.
/// When a host calibration is cached ([`crate::calibrate`]), its measured
/// serial/parallel crossover and team-size cap replace the built-in
/// defaults; calibrated values are clamped so the small-stays-serial and
/// ≤ 8-thread invariants hold regardless of cache contents.
pub fn auto_setup_threads(nnz: usize) -> usize {
    const MIN_NNZ_PER_THREAD: usize = 64 * 1024;
    let (min_per, cap) = match crate::calibrate::get() {
        Some(c) => (c.min_nnz_per_thread.max(1), c.max_setup_threads.max(1)),
        None => (MIN_NNZ_PER_THREAD, 8),
    };
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(8).min(cap).min(nnz / min_per).max(1)
}

/// Computes `C = A B` on `n_threads` threads; bit-identical to
/// [`spgemm`].
///
/// Two fork-joins: a symbolic pass counting each output row's entries
/// (per-thread marker arrays, disjoint per-row count writes), then — after a
/// serial prefix sum sizes the output exactly — a numeric pass where each
/// thread fills the contiguous output region of its row block with the same
/// dense-accumulator merge as the serial kernel.
pub fn spgemm_parallel(a: &Csr, b: &Csr, n_threads: usize) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "dimension mismatch in spgemm_parallel");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let nt = n_threads.max(1).min(nrows.max(1));
    if nt <= 1 {
        return spgemm(a, b);
    }

    // Pass 1 (symbolic): count the entries of each output row.
    let row_nnz = RacyBuf::<u32>::filled(nrows, 0);
    run_teams(&[nt], |ctx| {
        let rows = ctx.chunk(nrows);
        // SAFETY: row blocks are disjoint across ranks and threads are
        // joined before any read.
        let counts = unsafe { row_nnz.slice_mut(rows.clone()) };
        let mut marker = vec![u32::MAX; ncols];
        for (i, cnt) in rows.clone().zip(counts.iter_mut()) {
            let mut n = 0u32;
            let (a_cols, _) = a.row(i);
            for &k in a_cols {
                let (b_cols, _) = b.row(k as usize);
                for &j in b_cols {
                    if marker[j as usize] != i as u32 {
                        marker[j as usize] = i as u32;
                        n += 1;
                    }
                }
            }
            *cnt = n;
        }
    });

    // Serial prefix sum fixes the exact output layout.
    let row_nnz = row_nnz.into_vec();
    let mut row_ptr = vec![0u32; nrows + 1];
    for i in 0..nrows {
        row_ptr[i + 1] = row_ptr[i] + row_nnz[i];
    }
    let nnz = row_ptr[nrows] as usize;

    // Pass 2 (numeric): each thread owns the contiguous output region
    // spanned by its row block.
    let col_idx = RacyBuf::<u32>::filled(nnz, 0);
    let vals = RacyBuf::<f64>::filled(nnz, 0.0);
    run_teams(&[nt], |ctx| {
        let rows = ctx.chunk(nrows);
        let lo = row_ptr[rows.start] as usize;
        let hi = row_ptr[rows.end] as usize;
        // SAFETY: [lo, hi) regions of consecutive row blocks are disjoint
        // (row_ptr is monotone) and threads are joined before any read.
        let (my_cols, my_vals) = unsafe { (col_idx.slice_mut(lo..hi), vals.slice_mut(lo..hi)) };
        let mut acc = vec![0.0f64; ncols];
        let mut marker = vec![u32::MAX; ncols];
        let mut touched: Vec<u32> = Vec::new();
        let mut out = 0usize;
        for i in rows {
            touched.clear();
            let (a_cols, a_vals) = a.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k as usize);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    let ju = j as usize;
                    if marker[ju] != i as u32 {
                        marker[ju] = i as u32;
                        acc[ju] = av * bv;
                        touched.push(j);
                    } else {
                        acc[ju] += av * bv;
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                my_cols[out] = j;
                my_vals[out] = acc[j as usize];
                out += 1;
            }
        }
        debug_assert_eq!(out, hi - lo);
    });

    Csr::from_raw(nrows, ncols, row_ptr, col_idx.into_vec(), vals.into_vec())
}

/// Computes `Aᵀ` on `n_threads` threads; bit-identical to
/// [`Csr::transpose`].
///
/// Pass 1 histograms column occurrences into per-thread stripes of a flat
/// `n_threads × ncols` count array; a serial combine turns the stripes into
/// row pointers plus one insertion cursor per `(thread, column)` pair; pass 2
/// scatters each thread's row block through its cursors. Within an output
/// row, entries appear in increasing original-row order (threads own
/// ascending row blocks and walk them in order), so columns come out sorted
/// exactly as in the serial kernel.
pub fn transpose_parallel(a: &Csr, n_threads: usize) -> Csr {
    let nrows = a.nrows();
    let ncols = a.ncols();
    let nt = n_threads.max(1).min(nrows.max(1));
    if nt <= 1 {
        return a.transpose();
    }

    // Pass 1: per-thread column histograms in disjoint stripes.
    let counts = RacyBuf::<u32>::filled(nt * ncols, 0);
    run_teams(&[nt], |ctx| {
        let rows = ctx.chunk(nrows);
        let stripe = ctx.rank * ncols;
        // SAFETY: stripes are disjoint per rank; threads joined before read.
        let my = unsafe { counts.slice_mut(stripe..stripe + ncols) };
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        for k in row_ptr[rows.start] as usize..row_ptr[rows.end] as usize {
            my[col_idx[k] as usize] += 1;
        }
    });

    // Serial combine: row pointers and one cursor per (thread, column).
    let counts = counts.into_vec();
    let mut row_ptr = vec![0u32; ncols + 1];
    let mut next = vec![0u32; nt * ncols];
    let mut off = 0u32;
    for j in 0..ncols {
        row_ptr[j] = off;
        for t in 0..nt {
            next[t * ncols + j] = off;
            off += counts[t * ncols + j];
        }
    }
    row_ptr[ncols] = off;
    debug_assert_eq!(off as usize, a.nnz());

    // Pass 2: scatter. Every (thread, column) cursor walks a range disjoint
    // from all others by construction of `next`.
    let out_cols = RacyBuf::<u32>::filled(a.nnz(), 0);
    let out_vals = RacyBuf::<f64>::filled(a.nnz(), 0.0);
    let next = RacyBuf::from_vec(next);
    run_teams(&[nt], |ctx| {
        let rows = ctx.chunk(nrows);
        let stripe = ctx.rank * ncols;
        // SAFETY: cursor stripes are disjoint per rank, and the output
        // positions they yield are disjoint across all ranks; threads are
        // joined before any read.
        let my_next = unsafe { next.slice_mut(stripe..stripe + ncols) };
        for i in rows {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let dst = my_next[j as usize] as usize;
                unsafe {
                    out_cols.set(dst, i as u32);
                    out_vals.set(dst, v);
                }
                my_next[j as usize] += 1;
            }
        }
    });

    Csr::from_raw(ncols, nrows, row_ptr, out_cols.into_vec(), out_vals.into_vec())
}

/// The Galerkin triple product `A_c = Pᵀ A P` on `n_threads` threads;
/// bit-identical to [`rap`](crate::spgemm::rap).
///
/// Same structure as the serial version — `R = Pᵀ` formed explicitly, then
/// `R (A P)` — with each of the three operators parallelised.
pub fn rap_parallel(a: &Csr, p: &Csr, n_threads: usize) -> Csr {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(a.ncols(), p.nrows());
    let r = transpose_parallel(p, n_threads);
    let ap = spgemm_parallel(a, p, n_threads);
    spgemm_parallel(&r, &ap, n_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::rap;

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    fn linear_interp(n_fine: usize) -> Csr {
        let nc = n_fine / 2;
        let mut p = Coo::new(n_fine, nc);
        for c in 0..nc {
            let f = 2 * c;
            p.push(f, c, 1.0);
            if f + 1 < n_fine {
                p.push(f + 1, c, 0.5);
                if c + 1 < nc {
                    p.push(f + 1, c + 1, 0.5);
                }
            }
        }
        p.to_csr()
    }

    #[test]
    fn spgemm_parallel_matches_serial() {
        let a = tridiag(31);
        let p = linear_interp(31);
        let serial = spgemm(&a, &p);
        for nt in [1, 2, 3, 7, 16] {
            assert_eq!(spgemm_parallel(&a, &p, nt), serial, "nt={nt}");
        }
    }

    #[test]
    fn transpose_parallel_matches_serial() {
        let mut c = Coo::new(5, 9);
        c.push(0, 8, 1.0);
        c.push(0, 0, -2.0);
        c.push(2, 4, 3.5);
        c.push(4, 4, 0.25);
        c.push(4, 0, 7.0);
        let a = c.to_csr();
        let serial = a.transpose();
        for nt in [1, 2, 3, 7, 16] {
            assert_eq!(transpose_parallel(&a, nt), serial, "nt={nt}");
        }
    }

    #[test]
    fn rap_parallel_matches_serial() {
        let a = tridiag(40);
        let p = linear_interp(40);
        let serial = rap(&a, &p);
        for nt in [1, 2, 4, 7] {
            assert_eq!(rap_parallel(&a, &p, nt), serial, "nt={nt}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        // Empty matrix and empty product.
        let e = Csr::from_raw(0, 0, vec![0], vec![], vec![]);
        assert_eq!(spgemm_parallel(&e, &e, 4), spgemm(&e, &e));
        assert_eq!(transpose_parallel(&e, 4), e.transpose());
        // All-zero-rows rectangular matrix.
        let z = Csr::from_raw(3, 5, vec![0, 0, 0, 0], vec![], vec![]);
        assert_eq!(transpose_parallel(&z, 2), z.transpose());
        let z2 = Csr::from_raw(5, 2, vec![0; 6], vec![], vec![]);
        assert_eq!(spgemm_parallel(&z, &z2, 3), spgemm(&z, &z2));
    }

    #[test]
    fn more_threads_than_rows() {
        let a = tridiag(3);
        assert_eq!(spgemm_parallel(&a, &a, 64), spgemm(&a, &a));
        assert_eq!(transpose_parallel(&a, 64), a.transpose());
    }

    #[test]
    fn auto_threads_is_serial_for_small_and_bounded() {
        assert_eq!(auto_setup_threads(0), 1);
        assert_eq!(auto_setup_threads(1000), 1);
        assert!(auto_setup_threads(usize::MAX / 2) <= 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::rap;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random sparse matrix with roughly `per_row` entries per row,
    /// deterministic in `seed`.
    fn random_csr(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Coo::new(nrows, ncols);
        for i in 0..nrows {
            let mut cols: Vec<usize> = (0..per_row).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            for j in cols {
                c.push(i, j, rng.gen_range(-2.0..2.0));
            }
        }
        c.to_csr()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The satellite requirement: parallel kernels bit-identical to the
        // serial ones at 1, 2 and 7 threads on random CSR matrices. Exact
        // `==` (not ULP tolerance) is intentional — identical per-row
        // accumulation order makes the results byte-equal.
        #[test]
        fn spgemm_parallel_bit_identical(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            per_row in 1usize..6,
            seed in 0u64..1_000_000,
        ) {
            let a = random_csr(m, k, per_row, seed);
            let b = random_csr(k, n, per_row, seed.wrapping_add(1));
            let serial = spgemm(&a, &b);
            for nt in [1usize, 2, 7] {
                prop_assert_eq!(&spgemm_parallel(&a, &b, nt), &serial);
            }
        }

        #[test]
        fn transpose_parallel_bit_identical(
            m in 1usize..60,
            n in 1usize..60,
            per_row in 1usize..6,
            seed in 0u64..1_000_000,
        ) {
            let a = random_csr(m, n, per_row, seed);
            let serial = a.transpose();
            for nt in [1usize, 2, 7] {
                prop_assert_eq!(&transpose_parallel(&a, nt), &serial);
            }
        }

        #[test]
        fn rap_parallel_bit_identical(
            n_fine in 2usize..50,
            per_row in 1usize..5,
            seed in 0u64..1_000_000,
        ) {
            // A square (not necessarily symmetric) fine operator and a
            // random interpolation-shaped P.
            let a = random_csr(n_fine, n_fine, per_row + 1, seed);
            let p = random_csr(n_fine, (n_fine / 2).max(1), per_row, seed.wrapping_add(2));
            let serial = rap(&a, &p);
            for nt in [1usize, 2, 7] {
                prop_assert_eq!(&rap_parallel(&a, &p, nt), &serial);
            }
        }
    }
}
