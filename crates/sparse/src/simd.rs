//! SIMD execution of the shared sparse-dot kernel `dot4`.
//!
//! Every row-oriented kernel in this crate accumulates through one scheme:
//! four independent lanes over the row's nonzeros (entry `k` lands in lane
//! `k mod 4`), combined as `(a0 + a1) + (a2 + a3) + tail`, where `tail` sums
//! the last `n mod 4` entries (see [`dot4_scalar`]). That scheme maps exactly
//! onto a 4-wide `f64` vector register, so the explicit-lane SIMD paths below
//! are **bit-identical** to the scalar loop: lane `j` performs the same
//! multiplies and adds in the same order, and the horizontal reduction uses
//! the same parenthesisation. No FMA is used anywhere — fusing the multiply
//! and add would change the rounding and break the bit-identity contract the
//! deterministic-replay harness depends on.
//!
//! Paths:
//! * **x86_64** — AVX2: one 4×u32 column load, one gathered 4×f64 `x` load,
//!   one 4×f64 value load, vector multiply + add per four nonzeros
//!   (runtime-detected via `is_x86_feature_detected!`).
//! * **aarch64** — NEON (baseline on AArch64): two 2×f64 value loads and two
//!   2-element `x` gathers per four nonzeros, lanes `(a0,a1)`/`(a2,a3)`.
//! * **everything else** — the scalar unrolled loop.
//!
//! Selection is process-global: the `ASYNCMG_SIMD` environment variable
//! (`off`/`0`/`scalar` disables, `force`/`on`/`1` forces, anything else
//! auto-detects) read once at first use, overridable at runtime with
//! [`set_mode`] (a test/bench/calibration knob). Because the SIMD paths are
//! bit-identical, switching modes never changes any numerical result — only
//! which instructions produce it.

use std::sync::atomic::{AtomicU8, Ordering};

/// How [`dot4`] picks between the scalar and SIMD implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Use SIMD when the CPU supports it (the default).
    Auto,
    /// Use SIMD whenever the CPU supports it, even if a calibration pass
    /// judged it unprofitable. Falls back to scalar on unsupporting hardware
    /// (the instructions cannot be executed there).
    Force,
    /// Always use the scalar loop.
    Off,
}

// 0 = unresolved (read env on first use), then 1/2/3 = Auto/Force/Off.
static MODE: AtomicU8 = AtomicU8::new(0);

fn mode_from_env() -> u8 {
    match std::env::var("ASYNCMG_SIMD").ok().as_deref() {
        Some("off") | Some("0") | Some("scalar") => 3,
        Some("force") | Some("on") | Some("1") => 2,
        _ => 1,
    }
}

/// Overrides the SIMD mode for this process (tests, benches and the
/// calibration pass use this; production code normally leaves the
/// environment-derived default alone). Numerical results are unaffected —
/// the SIMD paths are bit-identical to the scalar one.
pub fn set_mode(mode: SimdMode) {
    let v = match mode {
        SimdMode::Auto => 1,
        SimdMode::Force => 2,
        SimdMode::Off => 3,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The currently selected [`SimdMode`].
pub fn mode() -> SimdMode {
    match resolve_mode() {
        2 => SimdMode::Force,
        3 => SimdMode::Off,
        _ => SimdMode::Auto,
    }
}

#[inline]
fn resolve_mode() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != 0 {
        return m;
    }
    let m = mode_from_env();
    // A racing set_mode wins: only replace the unresolved sentinel.
    let _ = MODE.compare_exchange(0, m, Ordering::Relaxed, Ordering::Relaxed);
    MODE.load(Ordering::Relaxed)
}

/// Whether the vector path is supported by this CPU.
#[inline]
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // Cached by std after the first query.
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is part of the AArch64 baseline.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Whether [`dot4`] currently dispatches to the SIMD path.
#[inline]
pub fn active() -> bool {
    match resolve_mode() {
        3 => false,
        _ => supported(),
    }
}

/// Whether the widened AVX-512 variants of the blocked and stencil kernels
/// can run on this CPU. They need masked loads/stores and two-source
/// permutes on 256-bit vectors in addition to the 512-bit foundation:
/// `avx512f` + `avx512vl`.
#[inline]
pub fn avx512_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // Cached by std after the first query.
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The instruction set [`dot4`] would use right now, for host fingerprints
/// and bench reports: `"avx512"`, `"avx2"`, `"neon"` or `"scalar"`.
pub fn feature_name() -> &'static str {
    if !active() {
        return "scalar";
    }
    capability_name()
}

/// The best vector capability this CPU *has*, independent of the current
/// mode: what [`feature_name`] would report with SIMD enabled. Host
/// fingerprints in bench reports use this so a scalar-mode measurement still
/// records what the machine supports.
pub fn capability_name() -> &'static str {
    if !supported() {
        return "scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_supported() {
            "avx512"
        } else {
            "avx2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "scalar"
    }
}

/// The scalar reference implementation: four independent accumulators
/// (hides the FMA latency chain) with `get_unchecked` indexing, entry `k`
/// in lane `k mod 4`, the last `n mod 4` entries in a separate `tail`
/// accumulator, combined as `(a0 + a1) + (a2 + a3) + tail`.
///
/// This is the kernel every SIMD path must reproduce bit for bit.
#[inline(always)]
pub fn dot4_scalar(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    let n = vals.len();
    debug_assert_eq!(cols.len(), n);
    debug_assert!(cols.iter().all(|&c| (c as usize) < x.len()));
    let n4 = n & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k < n4 {
        // SAFETY: `k + 3 < n4 <= n` bounds vals/cols; every stored column
        // index is `< ncols <= x.len()` (validated by `Csr::from_raw`,
        // checked by the `debug_assert` above).
        unsafe {
            a0 += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
            a1 +=
                *vals.get_unchecked(k + 1) * *x.get_unchecked(*cols.get_unchecked(k + 1) as usize);
            a2 +=
                *vals.get_unchecked(k + 2) * *x.get_unchecked(*cols.get_unchecked(k + 2) as usize);
            a3 +=
                *vals.get_unchecked(k + 3) * *x.get_unchecked(*cols.get_unchecked(k + 3) as usize);
        }
        k += 4;
    }
    let mut tail = 0.0f64;
    while k < n {
        // SAFETY: as above, `k < n`.
        unsafe {
            tail += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
        }
        k += 1;
    }
    (a0 + a1) + (a2 + a3) + tail
}

/// AVX2 lane-exact `dot4`: per four nonzeros, one 128-bit column load, one
/// gathered `x` vector, one value vector, `mul` + `add` (no FMA). The vector
/// accumulator's lane `j` is exactly the scalar `a_j`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot4_avx2(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = vals.len();
    let n4 = n & !3;
    let mut acc = _mm256_setzero_pd();
    let mut k = 0;
    while k < n4 {
        // SAFETY: `k + 3 < n4 <= n` bounds the 128-bit column load and the
        // 256-bit value load; every column index is `< x.len()` (validated
        // by `Csr::from_raw`), bounding the gather.
        let idx = _mm_loadu_si128(cols.as_ptr().add(k) as *const __m128i);
        let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
        let vv = _mm256_loadu_pd(vals.as_ptr().add(k));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
        k += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    while k < n {
        // SAFETY: `k < n`; column in range as above.
        tail += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
        k += 1;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// NEON lane-exact `dot4`: lanes `(a0, a1)` and `(a2, a3)` live in two
/// 2×f64 vectors; `x` is gathered with scalar loads (AArch64 has no vector
/// gather), values load contiguously, `mul` + `add` (no FMA).
#[cfg(target_arch = "aarch64")]
unsafe fn dot4_neon(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    use core::arch::aarch64::*;
    let n = vals.len();
    let n4 = n & !3;
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    let mut k = 0;
    while k < n4 {
        // SAFETY: `k + 3 < n4 <= n` bounds vals/cols; every column index is
        // `< x.len()` (validated by `Csr::from_raw`).
        let x01 = [
            *x.get_unchecked(*cols.get_unchecked(k) as usize),
            *x.get_unchecked(*cols.get_unchecked(k + 1) as usize),
        ];
        let x23 = [
            *x.get_unchecked(*cols.get_unchecked(k + 2) as usize),
            *x.get_unchecked(*cols.get_unchecked(k + 3) as usize),
        ];
        let v01 = vld1q_f64(vals.as_ptr().add(k));
        let v23 = vld1q_f64(vals.as_ptr().add(k + 2));
        acc01 = vaddq_f64(acc01, vmulq_f64(v01, vld1q_f64(x01.as_ptr())));
        acc23 = vaddq_f64(acc23, vmulq_f64(v23, vld1q_f64(x23.as_ptr())));
        k += 4;
    }
    let a0 = vgetq_lane_f64::<0>(acc01);
    let a1 = vgetq_lane_f64::<1>(acc01);
    let a2 = vgetq_lane_f64::<0>(acc23);
    let a3 = vgetq_lane_f64::<1>(acc23);
    let mut tail = 0.0f64;
    while k < n {
        // SAFETY: `k < n`; column in range as above.
        tail += *vals.get_unchecked(k) * *x.get_unchecked(*cols.get_unchecked(k) as usize);
        k += 1;
    }
    (a0 + a1) + (a2 + a3) + tail
}

/// Shared sparse dot kernel `Σ_k vals[k] · x[col[k]]`, dispatching to the
/// active SIMD path ([`active`]) or the scalar loop. All paths are
/// bit-identical; see the module docs.
#[inline(always)]
pub fn dot4(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len());
    debug_assert!(cols.iter().all(|&c| (c as usize) < x.len()));
    #[cfg(target_arch = "x86_64")]
    {
        if active() {
            // SAFETY: `active()` implies AVX2 is available; slice lengths
            // and column ranges checked by the debug_asserts above and
            // guaranteed by `Csr::from_raw` for matrix-derived calls.
            return unsafe { dot4_avx2(vals, cols, x) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() {
            // SAFETY: NEON is baseline on AArch64; bounds as above.
            return unsafe { dot4_neon(vals, cols, x) };
        }
    }
    dot4_scalar(vals, cols, x)
}

/// Serialises tests that mutate or assert on the process-global SIMD mode
/// (the test harness runs tests concurrently; results are mode-independent
/// by bit-identity, but assertions *about the mode itself* are not).
#[cfg(test)]
pub(crate) fn test_mode_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random values (splitmix64-style mixing).
    fn mixed(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
                ((s >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn cols_mod(n: usize, xlen: usize, seed: u64) -> Vec<u32> {
        let mut s = seed ^ 0x5851_f42d_4c95_7f2d;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
                ((s >> 33) as usize % xlen) as u32
            })
            .collect()
    }

    #[test]
    fn simd_matches_scalar_at_every_lane_remainder() {
        let _guard = test_mode_lock();
        // Lengths covering remainders 0..=7 twice, plus degenerate cases.
        let x = mixed(97, 1);
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 31, 64, 100] {
            let vals = mixed(n, 2 + n as u64);
            let cols = cols_mod(n, x.len(), 3 + n as u64);
            let scalar = dot4_scalar(&vals, &cols, &x);
            set_mode(SimdMode::Force);
            let forced = dot4(&vals, &cols, &x);
            set_mode(SimdMode::Auto);
            let auto = dot4(&vals, &cols, &x);
            set_mode(SimdMode::Off);
            let off = dot4(&vals, &cols, &x);
            set_mode(SimdMode::Auto);
            assert_eq!(forced.to_bits(), scalar.to_bits(), "force, n={n}");
            assert_eq!(auto.to_bits(), scalar.to_bits(), "auto, n={n}");
            assert_eq!(off.to_bits(), scalar.to_bits(), "off, n={n}");
        }
    }

    #[test]
    fn mode_knob_round_trips() {
        let _guard = test_mode_lock();
        set_mode(SimdMode::Off);
        assert_eq!(mode(), SimdMode::Off);
        assert!(!active());
        set_mode(SimdMode::Force);
        assert_eq!(mode(), SimdMode::Force);
        set_mode(SimdMode::Auto);
        assert_eq!(mode(), SimdMode::Auto);
        assert_eq!(active(), supported());
    }

    #[test]
    fn feature_name_is_consistent() {
        let _guard = test_mode_lock();
        set_mode(SimdMode::Off);
        assert_eq!(feature_name(), "scalar");
        set_mode(SimdMode::Auto);
        if supported() {
            assert_ne!(feature_name(), "scalar");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite: SIMD dot4 bit-identical to the scalar fallback at every
        // lane remainder 0..=7 (lengths 4·blocks + rem cover each remainder
        // class with and without a full vector body), on random values,
        // random gather patterns and every mode.
        #[test]
        fn dot4_bit_identical_across_modes(
            rem in 0usize..8,
            blocks in 0usize..6,
            xlen in 1usize..64,
            seed in 0u64..1_000_000,
        ) {
            let _guard = super::test_mode_lock();
            let n = blocks * 4 + rem;
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<f64> = (0..xlen).map(|_| rng.gen_range(-1e3..1e3)).collect();
            let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3..1e3)).collect();
            let cols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..xlen) as u32).collect();
            let reference = dot4_scalar(&vals, &cols, &x);
            for m in [SimdMode::Force, SimdMode::Off, SimdMode::Auto] {
                set_mode(m);
                let got = dot4(&vals, &cols, &x);
                set_mode(SimdMode::Auto);
                prop_assert_eq!(got.to_bits(), reference.to_bits());
            }
        }
    }
}
