//! Block sparse row storage with small dense `b×b` blocks.
//!
//! Systems of PDEs discretised with `num_functions` unknowns per mesh node
//! (the elasticity problems store 3 displacement components per node, dofs
//! interleaved) produce matrices whose nonzero pattern is a grid of dense
//! `b×b` blocks. BSR exploits that: one column index per *block* instead of
//! per entry (b× fewer index loads), and the `b` right-hand-side values of
//! `x` a block touches are contiguous and shared by all `b` rows of the
//! block (b× fewer `x` loads in the block-row kernels).
//!
//! ## Bit-identity contract
//!
//! Every kernel reproduces the CSR scalar path bit for bit. The value layout
//! makes this natural: within a block row, the entries of each *scalar* row
//! are stored as one contiguous segment in column order — exactly the flat
//! `(vals, cols)` stream [`Csr`] holds for that row when the block pattern
//! has no fill-in. The kernels then apply the shared `dot4` accumulation
//! scheme (entry `k` in lane `k mod 4`, tail of `n mod 4` entries, combined
//! `(a0+a1)+(a2+a3)+tail`; see [`crate::simd`]) over that stream, so
//! `Bsr::row_dot(i, x)` computes the *same floating-point operations in the
//! same order* as `Csr::row_dot(i, x)`.
//!
//! Conversion tracks [`fill`](Bsr::fill): the number of explicit zeros the
//! blocking added. When `fill() == 0` the flat stream is identical to the
//! source CSR stream and every result is unconditionally bit-identical.
//! When fill-in was added, the inserted zeros shift the lane assignment of
//! subsequent entries, which can change low-order bits — the hierarchy
//! therefore only installs BSR operators on levels that convert with zero
//! fill (which the elasticity assembly guarantees: its element loop stores
//! every block entry, including exact zeros).

use crate::csr::Csr;
use crate::simd;

/// Errors from [`Bsr::from_csr`].
#[derive(Debug, PartialEq, Eq)]
pub enum BsrError {
    /// Block size must be at least 1.
    ZeroBlock,
    /// Matrix dimensions are not multiples of the block size.
    Unaligned { nrows: usize, ncols: usize, b: usize },
    /// A source row's columns were not strictly increasing; normalise with
    /// [`Csr::sort_rows`] first.
    ColsNotSorted { row: usize },
}

impl std::fmt::Display for BsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BsrError::ZeroBlock => write!(f, "block size must be >= 1"),
            BsrError::Unaligned { nrows, ncols, b } => {
                write!(f, "{nrows}x{ncols} matrix is not partitionable into {b}x{b} blocks")
            }
            BsrError::ColsNotSorted { row } => {
                write!(f, "columns of row {row} are not strictly increasing")
            }
        }
    }
}

impl std::error::Error for BsrError {}

/// A sparse matrix of dense `b×b` blocks.
///
/// Storage: `row_ptr` counts *blocks* per block row; `col_idx` holds sorted
/// *block* column indices. `vals` holds, for each block row, `b` contiguous
/// segments — segment `r` is scalar row `block_row·b + r`'s entries in
/// column order (length `nblocks·b`). This "row-segment" layout keeps every
/// scalar row's values contiguous, which is what lets the kernels replay the
/// CSR `dot4` stream exactly (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Bsr {
    nrows: usize,
    ncols: usize,
    b: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
    fill: usize,
}

impl Bsr {
    /// Converts a CSR matrix (strictly-sorted columns required; see
    /// [`Csr::sort_rows`]) into `b×b` blocks.
    ///
    /// The conversion is lossless: [`to_csr`](Bsr::to_csr) reproduces the
    /// source exactly when no fill-in was needed, and reproduces every
    /// source entry (plus explicit zeros for padded positions) otherwise.
    /// [`fill`](Bsr::fill) reports how many zeros were added.
    pub fn from_csr(a: &Csr, b: usize) -> Result<Bsr, BsrError> {
        if b == 0 {
            return Err(BsrError::ZeroBlock);
        }
        if !a.nrows().is_multiple_of(b) || !a.ncols().is_multiple_of(b) {
            return Err(BsrError::Unaligned { nrows: a.nrows(), ncols: a.ncols(), b });
        }
        let nbr = a.nrows() / b;
        let mut row_ptr = Vec::with_capacity(nbr + 1);
        row_ptr.push(0u32);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut bcols: Vec<u32> = Vec::new();
        for bi in 0..nbr {
            // Union of the b rows' block columns (each row sorted, so the
            // union is a sort + dedup of at most b short sorted lists).
            bcols.clear();
            for r in 0..b {
                let i = bi * b + r;
                let (cols, _) = a.row(i);
                for w in cols.windows(2) {
                    if w[0] >= w[1] {
                        return Err(BsrError::ColsNotSorted { row: i });
                    }
                }
                bcols.extend(cols.iter().map(|&c| c / b as u32));
            }
            bcols.sort_unstable();
            bcols.dedup();
            let nblk = bcols.len();
            row_ptr.push(row_ptr[bi] + nblk as u32);
            let base = vals.len();
            vals.resize(base + nblk * b * b, 0.0);
            // Scatter each scalar row into its contiguous segment. Both the
            // row's columns and `bcols` ascend, so a single cursor suffices.
            for r in 0..b {
                let (cols, v) = a.row(bi * b + r);
                let seg = &mut vals[base + r * nblk * b..base + (r + 1) * nblk * b];
                let mut bj = 0usize;
                for (&c, &val) in cols.iter().zip(v) {
                    let target = c / b as u32;
                    while bcols[bj] != target {
                        bj += 1;
                    }
                    seg[bj * b + (c as usize % b)] = val;
                }
            }
            col_idx.extend_from_slice(&bcols);
        }
        let fill = vals.len() - a.nnz();
        Ok(Bsr { nrows: a.nrows(), ncols: a.ncols(), b, row_ptr, col_idx, vals, fill })
    }

    /// Expands back to CSR, materialising every stored entry (including any
    /// fill-in zeros). With [`fill`](Bsr::fill)` == 0` this is the exact
    /// inverse of [`from_csr`](Bsr::from_csr).
    pub fn to_csr(&self) -> Csr {
        let nnz = self.vals.len();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0u32);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        for i in 0..self.nrows {
            let (seg, bcols) = self.row_seg(i);
            for (j, &bc) in bcols.iter().enumerate() {
                for c in 0..self.b {
                    col_idx.push(bc * self.b as u32 + c as u32);
                    vals.push(seg[j * self.b + c]);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr::from_raw(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }

    /// Number of scalar rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of scalar columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Stored scalar entries (`nblocks · b²`).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Explicit zeros added by the conversion. `0` means the source pattern
    /// was fully block-dense and every kernel is unconditionally
    /// bit-identical to the CSR path.
    pub fn fill(&self) -> usize {
        self.fill
    }

    /// Scalar row `i` as (contiguous value segment, block columns). The
    /// segment holds `bcols.len()·b` values; entry `j·b + c` multiplies
    /// `x[bcols[j]·b + c]`.
    #[inline]
    fn row_seg(&self, i: usize) -> (&[f64], &[u32]) {
        let bi = i / self.b;
        let r = i % self.b;
        let (lo, hi) = (self.row_ptr[bi] as usize, self.row_ptr[bi + 1] as usize);
        let nblk = hi - lo;
        let base = lo * self.b * self.b;
        let seg = &self.vals[base + r * nblk * self.b..base + (r + 1) * nblk * self.b];
        (seg, &self.col_idx[lo..hi])
    }

    /// The three row segments and block columns of block row `bi` (b = 3).
    #[inline]
    fn block_row3(&self, bi: usize) -> (&[f64], &[f64], &[f64], &[u32]) {
        debug_assert_eq!(self.b, 3);
        let (lo, hi) = (self.row_ptr[bi] as usize, self.row_ptr[bi + 1] as usize);
        let nblk = hi - lo;
        let base = lo * 9;
        let l = nblk * 3;
        let s = &self.vals[base..base + 3 * l];
        (&s[0..l], &s[l..2 * l], &s[2 * l..3 * l], &self.col_idx[lo..hi])
    }

    /// `Σ_k row_i[k] · x[col_k]` with the exact `dot4` accumulation order of
    /// [`Csr::row_dot`].
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let (seg, bcols) = self.row_seg(i);
        bdot(seg, bcols, self.b, x)
    }

    /// `y = A x` (all rows).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_rows(0..self.nrows, x, y);
    }

    /// `y[i] = Σ_k A[i,:]·x` for `i` in `rows`. The range need not be
    /// block-aligned; interior whole block rows go through the fast shared-x
    /// kernel, edge rows fall back to per-row dots (same bits either way).
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        self.for_rows(rows, x, |i, v| y[i] = v);
    }

    /// `r[i] = b[i] − A[i,:]·x` for `i` in `rows`; bit-identical to
    /// [`Csr::residual_rows`].
    pub fn residual_rows(&self, rows: std::ops::Range<usize>, b: &[f64], x: &[f64], r: &mut [f64]) {
        self.for_rows(rows, x, |i, v| r[i] = b[i] - v);
    }

    /// `r = b − A x` (all rows).
    pub fn residual(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        self.residual_rows(0..self.nrows, b, x, r);
    }

    /// Runs `out(i, A[i,:]·x)` for every `i` in `rows`, using the b=3
    /// block-row kernel where the range covers whole block rows.
    #[inline]
    fn for_rows<F: FnMut(usize, f64)>(&self, rows: std::ops::Range<usize>, x: &[f64], mut out: F) {
        debug_assert!(rows.end <= self.nrows);
        let b = self.b;
        if b != 3 {
            for i in rows {
                out(i, self.row_dot(i, x));
            }
            return;
        }
        let mut i = rows.start;
        // Head: rows before the first block boundary inside the range.
        while i < rows.end && !i.is_multiple_of(3) {
            out(i, self.row_dot(i, x));
            i += 1;
        }
        // Middle: whole block rows through the shared-x kernel.
        while i + 3 <= rows.end {
            let (s0, s1, s2, bcols) = self.block_row3(i / 3);
            let (y0, y1, y2) = bdot3(s0, s1, s2, bcols, x);
            out(i, y0);
            out(i + 1, y1);
            out(i + 2, y2);
            i += 3;
        }
        // Tail: a final partial block row.
        while i < rows.end {
            out(i, self.row_dot(i, x));
            i += 1;
        }
    }

    /// The dense `b×b` diagonal blocks, row-major, in block-row order —
    /// block `i` of the result is `A[ib..(i+1)b, ib..(i+1)b]`. Absent
    /// diagonal blocks come back zero-filled (consistent with
    /// [`Csr::diag`]'s zero for a missing diagonal).
    pub fn diag_blocks(&self) -> Vec<f64> {
        let b = self.b;
        let nbr = self.nrows / b;
        let mut out = vec![0.0; nbr * b * b];
        for bi in 0..nbr {
            let (lo, hi) = (self.row_ptr[bi] as usize, self.row_ptr[bi + 1] as usize);
            // Sorted block columns: binary search for the diagonal block.
            if let Ok(j) = self.col_idx[lo..hi].binary_search(&(bi as u32)) {
                let nblk = hi - lo;
                let base = lo * b * b;
                for r in 0..b {
                    let seg = &self.vals[base + r * nblk * b..];
                    out[bi * b * b + r * b..bi * b * b + (r + 1) * b]
                        .copy_from_slice(&seg[j * b..(j + 1) * b]);
                }
            }
        }
        out
    }

    /// The scalar diagonal, bit-identical to [`Csr::diag_into`].
    pub fn diag_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.nrows);
        let blocks = self.diag_blocks();
        let b = self.b;
        for i in 0..self.nrows {
            let (bi, r) = (i / b, i % b);
            out[i] = blocks[bi * b * b + r * b + r];
        }
    }
}

/// `dot4`-ordered dot product over a BSR row's flat stream: entry `k` (block
/// `k / b`, lane `k mod 4`) multiplies `x[bcols[k/b]·b + k%b]`. Bit-identical
/// to [`crate::simd::dot4_scalar`] on the equivalent CSR row.
#[inline]
fn bdot(seg: &[f64], bcols: &[u32], b: usize, x: &[f64]) -> f64 {
    let n = seg.len();
    debug_assert_eq!(n, bcols.len() * b);
    let n4 = n & !3;
    let mut acc = [0.0f64; 4];
    let mut tail = 0.0f64;
    let mut k = 0usize;
    for &bc in bcols {
        let xo = bc as usize * b;
        for c in 0..b {
            let p = seg[k] * x[xo + c];
            if k < n4 {
                acc[k & 3] += p;
            } else {
                tail += p;
            }
            k += 1;
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Shared-x 3×3 block-row kernel: computes the three scalar-row dots of one
/// block row in a single pass over the blocks, loading each `x` triplet once
/// for all three rows. Groups of four blocks (12 entries — the lane pattern
/// `k mod 4` repeats every 12) unroll with fixed lane assignments; per-lane
/// accumulation order is ascending `k` throughout, so each row's result is
/// bit-identical to its solo `dot4`.
#[inline]
fn bdot3(s0: &[f64], s1: &[f64], s2: &[f64], bcols: &[u32], x: &[f64]) -> (f64, f64, f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd::active() {
            // SAFETY: segment lengths are `3·bcols.len()` by construction
            // and block columns are in range (validated in `from_csr` via
            // the source CSR); the feature checks gate the instruction sets.
            if simd::avx512_supported() {
                return unsafe { bdot3_avx512(s0, s1, s2, bcols, x) };
            }
            return unsafe { bdot3_avx2(s0, s1, s2, bcols, x) };
        }
    }
    bdot3_scalar(s0, s1, s2, bcols, x)
}

/// Scalar shared-x 3×3 block-row kernel (see [`bdot3`]).
#[inline]
fn bdot3_scalar(s0: &[f64], s1: &[f64], s2: &[f64], bcols: &[u32], x: &[f64]) -> (f64, f64, f64) {
    let nblk = bcols.len();
    let n = 3 * nblk;
    debug_assert!(s0.len() == n && s1.len() == n && s2.len() == n);
    let n4 = n & !3;
    let ngroups = n4 / 12;
    let mut a = [0.0f64; 4];
    let mut b = [0.0f64; 4];
    let mut c = [0.0f64; 4];
    let (mut at, mut bt, mut ct) = (0.0f64, 0.0f64, 0.0f64);
    let mut j = 0usize;
    for _ in 0..ngroups {
        let k = j * 3;
        let (c0, c1, c2, c3) = (
            bcols[j] as usize * 3,
            bcols[j + 1] as usize * 3,
            bcols[j + 2] as usize * 3,
            bcols[j + 3] as usize * 3,
        );
        // The 12 shared x values of this 4-block group.
        let xg = [
            x[c0],
            x[c0 + 1],
            x[c0 + 2],
            x[c1],
            x[c1 + 1],
            x[c1 + 2], //
            x[c2],
            x[c2 + 1],
            x[c2 + 2],
            x[c3],
            x[c3 + 1],
            x[c3 + 2],
        ];
        // Entry k+o goes to lane (k+o) mod 4 = o mod 4 (k is a multiple of
        // 12); per-lane adds stay in ascending-entry order.
        for o in 0..12 {
            a[o & 3] += s0[k + o] * xg[o];
        }
        for o in 0..12 {
            b[o & 3] += s1[k + o] * xg[o];
        }
        for o in 0..12 {
            c[o & 3] += s2[k + o] * xg[o];
        }
        j += 4;
    }
    // Remainder blocks: generic per-entry lane/tail split.
    let mut k = j * 3;
    while j < nblk {
        let xo = bcols[j] as usize * 3;
        for cc in 0..3 {
            let xv = x[xo + cc];
            let (p0, p1, p2) = (s0[k] * xv, s1[k] * xv, s2[k] * xv);
            if k < n4 {
                a[k & 3] += p0;
                b[k & 3] += p1;
                c[k & 3] += p2;
            } else {
                at += p0;
                bt += p1;
                ct += p2;
            }
            k += 1;
        }
        j += 1;
    }
    (
        (a[0] + a[1]) + (a[2] + a[3]) + at,
        (b[0] + b[1]) + (b[2] + b[3]) + bt,
        (c[0] + c[1]) + (c[2] + c[3]) + ct,
    )
}

/// AVX2 shared-x 3×3 block-row kernel: per 4-block group, three gathered
/// `x` vectors are built once and reused by all three rows (three contiguous
/// value loads + three `mul`+`add` per row). Vector lane `l` accumulates
/// exactly the scalar lane `l` in ascending-entry order — bit-identical to
/// [`bdot3_scalar`]. No FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bdot3_avx2(
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    bcols: &[u32],
    x: &[f64],
) -> (f64, f64, f64) {
    use core::arch::x86_64::*;
    let nblk = bcols.len();
    let n = 3 * nblk;
    let n4 = n & !3;
    let ngroups = n4 / 12;
    let mut va = _mm256_setzero_pd();
    let mut vb = _mm256_setzero_pd();
    let mut vc = _mm256_setzero_pd();
    let mut j = 0usize;
    for _ in 0..ngroups {
        let k = j * 3;
        let (c0, c1, c2, c3) = (
            *bcols.get_unchecked(j) as i32 * 3,
            *bcols.get_unchecked(j + 1) as i32 * 3,
            *bcols.get_unchecked(j + 2) as i32 * 3,
            *bcols.get_unchecked(j + 3) as i32 * 3,
        );
        // x index vectors for entries k..k+4, k+4..k+8, k+8..k+12
        // (_mm_set_epi32 takes lanes high-to-low).
        let i0 = _mm_set_epi32(c1, c0 + 2, c0 + 1, c0);
        let i1 = _mm_set_epi32(c2 + 1, c2, c1 + 2, c1 + 1);
        let i2 = _mm_set_epi32(c3 + 2, c3 + 1, c3, c2 + 2);
        // SAFETY: block columns are `< ncols/b`, so every gathered index is
        // `< x.len()`; value loads stay inside the `n`-long segments.
        let x0 = _mm256_i32gather_pd::<8>(x.as_ptr(), i0);
        let x1 = _mm256_i32gather_pd::<8>(x.as_ptr(), i1);
        let x2 = _mm256_i32gather_pd::<8>(x.as_ptr(), i2);
        // Sequential adds into the same accumulator preserve ascending
        // per-lane entry order (k+o, then k+o+4, then k+o+8 into lane o).
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k)), x0));
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k + 4)), x1));
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k + 8)), x2));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k)), x0));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k + 4)), x1));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k + 8)), x2));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k)), x0));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k + 4)), x1));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k + 8)), x2));
        j += 4;
    }
    let _ = ngroups;
    let mut a = [0.0f64; 4];
    let mut b = [0.0f64; 4];
    let mut c = [0.0f64; 4];
    _mm256_storeu_pd(a.as_mut_ptr(), va);
    _mm256_storeu_pd(b.as_mut_ptr(), vb);
    _mm256_storeu_pd(c.as_mut_ptr(), vc);
    let (mut at, mut bt, mut ct) = (0.0f64, 0.0f64, 0.0f64);
    // Remainder blocks: same generic split as the scalar kernel. Entries
    // here have k >= ngroups·12, above everything in the vector lanes, so
    // per-lane ascending order is preserved.
    let mut k = j * 3;
    while j < nblk {
        let xo = *bcols.get_unchecked(j) as usize * 3;
        for cc in 0..3 {
            let xv = *x.get_unchecked(xo + cc);
            let (p0, p1, p2) =
                (*s0.get_unchecked(k) * xv, *s1.get_unchecked(k) * xv, *s2.get_unchecked(k) * xv);
            if k < n4 {
                a[k & 3] += p0;
                b[k & 3] += p1;
                c[k & 3] += p2;
            } else {
                at += p0;
                bt += p1;
                ct += p2;
            }
            k += 1;
        }
        j += 1;
    }
    (
        (a[0] + a[1]) + (a[2] + a[3]) + at,
        (b[0] + b[1]) + (b[2] + b[3]) + bt,
        (c[0] + c[1]) + (c[2] + c[3]) + ct,
    )
}

/// One 4-block group of the AVX-512 3×3 kernel: assembles the three shared
/// `x` vectors and folds 12 entries of each of the three row segments into
/// the caller's lane accumulators, in exact scalar `dot4` order.
///
/// # Safety
/// Needs `avx512f`+`avx512vl`; `sp0/sp1/sp2` must have 12 readable entries,
/// `bc` 4 readable block columns whose triplets are in bounds of `x`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn group4(
    xp: *const f64,
    sp0: *const f64,
    sp1: *const f64,
    sp2: *const f64,
    bc: *const u32,
    va: &mut core::arch::x86_64::__m256d,
    vb: &mut core::arch::x86_64::__m256d,
    vc: &mut core::arch::x86_64::__m256d,
) {
    use core::arch::x86_64::*;
    let (c0, c1, c2, c3) = (
        *bc as usize * 3,
        *bc.add(1) as usize * 3,
        *bc.add(2) as usize * 3,
        *bc.add(3) as usize * 3,
    );
    // Shared x vectors by pairs of fault-suppressing masked loads:
    // x0 = [A0,A1,A2,B0], x1 = [B1,B2,C0,C1], x2 = [C2,D0,D1,D2]. High-part
    // bases may point before x when a block column is 0 — wrapping
    // arithmetic, lanes masked off (never accessed architecturally).
    let x0 = _mm256_mask_loadu_pd(
        _mm256_maskz_loadu_pd(0b0111, xp.add(c0)),
        0b1000,
        xp.wrapping_add(c1).wrapping_sub(3),
    );
    let x1 = _mm256_mask_loadu_pd(
        _mm256_maskz_loadu_pd(0b0011, xp.add(c1 + 1)),
        0b1100,
        xp.wrapping_add(c2).wrapping_sub(2),
    );
    let x2 = _mm256_mask_loadu_pd(
        _mm256_maskz_loadu_pd(0b0001, xp.add(c2 + 2)),
        0b1110,
        xp.wrapping_add(c3).wrapping_sub(1),
    );
    *va = _mm256_add_pd(*va, _mm256_mul_pd(_mm256_loadu_pd(sp0), x0));
    *va = _mm256_add_pd(*va, _mm256_mul_pd(_mm256_loadu_pd(sp0.add(4)), x1));
    *va = _mm256_add_pd(*va, _mm256_mul_pd(_mm256_loadu_pd(sp0.add(8)), x2));
    *vb = _mm256_add_pd(*vb, _mm256_mul_pd(_mm256_loadu_pd(sp1), x0));
    *vb = _mm256_add_pd(*vb, _mm256_mul_pd(_mm256_loadu_pd(sp1.add(4)), x1));
    *vb = _mm256_add_pd(*vb, _mm256_mul_pd(_mm256_loadu_pd(sp1.add(8)), x2));
    *vc = _mm256_add_pd(*vc, _mm256_mul_pd(_mm256_loadu_pd(sp2), x0));
    *vc = _mm256_add_pd(*vc, _mm256_mul_pd(_mm256_loadu_pd(sp2.add(4)), x1));
    *vc = _mm256_add_pd(*vc, _mm256_mul_pd(_mm256_loadu_pd(sp2.add(8)), x2));
}

/// AVX-512VL shared-x 3×3 block-row kernel: like [`bdot3_avx2`] but the
/// three shared `x` vectors of each 4-block group are assembled from four
/// fault-suppressing masked triplet loads and three two-source permutes
/// (`vpermt2pd`) instead of three hardware gathers — far fewer µops on
/// cores where gather is microcoded. Lane contents are identical to the
/// AVX2 path, so bit-identity to [`bdot3_scalar`] is preserved. No FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn bdot3_avx512(
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    bcols: &[u32],
    x: &[f64],
) -> (f64, f64, f64) {
    use core::arch::x86_64::*;
    let nblk = bcols.len();
    let n = 3 * nblk;
    let n4 = n & !3;
    let ngroups = n4 / 12;
    let mut va = _mm256_setzero_pd();
    let mut vb = _mm256_setzero_pd();
    let mut vc = _mm256_setzero_pd();
    let xp = x.as_ptr();
    let mut j = 0usize;
    // Two groups (8 blocks) per iteration: halves the loop overhead and
    // widens the out-of-order window across the x-assembly latency chains.
    // The adds into va/vb/vc keep their textual (= scalar dot4) order, so
    // unrolling does not perturb a single bit.
    while j + 8 <= n4 / 3 {
        group4(
            xp,
            s0.as_ptr().add(j * 3),
            s1.as_ptr().add(j * 3),
            s2.as_ptr().add(j * 3),
            bcols.as_ptr().add(j),
            &mut va,
            &mut vb,
            &mut vc,
        );
        group4(
            xp,
            s0.as_ptr().add(j * 3 + 12),
            s1.as_ptr().add(j * 3 + 12),
            s2.as_ptr().add(j * 3 + 12),
            bcols.as_ptr().add(j + 4),
            &mut va,
            &mut vb,
            &mut vc,
        );
        j += 8;
    }
    while j + 4 <= n4 / 3 {
        let k = j * 3;
        let (c0, c1, c2, c3) = (
            *bcols.get_unchecked(j) as usize * 3,
            *bcols.get_unchecked(j + 1) as usize * 3,
            *bcols.get_unchecked(j + 2) as usize * 3,
            *bcols.get_unchecked(j + 3) as usize * 3,
        );
        // Shared x vectors assembled by pairs of fault-suppressing masked
        // loads (low lanes from one triplet, high lanes blended from the
        // next): x0 = [A0,A1,A2,B0], x1 = [B1,B2,C0,C1], x2 = [C2,D0,D1,D2].
        // High-part bases may point up to 3 elements before x when a block
        // column is 0 — built with wrapping arithmetic, and those lanes are
        // masked off (never accessed architecturally).
        let x0 = _mm256_mask_loadu_pd(
            _mm256_maskz_loadu_pd(0b0111, xp.add(c0)),
            0b1000,
            xp.wrapping_add(c1).wrapping_sub(3),
        );
        let x1 = _mm256_mask_loadu_pd(
            _mm256_maskz_loadu_pd(0b0011, xp.add(c1 + 1)),
            0b1100,
            xp.wrapping_add(c2).wrapping_sub(2),
        );
        let x2 = _mm256_mask_loadu_pd(
            _mm256_maskz_loadu_pd(0b0001, xp.add(c2 + 2)),
            0b1110,
            xp.wrapping_add(c3).wrapping_sub(1),
        );
        // Sequential adds into the same accumulator preserve ascending
        // per-lane entry order (k+o, then k+o+4, then k+o+8 into lane o).
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k)), x0));
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k + 4)), x1));
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k + 8)), x2));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k)), x0));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k + 4)), x1));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k + 8)), x2));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k)), x0));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k + 4)), x1));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k + 8)), x2));
        j += 4;
    }
    let _ = ngroups;
    let mut k = j * 3;
    if k < n4 {
        // One or two 4-entry lane quads remain before the dot4 tail; their
        // x vectors follow the x0/x1 recipes over the trailing blocks
        // (entry k + 3 < n4 guarantees block j + 1 exists, and k + 7 < n4
        // block j + 2). Keeping these in lanes — instead of the old scalar
        // fallback through memory accumulators — preserves the exact lane
        // order and removes the dominant per-row overhead.
        let ca = *bcols.get_unchecked(j) as usize * 3;
        let cb = *bcols.get_unchecked(j + 1) as usize * 3;
        let xq = _mm256_mask_loadu_pd(
            _mm256_maskz_loadu_pd(0b0111, xp.add(ca)),
            0b1000,
            xp.wrapping_add(cb).wrapping_sub(3),
        );
        va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k)), xq));
        vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k)), xq));
        vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k)), xq));
        if k + 4 < n4 {
            let cc = *bcols.get_unchecked(j + 2) as usize * 3;
            let xq1 = _mm256_mask_loadu_pd(
                _mm256_maskz_loadu_pd(0b0011, xp.add(cb + 1)),
                0b1100,
                xp.wrapping_add(cc).wrapping_sub(2),
            );
            va = _mm256_add_pd(va, _mm256_mul_pd(_mm256_loadu_pd(s0.as_ptr().add(k + 4)), xq1));
            vb = _mm256_add_pd(vb, _mm256_mul_pd(_mm256_loadu_pd(s1.as_ptr().add(k + 4)), xq1));
            vc = _mm256_add_pd(vc, _mm256_mul_pd(_mm256_loadu_pd(s2.as_ptr().add(k + 4)), xq1));
        }
        k = n4;
    }
    let mut a = [0.0f64; 4];
    let mut b = [0.0f64; 4];
    let mut c = [0.0f64; 4];
    _mm256_storeu_pd(a.as_mut_ptr(), va);
    _mm256_storeu_pd(b.as_mut_ptr(), vb);
    _mm256_storeu_pd(c.as_mut_ptr(), vc);
    let (mut at, mut bt, mut ct) = (0.0f64, 0.0f64, 0.0f64);
    // The dot4 tail: the final n − n4 (< 4) entries, sequentially.
    while k < n {
        let blk = k / 3;
        let xv = *x.get_unchecked(*bcols.get_unchecked(blk) as usize * 3 + k % 3);
        at += *s0.get_unchecked(k) * xv;
        bt += *s1.get_unchecked(k) * xv;
        ct += *s2.get_unchecked(k) * xv;
        k += 1;
    }
    (
        (a[0] + a[1]) + (a[2] + a[3]) + at,
        (b[0] + b[1]) + (b[2] + b[3]) + bt,
        (c[0] + c[1]) + (c[2] + c[3]) + ct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::simd::{set_mode, SimdMode};

    /// Block-dense random matrix: every stored block is fully dense (the
    /// elasticity pattern), so conversion has zero fill.
    fn block_dense(nbr: usize, nbc: usize, b: usize, seed: u64) -> Csr {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
            s
        };
        let mut c = Coo::new(nbr * b, nbc * b);
        for bi in 0..nbr {
            for bj in 0..nbc {
                // Keep the diagonal block plus a pseudo-random ~40% of the rest.
                if bi != bj.min(nbr - 1) && next() % 5 >= 2 {
                    continue;
                }
                for r in 0..b {
                    for cc in 0..b {
                        let v = ((next() >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0;
                        c.push(bi * b + r, bj * b + cc, v);
                    }
                }
            }
        }
        c.to_csr()
    }

    fn dense_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed ^ 0x5851_f42d_4c95_7f2d;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
                ((s >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn round_trip_is_lossless_on_block_dense() {
        for b in [1usize, 2, 3, 4] {
            let a = block_dense(5, 4, b, 42 + b as u64);
            let bsr = Bsr::from_csr(&a, b).unwrap();
            assert_eq!(bsr.fill(), 0, "b={b}");
            assert_eq!(bsr.to_csr(), a, "b={b}");
        }
    }

    #[test]
    fn conversion_with_fill_preserves_entries() {
        // A scalar tridiagonal matrix has ragged 2×2 blocks → fill-in.
        let mut c = Coo::new(6, 6);
        for i in 0..6 {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < 6 {
                c.push(i, i + 1, -1.0);
            }
        }
        let a = c.to_csr();
        let bsr = Bsr::from_csr(&a, 2).unwrap();
        assert!(bsr.fill() > 0);
        let back = bsr.to_csr();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(back.get(i, j), a.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn spmv_bitwise_matches_csr_when_no_fill() {
        for b in [2usize, 3, 4] {
            let a = block_dense(7, 7, b, 9 + b as u64);
            let bsr = Bsr::from_csr(&a, b).unwrap();
            assert_eq!(bsr.fill(), 0);
            let _guard = crate::simd::test_mode_lock();
            let x = dense_vec(a.ncols(), 5);
            let mut yc = vec![0.0; a.nrows()];
            let mut yb = vec![0.0; a.nrows()];
            a.spmv(&x, &mut yc);
            for mode in [SimdMode::Off, SimdMode::Force] {
                set_mode(mode);
                bsr.spmv(&x, &mut yb);
                for i in 0..yc.len() {
                    assert_eq!(yb[i].to_bits(), yc[i].to_bits(), "b={b} row {i} {mode:?}");
                }
            }
            set_mode(SimdMode::Auto);
        }
    }

    #[test]
    fn unaligned_ranges_match_csr() {
        let a = block_dense(6, 6, 3, 77);
        let bsr = Bsr::from_csr(&a, 3).unwrap();
        let x = dense_vec(a.ncols(), 6);
        let n = a.nrows();
        let mut yc = vec![0.0; n];
        let mut yb = vec![0.0; n];
        for range in [0..n, 1..n, 2..n - 1, 4..5, 0..0, 7..14] {
            yc.iter_mut().for_each(|v| *v = -9.0);
            yb.iter_mut().for_each(|v| *v = -9.0);
            a.spmv_rows(range.clone(), &x, &mut yc);
            bsr.spmv_rows(range.clone(), &x, &mut yb);
            for i in 0..n {
                assert_eq!(yb[i].to_bits(), yc[i].to_bits(), "range {range:?} row {i}");
            }
        }
    }

    #[test]
    fn residual_and_row_dot_match_csr() {
        let a = block_dense(5, 5, 3, 123);
        let bsr = Bsr::from_csr(&a, 3).unwrap();
        let x = dense_vec(a.ncols(), 1);
        let rhs = dense_vec(a.nrows(), 2);
        let mut rc = vec![0.0; a.nrows()];
        let mut rb = vec![0.0; a.nrows()];
        a.residual(&rhs, &x, &mut rc);
        bsr.residual(&rhs, &x, &mut rb);
        for i in 0..rc.len() {
            assert_eq!(rb[i].to_bits(), rc[i].to_bits(), "row {i}");
            assert_eq!(bsr.row_dot(i, &x).to_bits(), a.row_dot(i, &x).to_bits(), "row {i}");
        }
    }

    #[test]
    fn diag_matches_csr() {
        let a = block_dense(6, 6, 3, 3);
        let bsr = Bsr::from_csr(&a, 3).unwrap();
        let mut db = vec![0.0; a.nrows()];
        bsr.diag_into(&mut db);
        assert_eq!(db, a.diag());
        let blocks = bsr.diag_blocks();
        for bi in 0..2 {
            for r in 0..3 {
                for c in 0..3 {
                    assert_eq!(blocks[bi * 9 + r * 3 + c], a.get(bi * 3 + r, bi * 3 + c));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = block_dense(2, 2, 3, 0);
        assert_eq!(Bsr::from_csr(&a, 0).unwrap_err(), BsrError::ZeroBlock);
        assert!(matches!(Bsr::from_csr(&a, 4).unwrap_err(), BsrError::Unaligned { .. }));
        assert!(Bsr::from_csr(&a, 2).is_ok());
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::from_raw(0, 0, vec![0], vec![], vec![]);
        let bsr = Bsr::from_csr(&a, 3).unwrap();
        assert_eq!(bsr.nnz(), 0);
        assert_eq!(bsr.to_csr(), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::Coo;
    use crate::simd::{set_mode, SimdMode};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random block-dense matrix (every stored block fully dense → zero
    /// fill) with the diagonal block always present.
    fn random_block_dense(nbr: usize, nbc: usize, b: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Coo::new(nbr * b, nbc * b);
        for bi in 0..nbr {
            for bj in 0..nbc {
                if bi != bj.min(nbc - 1) && rng.gen_range(0usize..10) >= 4 {
                    continue;
                }
                for r in 0..b {
                    for cc in 0..b {
                        c.push(bi * b + r, bj * b + cc, rng.gen_range(-2.0..2.0));
                    }
                }
            }
        }
        c.to_csr()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Satellite: Csr↔Bsr round-trip losslessness on block-aligned
        // matrices (exact ==, not ULP tolerance).
        #[test]
        fn round_trip_lossless(
            nbr in 1usize..8,
            nbc in 1usize..8,
            b in 1usize..5,
            seed in 0u64..1_000_000,
        ) {
            let a = random_block_dense(nbr, nbc, b, seed);
            let bsr = Bsr::from_csr(&a, b).unwrap();
            prop_assert_eq!(bsr.fill(), 0);
            prop_assert_eq!(&bsr.to_csr(), &a);
        }

        // Satellite: BSR spmv/residual bitwise-equal to the CSR kernels on
        // block-aligned matrices, with the SIMD path both off and forced.
        #[test]
        fn spmv_bitwise_equals_csr(
            nbr in 1usize..8,
            b in 1usize..5,
            seed in 0u64..1_000_000,
        ) {
            let a = random_block_dense(nbr, nbr, b, seed);
            let bsr = Bsr::from_csr(&a, b).unwrap();
            let _guard = crate::simd::test_mode_lock();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let rhs: Vec<f64> = (0..a.nrows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut yc = vec![0.0; a.nrows()];
            let mut yb = vec![0.0; a.nrows()];
            let mut rc = vec![0.0; a.nrows()];
            let mut rb = vec![0.0; a.nrows()];
            a.spmv(&x, &mut yc);
            a.residual(&rhs, &x, &mut rc);
            for mode in [SimdMode::Off, SimdMode::Force] {
                set_mode(mode);
                bsr.spmv(&x, &mut yb);
                bsr.residual(&rhs, &x, &mut rb);
                set_mode(SimdMode::Auto);
                for i in 0..a.nrows() {
                    prop_assert_eq!(yb[i].to_bits(), yc[i].to_bits());
                    prop_assert_eq!(rb[i].to_bits(), rc[i].to_bits());
                }
            }
        }
    }
}
