//! Dense vector kernels with row-range variants.
//!
//! Each kernel mirrors one of the OpenMP `parallel for` loops of the paper's
//! implementation; the `_rows` variants operate on a sub-range so a thread
//! team can statically partition the loop.

/// `y[rows] += alpha * x[rows]`.
pub fn axpy_rows(rows: std::ops::Range<usize>, alpha: f64, x: &[f64], y: &mut [f64]) {
    for i in rows {
        y[i] += alpha * x[i];
    }
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_rows(0..x.len(), alpha, x, y);
}

/// Partial dot product over `rows`.
pub fn dot_rows(rows: std::ops::Range<usize>, x: &[f64], y: &[f64]) -> f64 {
    rows.map(|i| x[i] * y[i]).sum()
}

/// Full dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    dot_rows(0..x.len(), x, y)
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Partial sum of squares over `rows` (combine across a team, then sqrt).
pub fn sumsq_rows(rows: std::ops::Range<usize>, x: &[f64]) -> f64 {
    rows.map(|i| x[i] * x[i]).sum()
}

/// `dst[rows] = src[rows]`.
pub fn copy_rows(rows: std::ops::Range<usize>, src: &[f64], dst: &mut [f64]) {
    dst[rows.clone()].copy_from_slice(&src[rows]);
}

/// `x[rows] = 0`.
pub fn zero_rows(rows: std::ops::Range<usize>, x: &mut [f64]) {
    for v in &mut x[rows] {
        *v = 0.0;
    }
}

/// `x[rows] *= alpha`.
pub fn scale_rows(rows: std::ops::Range<usize>, alpha: f64, x: &mut [f64]) {
    for v in &mut x[rows] {
        *v *= alpha;
    }
}

/// `z[rows] = x[rows] - y[rows]`.
pub fn sub_rows(rows: std::ops::Range<usize>, x: &[f64], y: &[f64], z: &mut [f64]) {
    for i in rows {
        z[i] = x[i] - y[i];
    }
}

/// Relative residual norm `‖b − Ax‖₂ / ‖b‖₂` given precomputed `r = b − Ax`.
pub fn rel_norm(r: &[f64], b: &[f64]) -> f64 {
    let nb = norm2(b);
    if nb == 0.0 {
        norm2(r)
    } else {
        norm2(r) / nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn dot_and_norm() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn ranged_kernels_compose() {
        let x = [1.0, -2.0, 3.0, -4.0];
        let full = dot(&x, &x);
        let split = dot_rows(0..2, &x, &x) + dot_rows(2..4, &x, &x);
        assert_eq!(full, split);

        let mut a = [0.0; 4];
        copy_rows(1..3, &x, &mut a);
        assert_eq!(a, [0.0, -2.0, 3.0, 0.0]);

        zero_rows(1..2, &mut a);
        assert_eq!(a, [0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn sub_and_scale() {
        let x = [5.0, 6.0];
        let y = [1.0, 2.0];
        let mut z = [0.0; 2];
        sub_rows(0..2, &x, &y, &mut z);
        assert_eq!(z, [4.0, 4.0]);
        scale_rows(0..2, 0.5, &mut z);
        assert_eq!(z, [2.0, 2.0]);
    }

    #[test]
    fn rel_norm_handles_zero_rhs() {
        assert_eq!(rel_norm(&[3.0, 4.0], &[0.0, 0.0]), 5.0);
        assert_eq!(rel_norm(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(rel_norm(&[1.0, 0.0], &[0.0, 2.0]), 0.5);
    }
}
