//! Matrix Market (`.mtx`) import/export.
//!
//! Lets users run the solvers on external matrices (e.g. SuiteSparse
//! downloads) and dump the generated test problems for cross-checking
//! against other packages. Supports the `matrix coordinate real
//! {general|symmetric}` flavour, which covers the SPD systems this library
//! targets.

use crate::coo::Coo;
use crate::csr::Csr;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or unsupported content, with a description.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Reads a Matrix Market file from `reader`.
///
/// Symmetric files are expanded (the strictly-lower triangle is mirrored).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, MtxError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let mut fields = header.split_whitespace();
    if fields.next() != Some("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket banner"));
    }
    if fields.next() != Some("matrix") || fields.next() != Some("coordinate") {
        return Err(parse_err("only `matrix coordinate` files are supported"));
    }
    let field = fields.next().unwrap_or("");
    if field != "real" && field != "integer" {
        return Err(parse_err(format!("unsupported field type `{field}`")));
    }
    let symmetry = fields.next().unwrap_or("general").to_string();
    if symmetry != "general" && symmetry != "symmetric" {
        return Err(parse_err(format!("unsupported symmetry `{symmetry}`")));
    }

    // Skip comments; read the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break line;
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse().map_err(|_| parse_err(format!("bad size entry `{s}`"))))
        .collect::<Result<_, _>>()?;
    let [nrows, ncols, nnz] = dims[..] else {
        return Err(parse_err("size line must have 3 entries"));
    };

    let mut coo = Coo::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let i: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad row index"))?;
        let j: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad column index"))?;
        let v: f64 = parts
            .next()
            .map(|s| s.parse().map_err(|_| parse_err(format!("bad value `{s}`"))))
            .transpose()?
            .unwrap_or(1.0);
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i},{j}) out of bounds")));
        }
        coo.push(i - 1, j - 1, v);
        if symmetry == "symmetric" && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<Csr, MtxError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes `a` as a `general` Matrix Market file.
pub fn write_matrix_market<W: Write>(a: &Csr, writer: W) -> Result<(), MtxError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by asyncmg-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes `a` to a file.
pub fn write_matrix_market_file(a: &Csr, path: &std::path::Path) -> Result<(), MtxError> {
    write_matrix_market(a, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.0\n\
        2 2 2.0\n\
        3 3 2.0\n\
        1 3 -1.0\n";

    #[test]
    fn reads_general() {
        let a = read_matrix_market(SAMPLE.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), -1.0);
        assert_eq!(a.get(2, 0), 0.0);
    }

    #[test]
    fn reads_symmetric_and_mirrors() {
        let mtx = "%%MatrixMarket matrix coordinate real symmetric\n\
            2 2 2\n\
            1 1 4.0\n\
            2 1 -1.0\n";
        let a = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let a = read_matrix_market(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(read_matrix_market("not a matrix\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(mtx.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(mtx.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unsupported_symmetry() {
        let mtx = "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n";
        assert!(read_matrix_market(mtx.as_bytes()).is_err());
    }

    #[test]
    fn pattern_entries_default_to_one() {
        // Values are optional for pattern-ish files with integer/real field;
        // a missing value is read as 1.0.
        let mtx = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n";
        let a = read_matrix_market(mtx.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
    }
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn file_roundtrip() {
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, (i + 1) as f64);
        }
        coo.push(0, 3, -2.5);
        let a = coo.to_csr();
        let dir = std::env::temp_dir().join("asyncmg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_matrix_market_file(std::path::Path::new("/nonexistent/x.mtx")).unwrap_err();
        assert!(matches!(err, MtxError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
