//! Sparse matrix-matrix products (Gustavson's algorithm) and the Galerkin
//! triple product `Pᵀ A P` used to build coarse-grid operators.

use crate::csr::Csr;

/// Computes `C = A B` with Gustavson's row-merge algorithm.
///
/// A dense accumulator plus a marker array gives `O(flops)` time; rows of the
/// result are sorted by column.
pub fn spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "dimension mismatch in spgemm");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let mut acc = vec![0.0f64; ncols];
    let mut marker = vec![u32::MAX; ncols];
    let mut touched: Vec<u32> = Vec::new();

    let mut row_ptr = vec![0u32; nrows + 1];
    let mut col_idx: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();

    for i in 0..nrows {
        touched.clear();
        let (a_cols, a_vals) = a.row(i);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                let ju = j as usize;
                if marker[ju] != i as u32 {
                    marker[ju] = i as u32;
                    acc[ju] = av * bv;
                    touched.push(j);
                } else {
                    acc[ju] += av * bv;
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            col_idx.push(j);
            vals.push(acc[j as usize]);
        }
        row_ptr[i + 1] = col_idx.len() as u32;
    }
    Csr::from_raw(nrows, ncols, row_ptr, col_idx, vals)
}

/// The Galerkin triple product `A_c = Pᵀ A P`.
///
/// Computed as `R (A P)` with `R = Pᵀ` formed explicitly, the same structure
/// BoomerAMG uses. The result of an exact triple product of a symmetric `A`
/// is symmetric up to rounding.
pub fn rap(a: &Csr, p: &Csr) -> Csr {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(a.ncols(), p.nrows());
    let r = p.transpose();
    let ap = spgemm(a, p);
    spgemm(&r, &ap)
}

/// Computes `alpha · A + beta · B` for matrices of identical shape.
pub fn add_scaled(a: &Csr, b: &Csr, alpha: f64, beta: f64) -> Csr {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let nrows = a.nrows();
    let mut row_ptr = vec![0u32; nrows + 1];
    let mut col_idx: Vec<u32> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals: Vec<f64> = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..nrows {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut ka, mut kb) = (0usize, 0usize);
        while ka < ac.len() || kb < bc.len() {
            let ca = ac.get(ka).copied().unwrap_or(u32::MAX);
            let cb = bc.get(kb).copied().unwrap_or(u32::MAX);
            if ca < cb {
                col_idx.push(ca);
                vals.push(alpha * av[ka]);
                ka += 1;
            } else if cb < ca {
                col_idx.push(cb);
                vals.push(beta * bv[kb]);
                kb += 1;
            } else {
                col_idx.push(ca);
                vals.push(alpha * av[ka] + beta * bv[kb]);
                ka += 1;
                kb += 1;
            }
        }
        row_ptr[i + 1] = col_idx.len() as u32;
    }
    Csr::from_raw(nrows, a.ncols(), row_ptr, col_idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn dense_mul(a: &Csr, b: &Csr) -> Vec<f64> {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        let da = a.to_dense();
        let db = b.to_dense();
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                let v = da[i * k + l];
                if v != 0.0 {
                    for j in 0..n {
                        c[i * n + j] += v * db[l * n + j];
                    }
                }
            }
        }
        c
    }

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = tridiag(6);
        let b = tridiag(6);
        let c = spgemm(&a, &b);
        let cd = dense_mul(&a, &b);
        let got = c.to_dense();
        for (x, y) in got.iter().zip(&cd) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn spgemm_rectangular() {
        // P: 4x2 linear interpolation
        let mut p = Coo::new(4, 2);
        p.push(0, 0, 1.0);
        p.push(1, 0, 0.5);
        p.push(1, 1, 0.5);
        p.push(2, 1, 1.0);
        p.push(3, 1, 0.5);
        let p = p.to_csr();
        let a = tridiag(4);
        let ap = spgemm(&a, &p);
        let expect = dense_mul(&a, &p);
        let got = ap.to_dense();
        for (x, y) in got.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn rap_is_symmetric_for_symmetric_a() {
        let a = tridiag(8);
        let mut p = Coo::new(8, 4);
        for c in 0..4usize {
            let f = 2 * c;
            p.push(f, c, 1.0);
            if f + 1 < 8 {
                p.push(f + 1, c, 0.5);
                if c + 1 < 4 {
                    p.push(f + 1, c + 1, 0.5);
                }
            }
        }
        let p = p.to_csr();
        let ac = rap(&a, &p);
        assert_eq!(ac.nrows(), 4);
        assert!(ac.is_symmetric(1e-14));
        // Spot-check against dense computation.
        let r = p.transpose();
        let dense = dense_mul(&r, &spgemm(&a, &p));
        let got = ac.to_dense();
        for (x, y) in got.iter().zip(&dense) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn add_scaled_matches_dense() {
        let a = tridiag(5);
        let i5 = Csr::identity(5);
        let c = add_scaled(&a, &i5, 2.0, -3.0);
        for i in 0..5 {
            for j in 0..5 {
                let expect = 2.0 * a.get(i, j) - 3.0 * if i == j { 1.0 } else { 0.0 };
                assert!((c.get(i, j) - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = tridiag(5);
        let i5 = Csr::identity(5);
        assert_eq!(spgemm(&a, &i5), a);
        assert_eq!(spgemm(&i5, &a), a);
    }
}
