//! Sparse and dense linear-algebra kernels used throughout the `asyncmg`
//! workspace.
//!
//! This crate is the lowest-level substrate of the asynchronous-multigrid
//! reproduction: everything the paper's C/OpenMP implementation obtained from
//! hypre's matrix layer is implemented here from scratch:
//!
//! * [`Coo`] — a coordinate-format builder used by the problem generators,
//! * [`Csr`] — compressed sparse row storage with serial and row-range
//!   (team-parallel) matrix-vector kernels,
//! * [`spgemm()`]/[`rap`] — sparse matrix-matrix products used for the Galerkin
//!   coarse-grid operators `A_{k+1} = Pᵀ A_k P` and the smoothed interpolants
//!   `P̄ = (I − ωD⁻¹A) P`,
//! * [`spgemm_parallel`]/[`rap_parallel`]/[`transpose_parallel`] — two-pass
//!   thread-parallel variants of the setup kernels, bit-identical to the
//!   serial ones ([`parallel`] module),
//! * [`DenseLu`] — a partial-pivoting LU factorisation for the coarsest-grid
//!   exact solve,
//! * [`AtomicF64Vec`] — a shared vector of `f64` values accessed with relaxed
//!   atomics, the data structure behind the racy `x`/`r` global vectors of the
//!   paper's Algorithm 5,
//! * [`vecops`] — ranged vector kernels (axpy, dot, norms) matching the
//!   OpenMP `parallel for` loops of the paper.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod atomic;
pub mod bsr;
pub mod calibrate;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod fingerprint;
pub mod io;
pub mod kernel;
pub mod parallel;
pub mod simd;
pub mod spgemm;
pub mod stencil;
pub mod vecops;

pub use atomic::AtomicF64Vec;
pub use bsr::Bsr;
pub use calibrate::{Calibration, HostFingerprint};
pub use coo::Coo;
pub use csr::{Csr, CsrError};
pub use dense::{DenseLu, DenseMatrix};
pub use fingerprint::{fingerprint_csr, Fnv};
pub use kernel::{Kernel, KernelSelect};
pub use parallel::{auto_setup_threads, rap_parallel, spgemm_parallel, transpose_parallel};
pub use spgemm::{add_scaled, rap, spgemm};
pub use stencil::StencilStats;
