//! Shared `f64` vectors with atomic element access.
//!
//! The paper's Algorithm 5 keeps the approximation `x` (and, for global-res,
//! the fine-grid residual `r`) in memory that every grid's threads read and
//! write without synchronisation. In Rust that sharing must go through
//! atomics; [`AtomicF64Vec`] stores each element as an `AtomicU64` holding the
//! f64 bit pattern.
//!
//! All plain loads and stores use `Relaxed` ordering: asynchronous iterative
//! methods are *defined* to tolerate arbitrarily stale element values
//! (Equation 5 of the paper), so no cross-element ordering is required. The
//! inter-thread visibility needed at team boundaries is provided by the team
//! barriers in `asyncmg-threads`, which synchronise with Acquire/Release.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length vector of `f64` elements with atomic access.
pub struct AtomicF64Vec {
    data: Box<[AtomicU64]>,
}

impl AtomicF64Vec {
    /// A zero-initialised vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        let data = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        AtomicF64Vec { data }
    }

    /// A vector initialised from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        let data = s.iter().map(|&v| AtomicU64::new(v.to_bits())).collect();
        AtomicF64Vec { data }
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Atomically loads element `i` (relaxed).
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Atomically stores element `i` (relaxed).
    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        self.data[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `v` to element `i` via a compare-exchange loop.
    ///
    /// This is the *atomic-write* option of Section IV: an atomic
    /// fetch-and-add on a double.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: f64) {
        let cell = &self.data[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copies elements `range` into `dst[range]` (relaxed loads).
    pub fn snapshot_rows(&self, range: std::ops::Range<usize>, dst: &mut [f64]) {
        for i in range {
            dst[i] = self.load(i);
        }
    }

    /// Copies the whole vector into `dst`.
    pub fn snapshot(&self, dst: &mut [f64]) {
        self.snapshot_rows(0..self.len(), dst);
    }

    /// Stores `src[range]` into elements `range` (relaxed stores).
    pub fn store_rows(&self, range: std::ops::Range<usize>, src: &[f64]) {
        for i in range {
            self.store(i, src[i]);
        }
    }

    /// Adds `src[range]` into elements `range` using plain store
    /// (read-modify-write that is *not* atomic across threads — only safe
    /// when `range`s are disjoint between writers, as in lock-write).
    pub fn add_rows_exclusive(&self, range: std::ops::Range<usize>, src: &[f64]) {
        for i in range {
            self.store(i, self.load(i) + src[i]);
        }
    }

    /// Adds `src[range]` into elements `range` with atomic fetch-add.
    pub fn add_rows_atomic(&self, range: std::ops::Range<usize>, src: &[f64]) {
        for i in range {
            self.fetch_add(i, src[i]);
        }
    }

    /// Materialises the contents as a `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }
}

impl std::fmt::Debug for AtomicF64Vec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicF64Vec").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip() {
        let v = AtomicF64Vec::from_slice(&[1.5, -2.25, 0.0]);
        assert_eq!(v.load(0), 1.5);
        assert_eq!(v.load(1), -2.25);
        v.store(2, 7.0);
        assert_eq!(v.to_vec(), vec![1.5, -2.25, 7.0]);
    }

    #[test]
    fn fetch_add_accumulates() {
        let v = AtomicF64Vec::zeros(1);
        for _ in 0..100 {
            v.fetch_add(0, 0.5);
        }
        assert_eq!(v.load(0), 50.0);
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        // 0.5 sums are exact in binary floating point, so the result is
        // deterministic regardless of interleaving.
        let v = Arc::new(AtomicF64Vec::zeros(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for i in 0..4 {
                    for _ in 0..1000 {
                        v.fetch_add(i, 0.5);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(v.load(i), 2000.0);
        }
    }

    #[test]
    fn snapshot_and_store_rows() {
        let v = AtomicF64Vec::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = vec![0.0; 4];
        v.snapshot_rows(1..3, &mut dst);
        assert_eq!(dst, vec![0.0, 2.0, 3.0, 0.0]);
        v.store_rows(0..2, &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(v.to_vec(), vec![9.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn add_rows_variants_agree() {
        let a = AtomicF64Vec::from_slice(&[1.0, 1.0]);
        let b = AtomicF64Vec::from_slice(&[1.0, 1.0]);
        let add = [0.5, -0.25];
        a.add_rows_exclusive(0..2, &add);
        b.add_rows_atomic(0..2, &add);
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
