//! Compressed sparse row matrices and their matrix-vector kernels.
//!
//! Row-range variants of every kernel (`*_rows`) exist so that a thread team
//! can split a kernel over its members with static scheduling, exactly like
//! the OpenMP `parallel for` loops in the paper's Algorithms 3–5.

use crate::atomic::AtomicF64Vec;
// The shared sparse dot kernel `Σ_k vals[k] · x[col[k]]` lives in the `simd`
// module (scalar reference + bit-identical AVX2/NEON paths). Every row-dot
// kernel of [`Csr`] — serial, ranged and atomic — funnels through its
// accumulation order, so sequential and thread-team solves stay comparable at
// round-off level regardless of how rows are partitioned or which instruction
// set executes them.
use crate::simd::dot4;
use crate::stencil::{StencilPlan, StencilStats};
use std::sync::OnceLock;

/// Two-column fused sparse dot: one pass over the row's nonzeros, each
/// column keeping the exact [`dot4`] accumulation order. Fusing shares the
/// index decode and value load across the columns, which single-column
/// repetition pays per column.
#[inline(always)]
fn dot4_pair(vals: &[f64], cols: &[u32], x0: &[f64], x1: &[f64]) -> (f64, f64) {
    let n = vals.len();
    debug_assert_eq!(cols.len(), n);
    debug_assert!(cols.iter().all(|&c| (c as usize) < x0.len() && (c as usize) < x1.len()));
    let n4 = n & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut b0, mut b1, mut b2, mut b3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k < n4 {
        // SAFETY: `k + 3 < n4 <= n` bounds vals/cols; every stored column
        // index is `< ncols <= x*.len()` (validated by `from_raw`, checked
        // by the `debug_assert` above).
        unsafe {
            let (c0, c1, c2, c3) = (
                *cols.get_unchecked(k) as usize,
                *cols.get_unchecked(k + 1) as usize,
                *cols.get_unchecked(k + 2) as usize,
                *cols.get_unchecked(k + 3) as usize,
            );
            let (v0, v1, v2, v3) = (
                *vals.get_unchecked(k),
                *vals.get_unchecked(k + 1),
                *vals.get_unchecked(k + 2),
                *vals.get_unchecked(k + 3),
            );
            a0 += v0 * *x0.get_unchecked(c0);
            a1 += v1 * *x0.get_unchecked(c1);
            a2 += v2 * *x0.get_unchecked(c2);
            a3 += v3 * *x0.get_unchecked(c3);
            b0 += v0 * *x1.get_unchecked(c0);
            b1 += v1 * *x1.get_unchecked(c1);
            b2 += v2 * *x1.get_unchecked(c2);
            b3 += v3 * *x1.get_unchecked(c3);
        }
        k += 4;
    }
    let (mut ta, mut tb) = (0.0f64, 0.0f64);
    while k < n {
        // SAFETY: as above, `k < n`.
        unsafe {
            let c = *cols.get_unchecked(k) as usize;
            let v = *vals.get_unchecked(k);
            ta += v * *x0.get_unchecked(c);
            tb += v * *x1.get_unchecked(c);
        }
        k += 1;
    }
    ((a0 + a1) + (a2 + a3) + ta, (b0 + b1) + (b2 + b3) + tb)
}

/// Four-column fused sparse dot: like [`dot4_pair`] but amortising the
/// index decode and value load over four columns (16 live accumulators —
/// at the register budget, which is why wider fusion stops here).
#[inline(always)]
fn dot4_quad(
    vals: &[f64],
    cols: &[u32],
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
) -> (f64, f64, f64, f64) {
    let n = vals.len();
    debug_assert_eq!(cols.len(), n);
    debug_assert!(cols.iter().all(|&c| (c as usize) < x0.len()));
    let n4 = n & !3;
    let mut a = [0.0f64; 4];
    let mut b = [0.0f64; 4];
    let mut c_ = [0.0f64; 4];
    let mut d = [0.0f64; 4];
    let mut k = 0;
    while k < n4 {
        // SAFETY: `k + 3 < n4 <= n` bounds vals/cols; every stored column
        // index is `< ncols <= x*.len()` (validated by `from_raw`, checked
        // by the `debug_assert` above — all four blocks share `ncols`).
        unsafe {
            let (c0, c1, c2, c3) = (
                *cols.get_unchecked(k) as usize,
                *cols.get_unchecked(k + 1) as usize,
                *cols.get_unchecked(k + 2) as usize,
                *cols.get_unchecked(k + 3) as usize,
            );
            let (v0, v1, v2, v3) = (
                *vals.get_unchecked(k),
                *vals.get_unchecked(k + 1),
                *vals.get_unchecked(k + 2),
                *vals.get_unchecked(k + 3),
            );
            a[0] += v0 * *x0.get_unchecked(c0);
            a[1] += v1 * *x0.get_unchecked(c1);
            a[2] += v2 * *x0.get_unchecked(c2);
            a[3] += v3 * *x0.get_unchecked(c3);
            b[0] += v0 * *x1.get_unchecked(c0);
            b[1] += v1 * *x1.get_unchecked(c1);
            b[2] += v2 * *x1.get_unchecked(c2);
            b[3] += v3 * *x1.get_unchecked(c3);
            c_[0] += v0 * *x2.get_unchecked(c0);
            c_[1] += v1 * *x2.get_unchecked(c1);
            c_[2] += v2 * *x2.get_unchecked(c2);
            c_[3] += v3 * *x2.get_unchecked(c3);
            d[0] += v0 * *x3.get_unchecked(c0);
            d[1] += v1 * *x3.get_unchecked(c1);
            d[2] += v2 * *x3.get_unchecked(c2);
            d[3] += v3 * *x3.get_unchecked(c3);
        }
        k += 4;
    }
    let mut t = [0.0f64; 4];
    while k < n {
        // SAFETY: as above, `k < n`.
        unsafe {
            let ci = *cols.get_unchecked(k) as usize;
            let v = *vals.get_unchecked(k);
            t[0] += v * *x0.get_unchecked(ci);
            t[1] += v * *x1.get_unchecked(ci);
            t[2] += v * *x2.get_unchecked(ci);
            t[3] += v * *x3.get_unchecked(ci);
        }
        k += 1;
    }
    (
        (a[0] + a[1]) + (a[2] + a[3]) + t[0],
        (b[0] + b[1]) + (b[2] + b[3]) + t[1],
        (c_[0] + c_[1]) + (c_[2] + c_[3]) + t[2],
        (d[0] + d[1]) + (d[2] + d[3]) + t[3],
    )
}

/// Runs the fused sparse dot over all `nrhs` columns of the column-major
/// block `x` (stride `ncols`), writing one result per column through `out`.
/// Columns go through [`dot4_quad`] four at a time, then [`dot4_pair`],
/// then a [`dot4`] cleanup, so every column's sum is bit-identical to a
/// solo [`dot4`].
#[inline(always)]
fn dot4_block(
    vals: &[f64],
    cols: &[u32],
    nrhs: usize,
    ncols: usize,
    x: &[f64],
    mut out: impl FnMut(usize, f64),
) {
    let mut c = 0;
    while c + 4 <= nrhs {
        let (r0, r1, r2, r3) = dot4_quad(
            vals,
            cols,
            &x[c * ncols..(c + 1) * ncols],
            &x[(c + 1) * ncols..(c + 2) * ncols],
            &x[(c + 2) * ncols..(c + 3) * ncols],
            &x[(c + 3) * ncols..(c + 4) * ncols],
        );
        out(c, r0);
        out(c + 1, r1);
        out(c + 2, r2);
        out(c + 3, r3);
        c += 4;
    }
    if c + 2 <= nrhs {
        let (r0, r1) = dot4_pair(
            vals,
            cols,
            &x[c * ncols..(c + 1) * ncols],
            &x[(c + 1) * ncols..(c + 2) * ncols],
        );
        out(c, r0);
        out(c + 1, r1);
        c += 2;
    }
    if c < nrhs {
        out(c, dot4(vals, cols, &x[c * ncols..(c + 1) * ncols]));
    }
}

/// A structural or value defect found by [`Csr::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr` does not have `nrows + 1` entries.
    RowPtrLength {
        /// `nrows + 1`.
        expected: usize,
        /// Actual `row_ptr` length.
        got: usize,
    },
    /// `row_ptr`, `col_idx` and `vals` disagree about the entry count.
    NnzMismatch {
        /// `row_ptr.last()`.
        row_ptr_last: usize,
        /// `col_idx.len()`.
        col_idx: usize,
        /// `vals.len()`.
        vals: usize,
    },
    /// `row_ptr` decreases at this row.
    RowPtrNotMonotone {
        /// Offending row.
        row: usize,
    },
    /// A column index is out of range.
    ColOutOfRange {
        /// Offending row.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix column count.
        ncols: usize,
    },
    /// Column indices within a row are not strictly increasing.
    ColsNotSorted {
        /// Offending row.
        row: usize,
    },
    /// A stored value is NaN or infinite.
    NonFiniteValue {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::RowPtrLength { expected, got } => {
                write!(f, "row_ptr has {got} entries, expected {expected}")
            }
            CsrError::NnzMismatch { row_ptr_last, col_idx, vals } => write!(
                f,
                "entry counts disagree: row_ptr says {row_ptr_last}, col_idx {col_idx}, vals {vals}"
            ),
            CsrError::RowPtrNotMonotone { row } => write!(f, "row_ptr decreases at row {row}"),
            CsrError::ColOutOfRange { row, col, ncols } => {
                write!(f, "row {row} references column {col} of a {ncols}-column matrix")
            }
            CsrError::ColsNotSorted { row } => {
                write!(f, "columns of row {row} are not strictly increasing")
            }
            CsrError::NonFiniteValue { row, col } => {
                write!(f, "entry ({row}, {col}) is not finite")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A sparse matrix in compressed sparse row format.
///
/// Column indices are `u32` (half the memory of `usize` indices, the usual
/// HPC choice); columns are sorted within each row.
#[derive(Debug)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
    /// Lazily built across-row SIMD plan (see [`crate::stencil`]): `None`
    /// inside means "checked, not stencil-structured". Purely a kernel
    /// cache — cloning resets it, equality ignores it, and the `&mut`
    /// accessors drop it so a stale repack can never be applied.
    plan: OnceLock<Option<Box<StencilPlan>>>,
}

impl Clone for Csr {
    fn clone(&self) -> Self {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.clone(),
            plan: OnceLock::new(),
        }
    }
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.vals == other.vals
    }
}

impl Csr {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (debug builds also verify that
    /// columns are in range and sorted).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1);
        assert_eq!(col_idx.len(), vals.len());
        assert_eq!(*row_ptr.last().unwrap() as usize, col_idx.len());
        #[cfg(debug_assertions)]
        {
            for i in 0..nrows {
                let lo = row_ptr[i] as usize;
                let hi = row_ptr[i + 1] as usize;
                assert!(lo <= hi);
                for k in lo..hi {
                    assert!((col_idx[k] as usize) < ncols);
                    if k > lo {
                        assert!(col_idx[k - 1] < col_idx[k], "row {i} not sorted");
                    }
                }
            }
        }
        Csr { nrows, ncols, row_ptr, col_idx, vals, plan: OnceLock::new() }
    }

    /// Full structural and value validation, independent of build profile.
    ///
    /// Unlike the `debug_assert`s in [`Csr::from_raw`], this checks release
    /// builds too and reports the defect instead of panicking: row-pointer
    /// monotonicity, column range and ordering, and entry finiteness. Use
    /// it on untrusted input before handing the matrix to a solver.
    pub fn validate(&self) -> Result<(), CsrError> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(CsrError::RowPtrLength {
                expected: self.nrows + 1,
                got: self.row_ptr.len(),
            });
        }
        if *self.row_ptr.last().unwrap() as usize != self.vals.len()
            || self.col_idx.len() != self.vals.len()
        {
            return Err(CsrError::NnzMismatch {
                row_ptr_last: *self.row_ptr.last().unwrap() as usize,
                col_idx: self.col_idx.len(),
                vals: self.vals.len(),
            });
        }
        for i in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            if lo > hi {
                return Err(CsrError::RowPtrNotMonotone { row: i });
            }
            for k in lo..hi {
                if self.col_idx[k] as usize >= self.ncols {
                    return Err(CsrError::ColOutOfRange {
                        row: i,
                        col: self.col_idx[k] as usize,
                        ncols: self.ncols,
                    });
                }
                if k > lo && self.col_idx[k - 1] >= self.col_idx[k] {
                    return Err(CsrError::ColsNotSorted { row: i });
                }
                if !self.vals[k].is_finite() {
                    return Err(CsrError::NonFiniteValue { row: i, col: self.col_idx[k] as usize });
                }
            }
        }
        Ok(())
    }

    /// Builds a CSR matrix from raw parts whose rows may be unsorted,
    /// normalising with [`Csr::sort_rows`] before returning. Use this for
    /// externally produced arrays (foreign libraries, file formats that do
    /// not guarantee ordering); [`Csr::from_raw`] requires sorted rows.
    ///
    /// # Panics
    /// Panics if the array shapes are inconsistent.
    pub fn from_unsorted_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1);
        assert_eq!(col_idx.len(), vals.len());
        assert_eq!(*row_ptr.last().unwrap() as usize, col_idx.len());
        let mut a = Csr { nrows, ncols, row_ptr, col_idx, vals, plan: OnceLock::new() };
        a.sort_rows();
        a
    }

    /// Sorts each row's entries by column index, in place.
    ///
    /// Every kernel in this crate — and the BSR conversion in
    /// [`crate::bsr`] — assumes sorted columns; matrices built by
    /// [`Coo`](crate::coo::Coo) already are, but externally imported raw
    /// arrays may not be. This normaliser makes them so. Duplicate columns
    /// are left adjacent (their order preserved) and still rejected by
    /// [`Csr::validate`]; merge duplicates through a
    /// [`Coo`](crate::coo::Coo) round trip instead.
    pub fn sort_rows(&mut self) {
        self.plan.take();
        let mut perm: Vec<u32> = Vec::new();
        let mut scratch_c: Vec<u32> = Vec::new();
        let mut scratch_v: Vec<f64> = Vec::new();
        for i in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            let cols = &self.col_idx[lo..hi];
            if cols.windows(2).all(|w| w[0] <= w[1]) {
                continue;
            }
            perm.clear();
            perm.extend(0..(hi - lo) as u32);
            perm.sort_by_key(|&k| cols[k as usize]);
            scratch_c.clear();
            scratch_v.clear();
            scratch_c.extend(perm.iter().map(|&k| self.col_idx[lo + k as usize]));
            scratch_v.extend(perm.iter().map(|&k| self.vals[lo + k as usize]));
            self.col_idx[lo..hi].copy_from_slice(&scratch_c);
            self.vals[lo..hi].copy_from_slice(&scratch_v);
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n as u32).collect();
        let col_idx = (0..n as u32).collect();
        let vals = vec![1.0; n];
        Csr { nrows: n, ncols: n, row_ptr, col_idx, vals, plan: OnceLock::new() }
    }

    /// A diagonal matrix with the given diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let row_ptr = (0..=n as u32).collect();
        let col_idx = (0..n as u32).collect();
        Csr { nrows: n, ncols: n, row_ptr, col_idx, vals: diag.to_vec(), plan: OnceLock::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The raw row-pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The raw column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable access to the value array (structure is fixed).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        self.plan.take();
        &mut self.vals
    }

    /// The cached stencil plan when one applies: built on first use by the
    /// SIMD SpMV path, `None` while SIMD is off/unsupported or when the
    /// matrix lacks run structure (see [`crate::stencil`]).
    #[inline]
    fn stencil_plan(&self) -> Option<&StencilPlan> {
        if !crate::simd::active() {
            return None;
        }
        self.plan.get_or_init(|| StencilPlan::build(self).map(Box::new)).as_deref()
    }

    /// Summary of the across-row SIMD plan for this matrix, or `None` when
    /// no plan applies (SIMD off or unsupported, or the matrix is not
    /// stencil-structured). Benchmarks and tests use this to report which
    /// kernel actually ran.
    pub fn stencil_stats(&self) -> Option<StencilStats> {
        self.stencil_plan().map(|p| p.stats())
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// The entry at `(i, j)`, or `0.0` when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// The main diagonal as a dense vector (`0.0` where absent).
    pub fn diag(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows];
        self.diag_into(&mut d);
        d
    }

    /// Writes the main diagonal into `out` (`0.0` where absent), locating
    /// each entry with a binary search over the row's sorted columns.
    pub fn diag_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.nrows);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            out[i] = match cols.binary_search(&(i as u32)) {
                Ok(k) => vals[k],
                Err(_) => 0.0,
            };
        }
    }

    /// Row-wise ℓ1 norms `Σ_j |a_ij|`, the diagonal of the ℓ1-Jacobi
    /// smoothing matrix of the paper's Section V.
    pub fn l1_row_norms(&self) -> Vec<f64> {
        (0..self.nrows).map(|i| self.row(i).1.iter().map(|v| v.abs()).sum()).collect()
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_rows(0..self.nrows, x, y);
    }

    /// `y[rows] = (A x)[rows]` — the row-range kernel used by thread teams.
    ///
    /// When SIMD is active and the matrix is stencil-structured, this runs
    /// the across-row plan of [`crate::stencil`]; each row's result is
    /// bit-identical to the scalar per-row path regardless of the range
    /// partitioning.
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        if let Some(plan) = self.stencil_plan() {
            // The vector kernels read/write through raw pointers; check the
            // slice contract in release builds too before entering them.
            assert!(rows.end <= self.nrows && x.len() >= self.ncols && y.len() >= self.nrows);
            plan.spmv_rows(self, rows, x, y);
            return;
        }
        for i in rows {
            y[i] = self.row_dot(i, x);
        }
    }

    /// Single-row dot product `(A x)_i`.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        dot4(&self.vals[lo..hi], &self.col_idx[lo..hi], x)
    }

    /// Single-row dot product reading `x` from a shared atomic vector.
    ///
    /// This is the kernel inside asynchronous Gauss-Seidel and the global-res
    /// residual update, where `x` is concurrently mutated by other grids.
    /// The accumulation order matches [`Csr::row_dot`] (same 4-way unrolled
    /// scheme) so synchronous thread-team solves reproduce sequential ones.
    #[inline]
    pub fn row_dot_atomic(&self, i: usize, x: &AtomicF64Vec) -> f64 {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        let (vals, cols) = (&self.vals[lo..hi], &self.col_idx[lo..hi]);
        let n = vals.len();
        let n4 = n & !3;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut k = 0;
        while k < n4 {
            a0 += vals[k] * x.load(cols[k] as usize);
            a1 += vals[k + 1] * x.load(cols[k + 1] as usize);
            a2 += vals[k + 2] * x.load(cols[k + 2] as usize);
            a3 += vals[k + 3] * x.load(cols[k + 3] as usize);
            k += 4;
        }
        let mut tail = 0.0f64;
        while k < n {
            tail += vals[k] * x.load(cols[k] as usize);
            k += 1;
        }
        (a0 + a1) + (a2 + a3) + tail
    }

    /// `r[rows] = (b − A x)[rows]` — residual kernel.
    ///
    /// Stencil-planned like [`Csr::spmv_rows`]: the dots land in `r` first,
    /// then `r[i] = b[i] − r[i]` — the same `b[i] − dot` each scalar row
    /// computes, so the result stays bit-identical.
    pub fn residual_rows(&self, rows: std::ops::Range<usize>, b: &[f64], x: &[f64], r: &mut [f64]) {
        if let Some(plan) = self.stencil_plan() {
            assert!(
                rows.end <= self.nrows
                    && x.len() >= self.ncols
                    && r.len() >= self.nrows
                    && b.len() >= self.nrows
            );
            plan.spmv_rows(self, rows.clone(), x, r);
            for i in rows {
                r[i] = b[i] - r[i];
            }
            return;
        }
        for i in rows {
            r[i] = b[i] - self.row_dot(i, x);
        }
    }

    /// `r = b − A x`.
    pub fn residual(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        self.residual_rows(0..self.nrows, b, x, r);
    }

    /// `y += A x` over a row range.
    pub fn spmv_add_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        for i in rows {
            y[i] += self.row_dot(i, x);
        }
    }

    /// Multi-RHS single-row kernel: `out[c] = (A x_c)_i` for each of the
    /// `nrhs` column vectors stored contiguously in `x` (column-major: column
    /// `c` occupies `x[c·ncols .. (c+1)·ncols]`).
    ///
    /// The row's `vals`/`col_idx` slices are loaded once and reused across
    /// all columns, but each column accumulates in exactly the [`Csr::row_dot`]
    /// order (the shared `dot4` scheme), so column `c` of a blocked kernel is
    /// bit-identical to a single-RHS `row_dot` against `x_c`.
    #[inline]
    pub fn row_dot_block(&self, i: usize, nrhs: usize, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols * nrhs);
        debug_assert!(out.len() >= nrhs);
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        let (vals, cols) = (&self.vals[lo..hi], &self.col_idx[lo..hi]);
        dot4_block(vals, cols, nrhs, self.ncols, x, |c, v| out[c] = v);
    }

    /// Blocked SpMM `Y = A X` over `nrhs` column vectors.
    ///
    /// `x` holds `nrhs` columns of length `ncols` back to back; `y` receives
    /// `nrhs` columns of length `nrows` in the same layout. Column `c` of the
    /// result is bit-identical to `spmv` applied to column `c` alone (see
    /// [`Csr::row_dot_block`]); the blocked form only amortises the matrix
    /// structure traversal across the columns.
    pub fn spmv_block(&self, nrhs: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols * nrhs, "x must hold nrhs columns of length ncols");
        assert_eq!(y.len(), self.nrows * nrhs, "y must hold nrhs columns of length nrows");
        for i in 0..self.nrows {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let (vals, cols) = (&self.vals[lo..hi], &self.col_idx[lo..hi]);
            let nrows = self.nrows;
            dot4_block(vals, cols, nrhs, self.ncols, x, |c, v| y[c * nrows + i] = v);
        }
    }

    /// Blocked residual `R = B − A X` over `nrhs` columns (layout as in
    /// [`Csr::spmv_block`]). Column `c` is bit-identical to [`Csr::residual`]
    /// on column `c` alone.
    pub fn residual_block(&self, nrhs: usize, b: &[f64], x: &[f64], r: &mut [f64]) {
        assert_eq!(x.len(), self.ncols * nrhs, "x must hold nrhs columns of length ncols");
        assert_eq!(b.len(), self.nrows * nrhs, "b must hold nrhs columns of length nrows");
        assert_eq!(r.len(), self.nrows * nrhs, "r must hold nrhs columns of length nrows");
        for i in 0..self.nrows {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let (vals, cols) = (&self.vals[lo..hi], &self.col_idx[lo..hi]);
            let nrows = self.nrows;
            dot4_block(vals, cols, nrhs, self.ncols, x, |c, v| {
                r[c * nrows + i] = b[c * nrows + i] - v;
            });
        }
    }

    /// The transpose as a new CSR matrix (used for restriction `R = Pᵀ`).
    pub fn transpose(&self) -> Csr {
        // One array serves as both prefix sum and insertion cursor: during
        // the fill, `row_ptr[j]` walks from the start of output row `j` to
        // its end (= the start of row `j + 1`), so a single right-shift
        // afterwards restores the row pointers without a second allocation.
        let mut row_ptr = vec![0u32; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        for i in 0..self.nrows {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for k in lo..hi {
                let j = self.col_idx[k] as usize;
                let dst = row_ptr[j] as usize;
                col_idx[dst] = i as u32;
                vals[dst] = self.vals[k];
                row_ptr[j] += 1;
            }
        }
        for j in (1..=self.ncols).rev() {
            row_ptr[j] = row_ptr[j - 1];
        }
        row_ptr[0] = 0;
        // Rows of the transpose are produced in increasing original-row
        // order, so columns are already sorted.
        Csr { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, vals, plan: OnceLock::new() }
    }

    /// Whether the matrix is numerically symmetric to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structures differ; fall back to slow entry-wise comparison.
            for i in 0..self.nrows {
                let (cols, vals) = self.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    if (v - self.get(j as usize, i)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.vals.iter().zip(&t.vals).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Infinity norm `max_i Σ_j |a_ij|`.
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Scales row `i` by `s[i]` in place (`A ← diag(s) A`).
    pub fn scale_rows(&mut self, s: &[f64]) {
        assert_eq!(s.len(), self.nrows);
        self.plan.take();
        for i in 0..self.nrows {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for v in &mut self.vals[lo..hi] {
                *v *= s[i];
            }
        }
    }

    /// Converts to a dense row-major array (tests and the coarse solve).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                d[i * self.ncols + j as usize] = v;
            }
        }
        d
    }

    /// Drops stored entries with `|a_ij| <= tol`, keeping the diagonal.
    pub fn drop_small(&self, tol: f64) -> Csr {
        let mut row_ptr = vec![0u32; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let (cols, vs) = self.row(i);
            for (&j, &v) in cols.iter().zip(vs) {
                if v.abs() > tol || j as usize == i {
                    col_idx.push(j);
                    vals.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len() as u32;
        }
        Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx, vals, plan: OnceLock::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut c = Coo::new(3, 3);
        for i in 0..3usize {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i < 2 {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn spmv_tridiag() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
    }

    #[test]
    fn residual_matches_definition() {
        let a = small();
        let b = [1.0, 1.0, 1.0];
        let x = [0.5, 1.0, 0.5];
        let mut r = [0.0; 3];
        a.residual(&b, &x, &mut r);
        let mut ax = [0.0; 3];
        a.spmv(&x, &mut ax);
        for i in 0..3 {
            assert!((r[i] - (b[i] - ax[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn sort_rows_normalises_unsorted_input() {
        let a = Csr::from_unsorted_raw(
            2,
            4,
            vec![0, 3, 5],
            vec![3, 0, 2, 1, 0],
            vec![30.0, 0.5, 20.0, 11.0, 10.0],
        );
        assert!(a.validate().is_ok());
        assert_eq!(a.row(0), (&[0u32, 2, 3][..], &[0.5, 20.0, 30.0][..]));
        assert_eq!(a.row(1), (&[0u32, 1][..], &[10.0, 11.0][..]));
        // Already-sorted rows are untouched (fast path).
        let mut b = a.clone();
        b.sort_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn sort_rows_keeps_duplicates_for_validate() {
        let a = Csr::from_unsorted_raw(1, 3, vec![0, 3], vec![2, 1, 2], vec![1.0, 2.0, 3.0]);
        assert!(matches!(a.validate(), Err(CsrError::ColsNotSorted { row: 0 })));
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let a = small();
        let t = a.transpose();
        assert_eq!(a, t);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn transpose_rectangular() {
        let mut c = Coo::new(2, 3);
        c.push(0, 0, 1.0);
        c.push(0, 2, 2.0);
        c.push(1, 1, 3.0);
        let a = c.to_csr();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn diag_and_l1() {
        let a = small();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        assert_eq!(a.l1_row_norms(), vec![3.0, 4.0, 3.0]);
    }

    #[test]
    fn identity_behaves() {
        let i3 = Csr::identity(3);
        let x = [5.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn spmv_rows_partitions_compose() {
        let a = small();
        let x = [1.0, -2.0, 0.5];
        let mut full = [0.0; 3];
        a.spmv(&x, &mut full);
        let mut split = [0.0; 3];
        a.spmv_rows(0..1, &x, &mut split);
        a.spmv_rows(1..3, &x, &mut split);
        assert_eq!(full, split);
    }

    #[test]
    fn norm_inf_small() {
        assert_eq!(small().norm_inf(), 4.0);
    }

    /// An irregular matrix with row lengths straddling the 4-way unroll
    /// boundary (1..=6 nonzeros per row), to exercise both the unrolled body
    /// and the tail of `dot4` in the blocked kernels.
    fn irregular(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0 + (i % 3) as f64);
            for d in 1..=(i % 6) {
                if i >= d {
                    c.push(i, i - d, -1.0 / (d as f64 + 0.5));
                }
            }
        }
        c.to_csr()
    }

    fn columns(n: usize, nrhs: usize) -> Vec<f64> {
        // Deterministic, irregular values; splitmix64-style mixing.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        (0..n * nrhs)
            .map(|_| {
                s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(0x94d0_49bb_1331_11eb);
                ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn row_dot_block_matches_row_dot_bitwise() {
        let a = irregular(23);
        let nrhs = 5;
        let x = columns(23, nrhs);
        let mut out = vec![0.0; nrhs];
        for i in 0..a.nrows() {
            a.row_dot_block(i, nrhs, &x, &mut out);
            for c in 0..nrhs {
                let solo = a.row_dot(i, &x[c * 23..(c + 1) * 23]);
                assert_eq!(out[c].to_bits(), solo.to_bits(), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn spmv_block_matches_per_column_spmv_bitwise() {
        let a = irregular(31);
        let nrhs = 4;
        let x = columns(31, nrhs);
        let mut y = vec![0.0; 31 * nrhs];
        a.spmv_block(nrhs, &x, &mut y);
        for c in 0..nrhs {
            let mut solo = vec![0.0; 31];
            a.spmv(&x[c * 31..(c + 1) * 31], &mut solo);
            for i in 0..31 {
                assert_eq!(y[c * 31 + i].to_bits(), solo[i].to_bits(), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn residual_block_matches_per_column_residual_bitwise() {
        let a = irregular(17);
        let nrhs = 3;
        let x = columns(17, nrhs);
        let b = columns(17, nrhs);
        let mut r = vec![0.0; 17 * nrhs];
        a.residual_block(nrhs, &b, &x, &mut r);
        for c in 0..nrhs {
            let mut solo = vec![0.0; 17];
            a.residual(&b[c * 17..(c + 1) * 17], &x[c * 17..(c + 1) * 17], &mut solo);
            for i in 0..17 {
                assert_eq!(r[c * 17 + i].to_bits(), solo[i].to_bits(), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn spmv_block_single_column_equals_spmv() {
        let a = irregular(29);
        let x = columns(29, 1);
        let mut blocked = vec![0.0; 29];
        let mut plain = vec![0.0; 29];
        a.spmv_block(1, &x, &mut blocked);
        a.spmv(&x, &mut plain);
        assert_eq!(blocked, plain);
    }

    #[test]
    fn drop_small_keeps_diagonal() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1e-14);
        c.push(0, 1, 1.0);
        c.push(1, 1, 2.0);
        let a = c.to_csr().drop_small(1e-12);
        assert_eq!(a.get(0, 0), 1e-14); // diagonal kept
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn scale_rows_applies() {
        let mut a = small();
        a.scale_rows(&[1.0, 2.0, 0.5]);
        assert_eq!(a.get(1, 0), -2.0);
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn validate_accepts_well_formed_matrices() {
        assert_eq!(small().validate(), Ok(()));
        assert_eq!(Csr::identity(5).validate(), Ok(()));
        assert_eq!(Csr::from_diag(&[1.0, -2.0]).validate(), Ok(()));
    }

    #[test]
    fn validate_reports_defects() {
        // Built through the private constructor so defective raw parts can
        // bypass from_raw's panics.
        let mut a = small();
        a.vals[1] = f64::NAN;
        assert!(matches!(a.validate(), Err(CsrError::NonFiniteValue { .. })));

        let a = Csr {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 1, 2],
            col_idx: vec![0, 5],
            vals: vec![1.0, 1.0],
            plan: OnceLock::new(),
        };
        assert_eq!(a.validate(), Err(CsrError::ColOutOfRange { row: 1, col: 5, ncols: 2 }));

        let a = Csr {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 2, 2],
            col_idx: vec![1, 0],
            vals: vec![1.0, 1.0],
            plan: OnceLock::new(),
        };
        assert_eq!(a.validate(), Err(CsrError::ColsNotSorted { row: 0 }));

        let a = Csr {
            nrows: 1,
            ncols: 1,
            row_ptr: vec![0, 2],
            col_idx: vec![0],
            vals: vec![1.0],
            plan: OnceLock::new(),
        };
        assert!(matches!(a.validate(), Err(CsrError::NnzMismatch { .. })));
    }
}
