//! Dense matrices and LU factorisation for the coarsest-grid exact solve.
//!
//! Multigrid hierarchies bottom out at a grid small enough (tens of rows)
//! that a dense direct solve is the cheapest, most robust option; this module
//! provides the `A_ℓ⁻¹` of Algorithms 1, 2 and 5.

use crate::csr::Csr;

/// A dense row-major matrix.
#[derive(Clone, Debug)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix { n_rows, n_cols, data: vec![0.0; n_rows * n_cols] }
    }

    /// Builds from a sparse matrix.
    pub fn from_csr(a: &Csr) -> Self {
        DenseMatrix { n_rows: a.nrows(), n_cols: a.ncols(), data: a.to_dense() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.n_cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.n_cols + j]
    }
}

/// An LU factorisation with partial pivoting of a square matrix.
#[derive(Clone, Debug)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<u32>,
}

impl DenseLu {
    /// Factors a square sparse matrix. Returns `None` when the matrix is
    /// numerically singular.
    pub fn factor(a: &Csr) -> Option<Self> {
        assert_eq!(a.nrows(), a.ncols(), "LU requires a square matrix");
        let n = a.nrows();
        let mut lu = a.to_dense();
        let mut piv: Vec<u32> = (0..n as u32).collect();
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return None;
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= m * lu[k * n + j];
                    }
                }
            }
        }
        Some(DenseLu { n, lu, piv })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`, writing the solution into `x`.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        let n = self.n;
        // Apply the row permutation.
        for i in 0..n {
            x[i] = b[self.piv[i] as usize];
        }
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
    }

    /// Convenience: allocates and returns the solution.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve(b, &mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn lu_solves_tridiag() {
        let a = tridiag(10);
        let lu = DenseLu::factor(&a).unwrap();
        let xs: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let mut b = vec![0.0; 10];
        a.spmv(&xs, &mut b);
        let got = lu.solve_vec(&b);
        for (g, e) in got.iter().zip(&xs) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn lu_requires_pivoting() {
        // [0 1; 1 0] has a zero leading pivot.
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let lu = DenseLu::factor(&a).unwrap();
        let got = lu.solve_vec(&[3.0, 5.0]);
        assert!((got[0] - 5.0).abs() < 1e-14);
        assert!((got[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(1, 0, 2.0);
        c.push(1, 1, 4.0);
        assert!(DenseLu::factor(&c.to_csr()).is_none());
    }

    #[test]
    fn solve_identity() {
        let lu = DenseLu::factor(&Csr::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve_vec(&b), b.to_vec());
    }

    #[test]
    fn dense_matrix_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        *m.get_mut(1, 2) = 5.0;
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }
}
