//! Content fingerprints: a small FNV-1a digest and the canonical
//! [`Csr`] matrix fingerprint built on it.
//!
//! The digest started life in `asyncmg-harness` as the engine behind run
//! fingerprints (hashing solution bits and telemetry event streams for
//! replay comparisons). The solver service needs the same machinery one
//! layer lower — a hierarchy cache keys built AMG setups by the *content*
//! of the system matrix — so [`Fnv`] lives here and the harness re-exports
//! it.

use crate::csr::Csr;

/// FNV-1a, 64-bit. Small, dependency-free, and stable across platforms —
/// exactly what a golden fingerprint or cache key needs (this is a digest
/// for comparisons, not a collision-resistant hash).
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern, canonicalising NaN so that the many
    /// NaN payloads compare equal (the solvers report `NaN` for "not
    /// computed" local residuals).
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
        self.write_u64(bits);
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// The content fingerprint of a CSR matrix: FNV-1a over the shape and all
/// three storage arrays (`row_ptr`, `col_idx`, and the bit patterns of
/// `vals`).
///
/// Two matrices fingerprint equal iff they are structurally identical and
/// value-identical at the bit level — which is exactly the equivalence a
/// hierarchy cache needs, since the AMG setup is a deterministic function
/// of those arrays.
pub fn fingerprint_csr(a: &Csr) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(a.nrows() as u64);
    h.write_u64(a.ncols() as u64);
    for &p in a.row_ptr() {
        h.write_u64(p as u64);
    }
    for &c in a.col_idx() {
        h.write_u64(c as u64);
    }
    for &v in a.vals() {
        h.write_f64(v);
    }
    h.finish()
}

impl Csr {
    /// The content fingerprint of this matrix (see [`fingerprint_csr`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint_csr(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn fnv_is_deterministic_and_order_sensitive() {
        let mut a = Fnv::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn nan_payloads_canonicalise() {
        let mut a = Fnv::new();
        a.write_f64(f64::NAN);
        let mut b = Fnv::new();
        b.write_f64(f64::from_bits(f64::NAN.to_bits() | 1));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn equal_matrices_fingerprint_equal() {
        assert_eq!(tridiag(16).fingerprint(), tridiag(16).fingerprint());
    }

    #[test]
    fn fingerprint_sees_shape_and_values() {
        let base = tridiag(16);
        assert_ne!(base.fingerprint(), tridiag(17).fingerprint());
        let mut bumped = tridiag(16);
        let v = bumped.vals_mut()[0];
        bumped.vals_mut()[0] = f64::from_bits(v.to_bits() ^ 1);
        assert_ne!(base.fingerprint(), bumped.fingerprint());
    }
}
