//! Offline stand-in for the `rand` crate.
//!
//! The reproduction container has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over the ranges the solvers sample. The generator is xoshiro256++ with a
//! SplitMix64 seeding sequence — deterministic across platforms, which is all
//! the experiments need (they never relied on `rand`'s exact streams; every
//! call site takes an explicit seed).

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling methods used by this workspace, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

/// A range that can produce a uniform sample from 64 random bits.
pub trait SampleRange<T> {
    /// Maps the raw bits to a sample.
    fn sample(self, bits: u64) -> T;
}

/// `u64 → [0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, bits: u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(bits) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, bits: u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(bits) * (hi - lo)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (bits as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (bits as u128 % span) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, u16, u8);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but every use in this
    /// workspace only needs a deterministic, well-mixed stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let w: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
