//! Multigrid smoothers (Section V of the paper).
//!
//! Four smoothers are implemented, matching the paper's experimental set:
//!
//! * **ω-Jacobi** — `M = D/ω`,
//! * **ℓ1-Jacobi** — `M_ii = Σ_j |a_ij|`; guarantees monotone A-norm error
//!   decay for SPD matrices,
//! * **hybrid Jacobi–Gauss-Seidel** — block Jacobi with one forward
//!   Gauss-Seidel sweep inside each (thread-owned) block,
//! * **asynchronous Gauss-Seidel** — the same block structure, but executed
//!   by concurrent threads that write each relaxed value to shared memory
//!   immediately (Equation 5's asynchronous model); in a sequential setting
//!   it coincides with hybrid JGS.
//!
//! [`LevelSmoother`] precomputes diagonals and block ranges for one level.
//! Sequential kernels serve the synchronous solvers and the simulation
//! models; block kernels plus [`async_gs_sweep`] serve the thread-team
//! implementations.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod chaotic;

use asyncmg_sparse::{AtomicF64Vec, Csr, Kernel};
use asyncmg_threads::chunk_range;

/// Smoother selection, with parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SmootherKind {
    /// Weighted Jacobi with weight ω.
    WJacobi {
        /// The damping weight.
        omega: f64,
    },
    /// ℓ1-Jacobi.
    L1Jacobi,
    /// Hybrid Jacobi–Gauss-Seidel with one sweep per block.
    HybridJgs,
    /// Asynchronous Gauss-Seidel (hybrid JGS executed asynchronously).
    AsyncGs,
}

impl SmootherKind {
    /// Short name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SmootherKind::WJacobi { .. } => "w-Jacobi",
            SmootherKind::L1Jacobi => "l1-Jacobi",
            SmootherKind::HybridJgs => "hybrid JGS",
            SmootherKind::AsyncGs => "async GS",
        }
    }

    /// Whether this smoother runs block Gauss-Seidel sweeps (hybrid/async).
    pub fn is_block_gs(&self) -> bool {
        matches!(self, SmootherKind::HybridJgs | SmootherKind::AsyncGs)
    }
}

/// A smoother bound to one level's matrix: precomputed weights and block
/// layout.
#[derive(Clone, Debug)]
pub struct LevelSmoother {
    kind: SmootherKind,
    /// `M⁻¹` diagonal for the Jacobi variants (`ω/a_ii` or `1/Σ|a_ij|`);
    /// `1/a_ii` for the GS variants.
    weight: Vec<f64>,
    /// Raw diagonal (for the symmetrized application).
    diag: Vec<f64>,
    /// Contiguous row blocks, one per (modelled) thread.
    blocks: Vec<std::ops::Range<usize>>,
}

impl LevelSmoother {
    /// Builds a smoother for matrix `a` with `nblocks` thread blocks
    /// (relevant for the GS variants; ignored by the Jacobi variants).
    pub fn new(a: &Csr, kind: SmootherKind, nblocks: usize) -> Self {
        Self::with_diag(a, &a.diag(), kind, nblocks)
    }

    /// As [`LevelSmoother::new`], but reusing a precomputed main diagonal of
    /// `a` — hierarchies cache one per level, so per-solve smoother
    /// construction stops re-searching the matrix.
    pub fn with_diag(a: &Csr, diag: &[f64], kind: SmootherKind, nblocks: usize) -> Self {
        let n = a.nrows();
        assert_eq!(diag.len(), n);
        let weight: Vec<f64> = match kind {
            SmootherKind::WJacobi { omega } => {
                diag.iter().map(|&d| if d != 0.0 { omega / d } else { 0.0 }).collect()
            }
            SmootherKind::L1Jacobi => {
                a.l1_row_norms().iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect()
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                diag.iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect()
            }
        };
        let nb = nblocks.max(1).min(n.max(1));
        let blocks = (0..nb).map(|b| chunk_range(n, nb, b)).collect();
        LevelSmoother { kind, weight, diag: diag.to_vec(), blocks }
    }

    /// The smoother kind.
    pub fn kind(&self) -> SmootherKind {
        self.kind
    }

    /// The block ranges (one per modelled thread).
    pub fn blocks(&self) -> &[std::ops::Range<usize>] {
        &self.blocks
    }

    /// One sweep from a zero initial guess: `e = Λ r` (sequential).
    pub fn apply_zero(&self, a: &Csr, r: &[f64], e: &mut [f64]) {
        self.apply_zero_op(Kernel::Csr(a), r, e);
    }

    /// [`Self::apply_zero`] through a [`Kernel`] handle. The Gauss-Seidel
    /// variants always sweep the scalar CSR rows (their forward solves are
    /// inherently row-serial); results are bit-identical either way.
    pub fn apply_zero_op(&self, a: Kernel<'_>, r: &[f64], e: &mut [f64]) {
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                for i in 0..r.len() {
                    e[i] = self.weight[i] * r[i];
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                for b in 0..self.blocks.len() {
                    self.apply_zero_block(a.csr(), r, e, b);
                }
            }
        }
    }

    /// One block of `apply_zero` (GS variants): forward solve with the block
    /// lower triangle, zero initial guess. Rows outside `block` are not
    /// touched and treated as zero.
    pub fn apply_zero_block(&self, a: &Csr, r: &[f64], e: &mut [f64], block: usize) {
        let range = self.blocks[block].clone();
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                for i in range {
                    e[i] = self.weight[i] * r[i];
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                let start = range.start;
                for i in range {
                    let (cols, vals) = a.row(i);
                    let mut acc = r[i];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let ju = j as usize;
                        if ju >= start && ju < i {
                            acc -= v * e[ju];
                        }
                    }
                    e[i] = acc * self.weight[i];
                }
            }
        }
    }

    /// One in-place relaxation `x ← x + M⁻¹ (b − A x)` (sequential).
    ///
    /// `buf` must have length `n`; it holds the residual (Jacobi) or the
    /// sweep-start iterate (hybrid JGS, where off-block values are read from
    /// the start of the sweep, modelling concurrent block execution).
    pub fn relax(&self, a: &Csr, b: &[f64], x: &mut [f64], buf: &mut [f64]) {
        self.relax_op(Kernel::Csr(a), b, x, buf);
    }

    /// [`Self::relax`] through a [`Kernel`] handle: the Jacobi variants'
    /// residual SpMV dispatches to the blocked kernel when one is installed
    /// (bit-identical by construction); the Gauss-Seidel sweeps stay on the
    /// scalar CSR rows.
    pub fn relax_op(&self, a: Kernel<'_>, b: &[f64], x: &mut [f64], buf: &mut [f64]) {
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                a.residual(b, x, buf);
                for i in 0..x.len() {
                    x[i] += self.weight[i] * buf[i];
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                let a = a.csr();
                buf.copy_from_slice(x);
                for range in &self.blocks {
                    let start = range.start;
                    let end = range.end;
                    for i in range.clone() {
                        let (cols, vals) = a.row(i);
                        let mut acc = b[i];
                        for (&j, &v) in cols.iter().zip(vals) {
                            let ju = j as usize;
                            // In-block, already-relaxed rows read the new
                            // value; everything else reads the sweep-start
                            // value.
                            if ju >= start && ju < end && ju < i {
                                acc -= v * x[ju];
                            } else if ju != i {
                                acc -= v * buf[ju];
                            }
                        }
                        x[i] = acc * self.weight[i];
                    }
                }
            }
        }
    }

    /// Multi-RHS [`Self::apply_zero`]: one zero-guess sweep per column of the
    /// `nrhs`-column block `r` into `e` (column-major; column `c` occupies
    /// `[c·n, (c+1)·n)`).
    ///
    /// Each column relaxes in exactly the single-RHS order — the GS forward
    /// solves share each row's `(cols, vals)` slices across columns but keep
    /// per-column accumulators — so column `c` is bit-identical to
    /// `apply_zero` on that column alone.
    pub fn apply_zero_multi(&self, a: &Csr, nrhs: usize, r: &[f64], e: &mut [f64]) {
        let n = self.weight.len();
        debug_assert_eq!(r.len(), n * nrhs);
        debug_assert_eq!(e.len(), n * nrhs);
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                for c in 0..nrhs {
                    let base = c * n;
                    for i in 0..n {
                        e[base + i] = self.weight[i] * r[base + i];
                    }
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                for range in &self.blocks {
                    let start = range.start;
                    for i in range.clone() {
                        let (cols, vals) = a.row(i);
                        for c in 0..nrhs {
                            let base = c * n;
                            let mut acc = r[base + i];
                            for (&j, &v) in cols.iter().zip(vals) {
                                let ju = j as usize;
                                if ju >= start && ju < i {
                                    acc -= v * e[base + ju];
                                }
                            }
                            e[base + i] = acc * self.weight[i];
                        }
                    }
                }
            }
        }
    }

    /// Multi-RHS [`Self::relax`]: one in-place relaxation per column of the
    /// `nrhs`-column blocks `b`/`x` (layout as in [`Self::apply_zero_multi`]).
    /// `buf` must have length `n · nrhs`.
    ///
    /// Column `c` is bit-identical to `relax` on that column alone: the
    /// Jacobi variants compute the full blocked residual first (per-column
    /// `dot4` order) and then update, and the GS variants read sweep-start
    /// values from the per-column snapshot exactly as the single-RHS kernel
    /// does.
    pub fn relax_multi(&self, a: &Csr, nrhs: usize, b: &[f64], x: &mut [f64], buf: &mut [f64]) {
        let n = self.weight.len();
        debug_assert_eq!(b.len(), n * nrhs);
        debug_assert_eq!(x.len(), n * nrhs);
        debug_assert_eq!(buf.len(), n * nrhs);
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                a.residual_block(nrhs, b, x, buf);
                for c in 0..nrhs {
                    let base = c * n;
                    for i in 0..n {
                        x[base + i] += self.weight[i] * buf[base + i];
                    }
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                buf.copy_from_slice(x);
                for range in &self.blocks {
                    let start = range.start;
                    let end = range.end;
                    for i in range.clone() {
                        let (cols, vals) = a.row(i);
                        for c in 0..nrhs {
                            let base = c * n;
                            let mut acc = b[base + i];
                            for (&j, &v) in cols.iter().zip(vals) {
                                let ju = j as usize;
                                if ju >= start && ju < end && ju < i {
                                    acc -= v * x[base + ju];
                                } else if ju != i {
                                    acc -= v * buf[base + ju];
                                }
                            }
                            x[base + i] = acc * self.weight[i];
                        }
                    }
                }
            }
        }
    }

    /// `M⁻¹` diagonal weights (`ω/a_ii`, `1/Σ|a_ij|`, or `1/a_ii`).
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// The diagonal of the smoothing matrix `M` at row `i`.
    pub fn m_diagonal(&self, i: usize) -> f64 {
        self.m_diag(i)
    }

    /// [`Self::apply_zero_range`] through a [`Kernel`] handle. Both branches
    /// are row-local (diagonal scaling or a block-triangular solve), so this
    /// always runs on the scalar CSR rows; it exists so kernel-dispatching
    /// callers need not unwrap the handle themselves.
    pub fn apply_zero_range_op(
        &self,
        a: Kernel<'_>,
        r: &[f64],
        e_block: &mut [f64],
        range: std::ops::Range<usize>,
    ) {
        self.apply_zero_range(a.csr(), r, e_block, range);
    }

    /// Team-parallel variant of [`Self::apply_zero_block`] writing into the
    /// caller's *block-local* slice `e_block` (`e_block.len() == range.len()`,
    /// holding rows `range`). For the GS variants, `range` must be one of the
    /// smoother's block ranges so the forward solve stays inside the slice.
    pub fn apply_zero_range(
        &self,
        a: &Csr,
        r: &[f64],
        e_block: &mut [f64],
        range: std::ops::Range<usize>,
    ) {
        debug_assert_eq!(e_block.len(), range.len());
        let start = range.start;
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                for i in range {
                    e_block[i - start] = self.weight[i] * r[i];
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                for i in range {
                    let (cols, vals) = a.row(i);
                    let mut acc = r[i];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let ju = j as usize;
                        if ju >= start && ju < i {
                            acc -= v * e_block[ju - start];
                        }
                    }
                    e_block[i - start] = acc * self.weight[i];
                }
            }
        }
    }

    /// Team-parallel in-place relaxation over one block: rows `range` of the
    /// new iterate are written into `x_block` (block-local slice), reading
    /// already-relaxed in-block values from `x_block` and everything else
    /// from the sweep-start snapshot `x_old`.
    pub fn relax_range(
        &self,
        a: &Csr,
        b: &[f64],
        x_block: &mut [f64],
        x_old: &[f64],
        range: std::ops::Range<usize>,
    ) {
        self.relax_range_op(Kernel::Csr(a), b, x_block, x_old, range);
    }

    /// [`Self::relax_range`] through a [`Kernel`] handle: the Jacobi
    /// variants' per-row products dispatch to the blocked kernel when one is
    /// installed (bit-identical); the Gauss-Seidel sweeps stay on CSR rows.
    pub fn relax_range_op(
        &self,
        a: Kernel<'_>,
        b: &[f64],
        x_block: &mut [f64],
        x_old: &[f64],
        range: std::ops::Range<usize>,
    ) {
        debug_assert_eq!(x_block.len(), range.len());
        let start = range.start;
        let end = range.end;
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                for i in range {
                    let r_i = b[i] - a.row_dot(i, x_old);
                    x_block[i - start] = x_old[i] + self.weight[i] * r_i;
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                let a = a.csr();
                for i in range {
                    let (cols, vals) = a.row(i);
                    let mut acc = b[i];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let ju = j as usize;
                        if ju >= start && ju < end && ju < i {
                            acc -= v * x_block[ju - start];
                        } else if ju != i {
                            acc -= v * x_old[ju];
                        }
                    }
                    x_block[i - start] = acc * self.weight[i];
                }
            }
        }
    }

    /// The symmetrized Multadd operator `Λ = M̄⁻¹ = M⁻ᵀ (M + Mᵀ − A) M⁻¹`
    /// applied to `r` (Jacobi variants; the GS variants use
    /// [`Self::apply_zero`] as the paper's block-diagonal `Λ̄`).
    ///
    /// `buf` must have length `n`.
    pub fn multadd_lambda(&self, a: &Csr, r: &[f64], y: &mut [f64], buf: &mut [f64]) {
        self.multadd_lambda_op(Kernel::Csr(a), r, y, buf);
    }

    /// [`Self::multadd_lambda`] through a [`Kernel`] handle (the interior
    /// `A t` product dispatches to the blocked kernel when installed).
    pub fn multadd_lambda_op(&self, a: Kernel<'_>, r: &[f64], y: &mut [f64], buf: &mut [f64]) {
        match self.kind {
            SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
                // t = M⁻¹ r.
                for i in 0..r.len() {
                    y[i] = self.weight[i] * r[i];
                }
                // buf = (M + Mᵀ − A) t = 2 M t − A t  (M diagonal).
                a.spmv(y, buf);
                for i in 0..r.len() {
                    let m_ii = self.m_diag(i);
                    buf[i] = 2.0 * m_ii * y[i] - buf[i];
                }
                // y = M⁻ᵀ buf = M⁻¹ buf.
                for i in 0..r.len() {
                    y[i] = self.weight[i] * buf[i];
                }
            }
            SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
                self.apply_zero_op(a, r, y);
            }
        }
    }

    /// The diagonal of the smoothing matrix `M`.
    fn m_diag(&self, i: usize) -> f64 {
        if self.weight[i] != 0.0 {
            1.0 / self.weight[i]
        } else {
            self.diag[i]
        }
    }
}

/// One asynchronous Gauss-Seidel sweep over `block`, reading and writing the
/// shared iterate `x` element-wise (Equation 5): each relaxed value is
/// published immediately, and neighbouring values may be any mix of old and
/// new.
pub fn async_gs_sweep(
    a: &Csr,
    b: &[f64],
    x: &AtomicF64Vec,
    inv_diag: &[f64],
    block: std::ops::Range<usize>,
) {
    for i in block {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        for (&j, &v) in cols.iter().zip(vals) {
            let ju = j as usize;
            if ju != i {
                acc -= v * x.load(ju);
            }
        }
        x.store(i, acc * inv_diag[i]);
    }
}

/// Inverse diagonal of `a` (helper for [`async_gs_sweep`]).
pub fn inv_diag(a: &Csr) -> Vec<f64> {
    a.diag().iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::stencil::laplacian_7pt;
    use asyncmg_sparse::vecops;

    fn residual_norm(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual(b, x, &mut r);
        vecops::norm2(&r)
    }

    fn test_problem() -> (Csr, Vec<f64>) {
        let a = laplacian_7pt(6, 6, 6);
        let b = asyncmg_problems::rhs::random_rhs(a.nrows(), 42);
        (a, b)
    }

    #[test]
    fn all_smoothers_reduce_residual() {
        let (a, b) = test_problem();
        for kind in [
            SmootherKind::WJacobi { omega: 0.9 },
            SmootherKind::L1Jacobi,
            SmootherKind::HybridJgs,
            SmootherKind::AsyncGs,
        ] {
            let sm = LevelSmoother::new(&a, kind, 4);
            let mut x = vec![0.0; a.nrows()];
            let mut buf = vec![0.0; a.nrows()];
            let r0 = residual_norm(&a, &b, &x);
            for _ in 0..10 {
                sm.relax(&a, &b, &mut x, &mut buf);
            }
            let r1 = residual_norm(&a, &b, &x);
            assert!(r1 < 0.5 * r0, "{}: {r0} -> {r1}", kind.name());
        }
    }

    #[test]
    fn jacobi_apply_zero_is_scaled_residual() {
        let (a, b) = test_problem();
        let sm = LevelSmoother::new(&a, SmootherKind::WJacobi { omega: 0.9 }, 1);
        let mut e = vec![0.0; a.nrows()];
        sm.apply_zero(&a, &b, &mut e);
        let d = a.diag();
        for i in 0..a.nrows() {
            assert!((e[i] - 0.9 * b[i] / d[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn l1_weights_are_l1_norms() {
        let (a, _) = test_problem();
        let sm = LevelSmoother::new(&a, SmootherKind::L1Jacobi, 1);
        let l1 = a.l1_row_norms();
        let r = vec![1.0; a.nrows()];
        let mut e = vec![0.0; a.nrows()];
        sm.apply_zero(&a, &r, &mut e);
        for i in 0..a.nrows() {
            assert!((e[i] - 1.0 / l1[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn hybrid_one_block_is_plain_gs_solve() {
        // With a single block, apply_zero solves L e = r exactly.
        let (a, b) = test_problem();
        let sm = LevelSmoother::new(&a, SmootherKind::HybridJgs, 1);
        let mut e = vec![0.0; a.nrows()];
        sm.apply_zero(&a, &b, &mut e);
        // Verify L e = r row by row.
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if (j as usize) <= i {
                    acc += v * e[j as usize];
                }
            }
            assert!((acc - b[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn hybrid_blocks_only_couple_within_block() {
        let (a, b) = test_problem();
        let nb = 8;
        let sm = LevelSmoother::new(&a, SmootherKind::HybridJgs, nb);
        let mut e = vec![0.0; a.nrows()];
        sm.apply_zero(&a, &b, &mut e);
        // Computing each block independently must give the same answer.
        let mut e2 = vec![0.0; a.nrows()];
        for blk in (0..nb).rev() {
            sm.apply_zero_block(&a, &b, &mut e2, blk);
        }
        for i in 0..a.nrows() {
            assert!((e[i] - e2[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetrized_lambda_is_symmetric_operator() {
        // ⟨Λ u, v⟩ = ⟨u, Λ v⟩ for the symmetrized Jacobi operator.
        let (a, _) = test_problem();
        let n = a.nrows();
        let sm = LevelSmoother::new(&a, SmootherKind::WJacobi { omega: 0.9 }, 1);
        let u = asyncmg_problems::rhs::random_rhs(n, 1);
        let v = asyncmg_problems::rhs::random_rhs(n, 2);
        let mut lu = vec![0.0; n];
        let mut lv = vec![0.0; n];
        let mut buf = vec![0.0; n];
        sm.multadd_lambda(&a, &u, &mut lu, &mut buf);
        sm.multadd_lambda(&a, &v, &mut lv, &mut buf);
        let a1 = vecops::dot(&lu, &v);
        let a2 = vecops::dot(&u, &lv);
        assert!((a1 - a2).abs() < 1e-10 * a1.abs().max(1.0));
    }

    #[test]
    fn symmetrized_jacobi_matches_formula() {
        // M̄⁻¹ = ωD⁻¹ (2D/ω − A) ωD⁻¹ for M = D/ω.
        let (a, b) = test_problem();
        let n = a.nrows();
        let omega = 0.7;
        let sm = LevelSmoother::new(&a, SmootherKind::WJacobi { omega }, 1);
        let mut y = vec![0.0; n];
        let mut buf = vec![0.0; n];
        sm.multadd_lambda(&a, &b, &mut y, &mut buf);
        let d = a.diag();
        let t: Vec<f64> = (0..n).map(|i| omega * b[i] / d[i]).collect();
        let mut at = vec![0.0; n];
        a.spmv(&t, &mut at);
        for i in 0..n {
            let u = 2.0 * d[i] / omega * t[i] - at[i];
            let expect = omega / d[i] * u;
            assert!((y[i] - expect).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn async_gs_sequential_matches_hybrid_single_block() {
        let (a, b) = test_problem();
        let n = a.nrows();
        let sm = LevelSmoother::new(&a, SmootherKind::HybridJgs, 1);
        let mut e = vec![0.0; n];
        sm.apply_zero(&a, &b, &mut e);
        let x = AtomicF64Vec::zeros(n);
        async_gs_sweep(&a, &b, &x, &inv_diag(&a), 0..n);
        for i in 0..n {
            assert!((x.load(i) - e[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn async_gs_concurrent_converges() {
        // Concurrent sweeps from several threads still converge (ρ(|G|)<1
        // for this diagonally dominant matrix).
        let (a, b) = test_problem();
        let n = a.nrows();
        let x = AtomicF64Vec::zeros(n);
        let idiag = inv_diag(&a);
        let nthreads = 4;
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let (a, b, x, idiag) = (&a, &b, &x, &idiag);
                s.spawn(move || {
                    let block = chunk_range(n, nthreads, t);
                    for _ in 0..50 {
                        async_gs_sweep(a, b, x, idiag, block.clone());
                    }
                });
            }
        });
        let xv = x.to_vec();
        let rn = residual_norm(&a, &b, &xv);
        let r0 = vecops::norm2(&b);
        // The OS may serialise the threads completely (e.g. on one core), in
        // which case the run degenerates to a single pass of exact-block
        // Gauss-Seidel — still a solid reduction, but not full convergence.
        assert!(rn < 0.5 * r0, "residual {rn} vs {r0}");
    }

    #[test]
    fn relax_fixed_point_is_solution() {
        // If x solves Ax=b, relax leaves it unchanged.
        let (a, _) = test_problem();
        let n = a.nrows();
        let xs = asyncmg_problems::rhs::random_rhs(n, 9);
        let mut b = vec![0.0; n];
        a.spmv(&xs, &mut b);
        for kind in
            [SmootherKind::WJacobi { omega: 0.9 }, SmootherKind::L1Jacobi, SmootherKind::HybridJgs]
        {
            let sm = LevelSmoother::new(&a, kind, 3);
            let mut x = xs.clone();
            let mut buf = vec![0.0; n];
            sm.relax(&a, &b, &mut x, &mut buf);
            for i in 0..n {
                assert!((x[i] - xs[i]).abs() < 1e-10, "{} row {i}", kind.name());
            }
        }
    }

    #[test]
    fn apply_zero_range_matches_blocked_apply() {
        let (a, b) = test_problem();
        let nb = 4;
        let sm = LevelSmoother::new(&a, SmootherKind::HybridJgs, nb);
        let mut e = vec![0.0; a.nrows()];
        sm.apply_zero(&a, &b, &mut e);
        for blk in 0..nb {
            let range = sm.blocks()[blk].clone();
            let mut local = vec![0.0; range.len()];
            sm.apply_zero_range(&a, &b, &mut local, range.clone());
            for (off, i) in range.enumerate() {
                assert!((local[off] - e[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn relax_range_matches_relax() {
        let (a, b) = test_problem();
        let n = a.nrows();
        for kind in [SmootherKind::WJacobi { omega: 0.8 }, SmootherKind::HybridJgs] {
            let nb = 3;
            let sm = LevelSmoother::new(&a, kind, nb);
            let x0 = asyncmg_problems::rhs::random_rhs(n, 6);
            let mut x_seq = x0.clone();
            let mut buf = vec![0.0; n];
            sm.relax(&a, &b, &mut x_seq, &mut buf);
            // Ranged version: every block against the x0 snapshot.
            let mut x_par = x0.clone();
            for blk in 0..nb {
                let range = sm.blocks()[blk].clone();
                let mut local = vec![0.0; range.len()];
                local.copy_from_slice(&x0[range.clone()]);
                sm.relax_range(&a, &b, &mut local, &x0, range.clone());
                x_par[range.clone()].copy_from_slice(&local);
            }
            for i in 0..n {
                assert!((x_seq[i] - x_par[i]).abs() < 1e-13, "{} row {i}", kind.name());
            }
        }
    }

    #[test]
    fn apply_zero_multi_matches_per_column_bitwise() {
        let (a, _) = test_problem();
        let n = a.nrows();
        let nrhs = 3;
        let mut r = Vec::with_capacity(n * nrhs);
        for c in 0..nrhs {
            r.extend(asyncmg_problems::rhs::random_rhs(n, 100 + c as u64));
        }
        for kind in [
            SmootherKind::WJacobi { omega: 0.9 },
            SmootherKind::L1Jacobi,
            SmootherKind::HybridJgs,
            SmootherKind::AsyncGs,
        ] {
            let sm = LevelSmoother::new(&a, kind, 4);
            let mut e = vec![0.0; n * nrhs];
            sm.apply_zero_multi(&a, nrhs, &r, &mut e);
            for c in 0..nrhs {
                let mut solo = vec![0.0; n];
                sm.apply_zero(&a, &r[c * n..(c + 1) * n], &mut solo);
                for i in 0..n {
                    assert_eq!(
                        e[c * n + i].to_bits(),
                        solo[i].to_bits(),
                        "{} col {c} row {i}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn relax_multi_matches_per_column_bitwise() {
        let (a, _) = test_problem();
        let n = a.nrows();
        let nrhs = 4;
        let mut b = Vec::with_capacity(n * nrhs);
        let mut x0 = Vec::with_capacity(n * nrhs);
        for c in 0..nrhs {
            b.extend(asyncmg_problems::rhs::random_rhs(n, 200 + c as u64));
            x0.extend(asyncmg_problems::rhs::random_rhs(n, 300 + c as u64));
        }
        for kind in [
            SmootherKind::WJacobi { omega: 0.8 },
            SmootherKind::L1Jacobi,
            SmootherKind::HybridJgs,
            SmootherKind::AsyncGs,
        ] {
            let sm = LevelSmoother::new(&a, kind, 3);
            let mut x = x0.clone();
            let mut buf = vec![0.0; n * nrhs];
            // Two sweeps so the second starts from a multi-updated iterate.
            sm.relax_multi(&a, nrhs, &b, &mut x, &mut buf);
            sm.relax_multi(&a, nrhs, &b, &mut x, &mut buf);
            for c in 0..nrhs {
                let mut solo: Vec<f64> = x0[c * n..(c + 1) * n].to_vec();
                let mut sbuf = vec![0.0; n];
                sm.relax(&a, &b[c * n..(c + 1) * n], &mut solo, &mut sbuf);
                sm.relax(&a, &b[c * n..(c + 1) * n], &mut solo, &mut sbuf);
                for i in 0..n {
                    assert_eq!(
                        x[c * n + i].to_bits(),
                        solo[i].to_bits(),
                        "{} col {c} row {i}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SmootherKind::WJacobi { omega: 0.9 }.name(), "w-Jacobi");
        assert_eq!(SmootherKind::L1Jacobi.name(), "l1-Jacobi");
        assert_eq!(SmootherKind::HybridJgs.name(), "hybrid JGS");
        assert_eq!(SmootherKind::AsyncGs.name(), "async GS");
        assert!(SmootherKind::AsyncGs.is_block_gs());
        assert!(!SmootherKind::L1Jacobi.is_block_gs());
    }
}
