//! Chaotic relaxation: standalone asynchronous basic iterative methods
//! (Section II.C; Chazan & Miranker 1969).
//!
//! These are the methods asynchronous-iteration research classically
//! studied, included both as the historical baseline the paper improves on
//! and to validate the convergence condition `ρ(|G|) < 1` of Equation 5.

use asyncmg_sparse::{vecops, AtomicF64Vec, Csr};
use asyncmg_threads::chunk_range;

/// Estimates the spectral radius of `|G|`, the element-wise absolute value
/// of the weighted-Jacobi iteration matrix `G = I − ω D⁻¹ A`, by power
/// iteration (valid because `|G|` is non-negative, so the dominant
/// eigenvector is non-negative).
pub fn rho_abs_jacobi(a: &Csr, omega: f64, iters: usize) -> f64 {
    let n = a.nrows();
    let w: Vec<f64> = a.diag().iter().map(|&d| if d != 0.0 { omega / d } else { 0.0 }).collect();
    let mut x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut rho = 0.0;
    for _ in 0..iters {
        // y = |G| x, row by row: |G|_ij = |δ_ij − w_i a_ij|.
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut acc = 0.0;
            let mut saw_diag = false;
            for (&j, &v) in cols.iter().zip(vals) {
                let ju = j as usize;
                let g = if ju == i {
                    saw_diag = true;
                    1.0 - w[i] * v
                } else {
                    -w[i] * v
                };
                acc += g.abs() * x[ju];
            }
            if !saw_diag {
                acc += x[i];
            }
            y[i] = acc;
        }
        rho = vecops::norm2(&y) / vecops::norm2(&x).max(1e-300);
        let scale = 1.0 / vecops::norm2(&y).max(1e-300);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi * scale;
        }
    }
    rho
}

/// Result of a chaotic-relaxation solve.
#[derive(Clone, Debug)]
pub struct ChaoticResult {
    /// The approximation.
    pub x: Vec<f64>,
    /// Final relative residual.
    pub relres: f64,
    /// Total relaxations performed (all threads).
    pub relaxations: usize,
}

/// Synchronous weighted-Jacobi solver (the `t`-superscripted iteration of
/// Equation 3), for baseline comparisons.
pub fn jacobi_solve(a: &Csr, b: &[f64], omega: f64, sweeps: usize) -> ChaoticResult {
    let n = a.nrows();
    let w: Vec<f64> = a.diag().iter().map(|&d| if d != 0.0 { omega / d } else { 0.0 }).collect();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    for _ in 0..sweeps {
        for i in 0..n {
            x[i] += w[i] * r[i];
        }
        a.residual(b, &x, &mut r);
    }
    let relres = vecops::rel_norm(&r, b);
    ChaoticResult { x, relres, relaxations: sweeps * n }
}

/// Asynchronous weighted-Jacobi solver (Equation 5): each thread owns a
/// block of rows and relaxes it repeatedly, reading the shared iterate
/// without any synchronisation and publishing each update immediately.
/// Converges whenever `ρ(|G|) < 1`.
pub fn async_jacobi_solve(
    a: &Csr,
    b: &[f64],
    omega: f64,
    sweeps_per_thread: usize,
    n_threads: usize,
) -> ChaoticResult {
    let n = a.nrows();
    let w: Vec<f64> = a.diag().iter().map(|&d| if d != 0.0 { omega / d } else { 0.0 }).collect();
    let x = AtomicF64Vec::zeros(n);
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let (x, w, b) = (&x, &w, b);
            let block = chunk_range(n, n_threads, t);
            scope.spawn(move || {
                for _ in 0..sweeps_per_thread {
                    for i in block.clone() {
                        // x_i ← x_i + w_i (b_i − Σ_j a_ij x_j), reading the
                        // freshest available x values.
                        let acc = b[i] - a.row_dot_atomic(i, x);
                        x.store(i, x.load(i) + w[i] * acc);
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    let xv = x.to_vec();
    let mut r = vec![0.0; n];
    a.residual(b, &xv, &mut r);
    let relres = vecops::rel_norm(&r, b);
    ChaoticResult { x: xv, relres, relaxations: sweeps_per_thread * n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

    #[test]
    fn rho_abs_below_one_for_dd_laplacian() {
        // ω-Jacobi on a strictly diagonally dominant M-matrix satisfies
        // ρ(|G|) < 1 for ω ∈ (0, 1].
        let a = laplacian_7pt(6, 6, 6);
        let rho = rho_abs_jacobi(&a, 0.9, 100);
        assert!(rho < 1.0, "rho {rho}");
        assert!(rho > 0.5, "rho suspiciously small: {rho}");
    }

    #[test]
    fn rho_abs_exceeds_one_for_overrelaxed() {
        // Over-relaxation (ω = 2) breaks the asynchronous condition.
        let a = laplacian_7pt(5, 5, 5);
        let rho = rho_abs_jacobi(&a, 2.0, 100);
        assert!(rho > 1.0, "rho {rho}");
    }

    #[test]
    fn sync_jacobi_converges() {
        let a = laplacian_7pt(5, 5, 5);
        let b = random_rhs(a.nrows(), 1);
        let res = jacobi_solve(&a, &b, 0.9, 400);
        assert!(res.relres < 1e-3, "relres {}", res.relres);
    }

    #[test]
    fn async_jacobi_converges_when_rho_below_one() {
        let a = laplacian_7pt(5, 5, 5);
        assert!(rho_abs_jacobi(&a, 0.9, 50) < 1.0);
        let b = random_rhs(a.nrows(), 2);
        let res = async_jacobi_solve(&a, &b, 0.9, 400, 4);
        assert!(res.relres < 1e-2, "relres {}", res.relres);
    }

    #[test]
    fn async_matches_sync_single_thread() {
        // One thread and per-sweep residual refresh ≙ Gauss-Seidel-flavoured
        // Jacobi; with one thread the async path is deterministic and at
        // least as accurate as plain Jacobi for this matrix.
        let a = laplacian_7pt(4, 4, 4);
        let b = random_rhs(a.nrows(), 3);
        let sync = jacobi_solve(&a, &b, 0.9, 100);
        let asy = async_jacobi_solve(&a, &b, 0.9, 100, 1);
        assert!(asy.relres <= sync.relres * 1.5, "async {} sync {}", asy.relres, sync.relres);
    }
}
