//! Shared helpers for the asyncmg examples and integration tests.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::TestSet;

/// Builds a ready-to-solve [`MgSetup`] for one of the paper's test sets at
/// "grid length" `n` with default (paper-like) options.
pub fn paper_setup(set: TestSet, n: usize) -> MgSetup {
    let a = set.matrix(n);
    let omega = match set {
        TestSet::SevenPt | TestSet::TwentySevenPt => 0.9,
        _ => 0.5, // Table I uses ω = .5 for the MFEM sets
    };
    let num_functions = if set == TestSet::Elasticity { 3 } else { 1 };
    let h = build_hierarchy(a, &AmgOptions { num_functions, ..Default::default() });
    let mut opts = MgOptions::default();
    opts.smoother = asyncmg_smoothers::SmootherKind::WJacobi { omega };
    opts.interp_omega = omega;
    MgSetup::new(h, opts)
}

/// Formats a relative residual in the compact scientific style used by the
/// example binaries.
pub fn sci(v: f64) -> String {
    format!("{v:9.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_builds_multilevel() {
        let s = paper_setup(TestSet::SevenPt, 8);
        assert!(s.n_levels() >= 2);
        assert_eq!(s.n(), 512);
    }

    #[test]
    fn sci_formats() {
        assert!(sci(1.0e-9).contains("e-9"));
    }
}
