//! Mapping a cube mesh onto a ball.
//!
//! The paper's "MFEM Laplace" test set discretises a sphere with a NURBS
//! mesh. We reproduce the essential matrix properties (irregular element
//! shapes, non-constant stencil weights, curved boundary) by smoothly
//! mapping the vertices of a cube mesh onto the unit ball and assembling
//! plain finite elements on the deformed mesh.

/// Maps a point of the cube `[-1, 1]³` onto the unit ball.
///
/// Uses the volume-preserving-ish "spherified cube" map
/// `x' = x √(1 − y²/2 − z²/2 + y²z²/3)` (and cyclic permutations), which is
/// smooth, bijective on the cube, sends the cube surface to the unit sphere,
/// and keeps interior elements well-shaped.
pub fn map_cube_to_ball(p: [f64; 3]) -> [f64; 3] {
    let [x, y, z] = p;
    let (x2, y2, z2) = (x * x, y * y, z * z);
    [
        x * (1.0 - y2 / 2.0 - z2 / 2.0 + y2 * z2 / 3.0).max(0.0).sqrt(),
        y * (1.0 - z2 / 2.0 - x2 / 2.0 + z2 * x2 / 3.0).max(0.0).sqrt(),
        z * (1.0 - x2 / 2.0 - y2 / 2.0 + x2 * y2 / 3.0).max(0.0).sqrt(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(p: [f64; 3]) -> f64 {
        (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
    }

    #[test]
    fn center_fixed() {
        assert_eq!(map_cube_to_ball([0.0, 0.0, 0.0]), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn surface_maps_to_sphere() {
        for &p in &[
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [-1.0, 0.5, -0.25],
            [0.3, -1.0, 0.9],
            [0.0, 0.0, 1.0],
        ] {
            assert!(p.iter().any(|c: &f64| c.abs() == 1.0));
            let q = map_cube_to_ball(p);
            assert!((norm(q) - 1.0).abs() < 1e-12, "{p:?} -> {q:?}");
        }
    }

    #[test]
    fn interior_stays_interior() {
        for &p in &[[0.5, 0.5, 0.5], [-0.9, 0.1, 0.3], [0.0, 0.7, 0.0]] {
            let q = map_cube_to_ball(p);
            assert!(norm(q) < 1.0, "{p:?} -> {q:?}");
        }
    }

    #[test]
    fn axes_are_preserved() {
        // Points on a coordinate axis are only scaled.
        let q = map_cube_to_ball([0.5, 0.0, 0.0]);
        assert_eq!(q[1], 0.0);
        assert_eq!(q[2], 0.0);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_is_odd() {
        let p = [0.4, -0.7, 0.2];
        let q = map_cube_to_ball(p);
        let m = map_cube_to_ball([-p[0], -p[1], -p[2]]);
        for d in 0..3 {
            assert!((q[d] + m[d]).abs() < 1e-14);
        }
    }
}
