//! Hexahedral-element meshes of box domains (the elasticity beam).

use crate::grid::StructuredGrid;

/// A mesh of 8-node hexahedral elements filling a box `[0,Lx]×[0,Ly]×[0,Lz]`.
#[derive(Clone, Debug)]
pub struct HexMesh {
    /// The underlying vertex grid.
    pub grid: StructuredGrid,
    /// Vertex coordinates.
    pub vertices: Vec<[f64; 3]>,
    /// Elements as 8 vertex ids (x fastest, then y, then z — matching
    /// [`StructuredGrid::cell_vertices`]).
    pub elements: Vec<[usize; 8]>,
    /// Physical box dimensions.
    pub dims: [f64; 3],
}

impl HexMesh {
    /// A beam of `ex × ey × ez` *elements* with physical dimensions `dims`.
    ///
    /// The long axis is x (the cantilever direction of the paper's
    /// multi-material beam problem).
    pub fn beam(ex: usize, ey: usize, ez: usize, dims: [f64; 3]) -> Self {
        assert!(ex > 0 && ey > 0 && ez > 0);
        let grid = StructuredGrid::new(ex + 1, ey + 1, ez + 1);
        let mut vertices = Vec::with_capacity(grid.n_vertices());
        for id in 0..grid.n_vertices() {
            let p = grid.unit_position(id);
            vertices.push([p[0] * dims[0], p[1] * dims[1], p[2] * dims[2]]);
        }
        let mut elements = Vec::with_capacity(grid.n_cells());
        for ck in 0..ez {
            for cj in 0..ey {
                for ci in 0..ex {
                    elements.push(grid.cell_vertices(ci, cj, ck));
                }
            }
        }
        HexMesh { grid, vertices, elements, dims }
    }

    /// Number of vertices (nodes).
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of elements.
    pub fn n_elements(&self) -> usize {
        self.elements.len()
    }

    /// Whether node `id` lies on the clamped face `x = 0`.
    pub fn on_clamped_face(&self, id: usize) -> bool {
        let (i, _, _) = self.grid.coords(id);
        i == 0
    }

    /// The element centroid, used to pick the material of a multi-material
    /// beam.
    pub fn element_centroid(&self, e: usize) -> [f64; 3] {
        let mut c = [0.0; 3];
        for &v in &self.elements[e] {
            for d in 0..3 {
                c[d] += self.vertices[v][d];
            }
        }
        for d in &mut c {
            *d /= 8.0;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beam_counts() {
        let m = HexMesh::beam(4, 2, 2, [4.0, 1.0, 1.0]);
        assert_eq!(m.n_vertices(), 5 * 3 * 3);
        assert_eq!(m.n_elements(), 16);
    }

    #[test]
    fn clamped_face_nodes() {
        let m = HexMesh::beam(3, 1, 1, [3.0, 1.0, 1.0]);
        let clamped = (0..m.n_vertices()).filter(|&id| m.on_clamped_face(id)).count();
        assert_eq!(clamped, 4); // 2×2 nodes at x = 0
    }

    #[test]
    fn coordinates_scale_with_dims() {
        let m = HexMesh::beam(2, 2, 2, [8.0, 1.0, 2.0]);
        let last = m.vertices[m.n_vertices() - 1];
        assert_eq!(last, [8.0, 1.0, 2.0]);
    }

    #[test]
    fn centroid_inside_element() {
        let m = HexMesh::beam(2, 1, 1, [2.0, 1.0, 1.0]);
        let c = m.element_centroid(0);
        assert!((c[0] - 0.5).abs() < 1e-14);
        assert!((c[1] - 0.5).abs() < 1e-14);
        assert!((c[2] - 0.5).abs() < 1e-14);
    }
}
