//! Structured 3-D meshes for the asyncmg test problems.
//!
//! The paper's four test sets come from finite-difference stencils on a cube
//! and from MFEM discretisations (a NURBS ball and a cantilever beam). This
//! crate provides the mesh layer for the from-scratch equivalents:
//!
//! * [`StructuredGrid`] — an `nx × ny × nz` vertex grid with lexicographic
//!   numbering (finite-difference stencils, hexahedral elements),
//! * [`TetMesh`] — a tetrahedral mesh obtained by six-way (Kuhn) subdivision
//!   of every hexahedral cell, optionally with vertices mapped onto a ball
//!   (the substitute for the paper's NURBS-sphere mesh),
//! * [`HexMesh`] — a hexahedral-element mesh of a beam domain used by the
//!   elasticity problem.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod ball;
pub mod grid;
pub mod hex;
pub mod tet;

pub use ball::map_cube_to_ball;
pub use grid::StructuredGrid;
pub use hex::HexMesh;
pub use tet::TetMesh;
