//! Structured vertex grids with lexicographic numbering.

/// An `nx × ny × nz` grid of vertices, numbered `x`-fastest:
/// `id = i + nx * (j + ny * k)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StructuredGrid {
    /// Vertices along x.
    pub nx: usize,
    /// Vertices along y.
    pub ny: usize,
    /// Vertices along z.
    pub nz: usize,
}

impl StructuredGrid {
    /// A cube grid with `n` vertices per side (the paper's "grid length").
    pub fn cube(n: usize) -> Self {
        StructuredGrid { nx: n, ny: n, nz: n }
    }

    /// A general box grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        StructuredGrid { nx, ny, nz }
    }

    /// Total number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of hexahedral cells (`(nx−1)(ny−1)(nz−1)`).
    pub fn n_cells(&self) -> usize {
        (self.nx - 1) * (self.ny - 1) * (self.nz - 1)
    }

    /// Vertex id at `(i, j, k)`.
    #[inline]
    pub fn vertex(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// The `(i, j, k)` coordinates of vertex `id`.
    #[inline]
    pub fn coords(&self, id: usize) -> (usize, usize, usize) {
        let i = id % self.nx;
        let j = (id / self.nx) % self.ny;
        let k = id / (self.nx * self.ny);
        (i, j, k)
    }

    /// Whether vertex `id` lies on the boundary of the box.
    pub fn is_boundary(&self, id: usize) -> bool {
        let (i, j, k) = self.coords(id);
        i == 0 || j == 0 || k == 0 || i == self.nx - 1 || j == self.ny - 1 || k == self.nz - 1
    }

    /// The unit-cube position of vertex `id`, in `[0, 1]³`
    /// (degenerate axes map to `0.5`).
    pub fn unit_position(&self, id: usize) -> [f64; 3] {
        let (i, j, k) = self.coords(id);
        let f = |v: usize, n: usize| {
            if n > 1 {
                v as f64 / (n - 1) as f64
            } else {
                0.5
            }
        };
        [f(i, self.nx), f(j, self.ny), f(k, self.nz)]
    }

    /// Iterates over the 8 vertex ids of cell `(ci, cj, ck)` in the
    /// conventional order: `x` fastest, then `y`, then `z`.
    pub fn cell_vertices(&self, ci: usize, cj: usize, ck: usize) -> [usize; 8] {
        debug_assert!(ci + 1 < self.nx && cj + 1 < self.ny && ck + 1 < self.nz);
        [
            self.vertex(ci, cj, ck),
            self.vertex(ci + 1, cj, ck),
            self.vertex(ci, cj + 1, ck),
            self.vertex(ci + 1, cj + 1, ck),
            self.vertex(ci, cj, ck + 1),
            self.vertex(ci + 1, cj, ck + 1),
            self.vertex(ci, cj + 1, ck + 1),
            self.vertex(ci + 1, cj + 1, ck + 1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_roundtrip() {
        let g = StructuredGrid::new(4, 5, 6);
        for k in 0..6 {
            for j in 0..5 {
                for i in 0..4 {
                    let id = g.vertex(i, j, k);
                    assert_eq!(g.coords(id), (i, j, k));
                }
            }
        }
        assert_eq!(g.n_vertices(), 120);
        assert_eq!(g.n_cells(), 3 * 4 * 5);
    }

    #[test]
    fn boundary_detection() {
        let g = StructuredGrid::cube(3);
        let interior: Vec<usize> = (0..27).filter(|&id| !g.is_boundary(id)).collect();
        assert_eq!(interior, vec![g.vertex(1, 1, 1)]);
    }

    #[test]
    fn unit_positions_span_cube() {
        let g = StructuredGrid::cube(3);
        assert_eq!(g.unit_position(g.vertex(0, 0, 0)), [0.0, 0.0, 0.0]);
        assert_eq!(g.unit_position(g.vertex(2, 2, 2)), [1.0, 1.0, 1.0]);
        assert_eq!(g.unit_position(g.vertex(1, 1, 1)), [0.5, 0.5, 0.5]);
    }

    #[test]
    fn cell_vertices_are_distinct_and_adjacent() {
        let g = StructuredGrid::cube(3);
        let vs = g.cell_vertices(1, 1, 1);
        let mut sorted = vs;
        sorted.sort_unstable();
        sorted.windows(2).for_each(|w| assert!(w[0] < w[1]));
        assert_eq!(vs[0], g.vertex(1, 1, 1));
        assert_eq!(vs[7], g.vertex(2, 2, 2));
    }

    #[test]
    fn degenerate_axis_position() {
        let g = StructuredGrid::new(3, 1, 3);
        assert_eq!(g.unit_position(g.vertex(0, 0, 0))[1], 0.5);
    }
}
