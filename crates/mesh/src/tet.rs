//! Tetrahedral meshes by Kuhn subdivision of a structured grid.

use crate::ball::map_cube_to_ball;
use crate::grid::StructuredGrid;

/// Local vertex indices (x-fastest bit order: bit0=x, bit1=y, bit2=z) of the
/// six Kuhn tetrahedra of a hexahedral cell. Each tetrahedron follows a
/// monotone lattice path from corner 0 to corner 7, so neighbouring cells'
/// faces match up into a conforming mesh.
pub const KUHN_TETS: [[usize; 4]; 6] =
    [[0, 1, 3, 7], [0, 1, 5, 7], [0, 2, 3, 7], [0, 2, 6, 7], [0, 4, 5, 7], [0, 4, 6, 7]];

/// A conforming tetrahedral mesh.
#[derive(Clone, Debug)]
pub struct TetMesh {
    /// Vertex coordinates.
    pub vertices: Vec<[f64; 3]>,
    /// Tetrahedra as 4 vertex ids each.
    pub tets: Vec<[usize; 4]>,
    /// Whether each vertex lies on the domain boundary.
    pub on_boundary: Vec<bool>,
}

impl TetMesh {
    /// Builds a tet mesh from a structured grid, mapping each vertex's unit
    /// position through `map`.
    pub fn from_grid<F>(grid: StructuredGrid, map: F) -> Self
    where
        F: Fn([f64; 3]) -> [f64; 3],
    {
        let nv = grid.n_vertices();
        let mut vertices = Vec::with_capacity(nv);
        let mut on_boundary = Vec::with_capacity(nv);
        for id in 0..nv {
            vertices.push(map(grid.unit_position(id)));
            on_boundary.push(grid.is_boundary(id));
        }
        let mut tets = Vec::with_capacity(grid.n_cells() * 6);
        for ck in 0..grid.nz - 1 {
            for cj in 0..grid.ny - 1 {
                for ci in 0..grid.nx - 1 {
                    let cell = grid.cell_vertices(ci, cj, ck);
                    for t in &KUHN_TETS {
                        tets.push([cell[t[0]], cell[t[1]], cell[t[2]], cell[t[3]]]);
                    }
                }
            }
        }
        TetMesh { vertices, tets, on_boundary }
    }

    /// A tet mesh of the unit cube `[0, 1]³` with `n` vertices per side.
    pub fn unit_cube(n: usize) -> Self {
        Self::from_grid(StructuredGrid::cube(n), |p| p)
    }

    /// A tet mesh of the unit ball with `n` vertices per side of the
    /// underlying cube (the paper's NURBS-sphere substitute).
    pub fn ball(n: usize) -> Self {
        Self::from_grid(StructuredGrid::cube(n), |p| {
            map_cube_to_ball([2.0 * p[0] - 1.0, 2.0 * p[1] - 1.0, 2.0 * p[2] - 1.0])
        })
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of tetrahedra.
    pub fn n_tets(&self) -> usize {
        self.tets.len()
    }

    /// Signed volume of tetrahedron `t` (×6 is the determinant).
    pub fn tet_volume(&self, t: usize) -> f64 {
        let [a, b, c, d] = self.tets[t];
        let va = self.vertices[a];
        let e1 = sub(self.vertices[b], va);
        let e2 = sub(self.vertices[c], va);
        let e3 = sub(self.vertices[d], va);
        det3(e1, e2, e3) / 6.0
    }

    /// Total mesh volume `Σ |vol(t)|`.
    pub fn total_volume(&self) -> f64 {
        (0..self.n_tets()).map(|t| self.tet_volume(t).abs()).sum()
    }
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn det3(a: [f64; 3], b: [f64; 3], c: [f64; 3]) -> f64 {
    a[0] * (b[1] * c[2] - b[2] * c[1]) - a[1] * (b[0] * c[2] - b[2] * c[0])
        + a[2] * (b[0] * c[1] - b[1] * c[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_mesh_counts() {
        let m = TetMesh::unit_cube(3);
        assert_eq!(m.n_vertices(), 27);
        assert_eq!(m.n_tets(), 8 * 6);
    }

    #[test]
    fn kuhn_tets_tile_the_cell() {
        // Volumes of the 6 tets of a unit cell sum to the cell volume.
        let m = TetMesh::unit_cube(2);
        assert_eq!(m.n_tets(), 6);
        let vol: f64 = (0..6).map(|t| m.tet_volume(t).abs()).sum();
        assert!((vol - 1.0).abs() < 1e-12);
        // No degenerate tets.
        for t in 0..6 {
            assert!(m.tet_volume(t).abs() > 1e-12);
        }
    }

    #[test]
    fn cube_total_volume() {
        let m = TetMesh::unit_cube(5);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ball_total_volume_approaches_sphere() {
        // Volume of the unit ball = 4π/3 ≈ 4.18879; a coarse mapped mesh
        // under-resolves the boundary but should be within a few percent.
        let m = TetMesh::ball(9);
        let v = m.total_volume();
        let exact = 4.0 * std::f64::consts::PI / 3.0;
        assert!((v - exact).abs() / exact < 0.05, "volume {v} vs {exact}");
    }

    #[test]
    fn ball_has_no_degenerate_tets() {
        let m = TetMesh::ball(5);
        for t in 0..m.n_tets() {
            assert!(m.tet_volume(t).abs() > 1e-10, "tet {t} degenerate");
        }
    }

    #[test]
    fn boundary_vertices_on_unit_sphere() {
        let m = TetMesh::ball(5);
        for (v, &b) in m.vertices.iter().zip(&m.on_boundary) {
            let r = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            if b {
                assert!((r - 1.0).abs() < 1e-12);
            } else {
                assert!(r < 1.0);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn cube_mesh_volume_is_exact(n in 2usize..7) {
            let m = TetMesh::unit_cube(n);
            prop_assert!((m.total_volume() - 1.0).abs() < 1e-12);
            prop_assert_eq!(m.n_tets(), (n - 1).pow(3) * 6);
        }

        #[test]
        fn ball_mesh_has_positive_tets_and_bounded_radius(n in 3usize..8) {
            let m = TetMesh::ball(n);
            for t in 0..m.n_tets() {
                prop_assert!(m.tet_volume(t).abs() > 1e-12);
            }
            for v in &m.vertices {
                let r2 = v[0]*v[0] + v[1]*v[1] + v[2]*v[2];
                prop_assert!(r2 <= 1.0 + 1e-12);
            }
        }
    }
}
