//! Offline stand-in for the `criterion` crate.
//!
//! The container cannot reach crates.io, so the workspace's benches link
//! against this minimal harness instead: [`Criterion::bench_function`] warms
//! up, takes `sample_size` timed samples of the closure, and prints
//! min/median/mean per iteration. No statistical analysis, HTML reports, or
//! outlier rejection — enough to compare kernels and track the ≤ 5 %
//! NoopProbe overhead budget by eye or script.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::with_capacity(self.sample_size), target: self.sample_size };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after one warm-up
    /// call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.target {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = grp;
        config = Criterion::default().sample_size(3);
        targets = payload
    }

    #[test]
    fn group_runs() {
        grp();
    }

    #[test]
    fn plain_group_form_compiles() {
        criterion_group!(plain, payload);
        plain();
    }
}
