//! Offline stand-in for the `proptest` crate.
//!
//! The reproduction container cannot reach crates.io, so this crate vendors
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and tuple
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros. No shrinking is performed — a
//! failing case panics with the generating seed so it can be replayed by
//! rerunning the (deterministic) test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising the generators.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-test generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name, so every run generates the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.bits() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u128 + 1;
                lo + (rng.bits() as u128 % span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of `elem` draws.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..=self.size.hi).generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The `prop::` path used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)` is
/// expanded to a test that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                // The closure gives `prop_assume!` an early exit; a failed
                // assertion panics with the case number for replay.
                let run = || $body;
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of {} failed",
                        cfg.cases,
                        stringify!($name)
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($t:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(n in 3usize..9, x in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(
            v in prop::collection::vec((0usize..5, -1.0f64..1.0), 2..10),
            w in collection::vec(0u32..7, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let xs: Vec<u64> = (0..8).map(|_| a.bits()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.bits()).collect();
        assert_eq!(xs, ys);
    }
}
