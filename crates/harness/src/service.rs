//! The service axes of the harness: drive a seeded request mix through a
//! [`SolverService`] on a virtual clock and check every outcome.
//!
//! A [`ServiceAxis`] describes a workload shape — how many requests, over
//! how many distinct matrices, how often a tight deadline rides along, how
//! the submit/dispatch interleaving goes. [`ServiceAxis::run`] derives the
//! concrete mix from a seed with splitmix64, so the whole run — every
//! solution bit, every cache event, every rejection — is a pure function of
//! `(axis, seed)`: the service reads time only from a [`VirtualClock`] the
//! axis advances deterministically. [`check_service`] is the oracle; the
//! fingerprint folds outcomes, the event logs and the stats into one
//! replayable hash.
//!
//! A [`ServiceChaosAxis`] wraps the same mix around a *defended* service
//! and attacks it: a seeded [`ChaosPlan`] corrupts solution columns and
//! poisons cached hierarchies keyed by the dispatch counter, while a
//! [`FaultPlan`] injects crashes and corrupted correction writes into every
//! rescue session. [`check_service_chaos`] adds the conservation oracle on
//! top: every submitted ticket resolves exactly once, no corruption leaks
//! into a completed solution, and the fault-plane stats reconcile with the
//! event logs.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{
    ChaosEvent, ChaosPlan, Rejection, RequestStatus, ResilienceOptions, ServiceOptions,
    SolveRequest, SolverService, Stopped, Ticket, TicketState,
};
use asyncmg_sparse::Csr;
use asyncmg_telemetry::{CacheEvent, ServiceEvent, ServiceStats};
use asyncmg_threads::{Corruption, Fault, FaultPlan, VirtualClock};

use crate::fingerprint::Fnv;
use crate::oracle::Violation;

/// One service-workload configuration of the fuzz matrix.
#[derive(Clone, Copy, Debug)]
pub struct ServiceAxis {
    /// Requests submitted over the run.
    pub n_requests: usize,
    /// Distinct matrices the mix draws from (a pool of anisotropic 7-point
    /// Laplacian sizes).
    pub n_matrices: usize,
    /// Hierarchy-cache capacity — set below `n_matrices` to exercise
    /// eviction.
    pub cache_capacity: usize,
    /// Maximum right-hand sides coalesced per dispatch.
    pub batch_window: usize,
    /// Every `deadline_every`-th request carries a deadline tight enough
    /// that a seeded clock advance can expire it (0 disables deadlines).
    pub deadline_every: usize,
    /// Early-stopping tolerance of every request.
    pub tolerance: f64,
    /// Cycle budget of every request.
    pub t_max: usize,
}

impl Default for ServiceAxis {
    fn default() -> Self {
        ServiceAxis {
            n_requests: 24,
            n_matrices: 3,
            cache_capacity: 2,
            batch_window: 4,
            deadline_every: 5,
            tolerance: 1e-6,
            t_max: 60,
        }
    }
}

impl ServiceAxis {
    /// A filterable label.
    pub fn label(&self) -> String {
        format!(
            "service/r{}m{}c{}w{}",
            self.n_requests, self.n_matrices, self.cache_capacity, self.batch_window
        )
    }

    /// The matrix pool: small anisotropic boxes, distinct per index.
    fn matrices(&self) -> Vec<Arc<Csr>> {
        (0..self.n_matrices).map(|i| Arc::new(laplacian_7pt(4 + i, 4, 4))).collect()
    }

    /// Runs the seeded request mix to completion on an *undefended*
    /// service. Deterministic: same `(self, seed)` ⇒ identical
    /// [`ServiceRun`], fingerprint included.
    pub fn run(&self, seed: u64) -> ServiceRun {
        let opts = ServiceOptions {
            cache_capacity: self.cache_capacity,
            batch_window: self.batch_window,
            queue_capacity: self.n_requests.max(1),
            ..Default::default()
        };
        self.run_with(seed, opts)
    }

    /// Runs the seeded mix against explicitly configured service options
    /// (the chaos axis routes through here with a defended configuration).
    pub fn run_with(&self, seed: u64, opts: ServiceOptions) -> ServiceRun {
        let clock = Arc::new(VirtualClock::new());
        let service = SolverService::with_clock(opts, clock.clone());
        let mats = self.matrices();

        let mut rng = Splitmix(seed);
        let mut tickets: Vec<Ticket> = Vec::with_capacity(self.n_requests);
        let mut deadlined: Vec<u64> = Vec::new();
        for i in 0..self.n_requests {
            let m = &mats[(rng.next() as usize) % mats.len()];
            let mut req = SolveRequest::new(m.clone(), random_rhs(m.nrows(), rng.next()))
                .tolerance(self.tolerance)
                .t_max(self.t_max);
            if self.deadline_every > 0 && i % self.deadline_every == self.deadline_every - 1 {
                // Tight: 1–4 ms; the clock advances 0–2 ms per step below,
                // so some of these expire in queue and some dispatch.
                req = req.deadline(Duration::from_millis(1 + rng.next() % 4));
            }
            let t = service.submit(req).expect("axis sizes the queue to fit the mix");
            if self.deadline_every > 0 && i % self.deadline_every == self.deadline_every - 1 {
                deadlined.push(t.id());
            }
            tickets.push(t);

            // Seeded interleaving: sometimes let time pass, sometimes
            // dispatch a batch mid-stream so cache and queue states vary.
            let step = rng.next();
            clock.advance(Duration::from_millis(step % 3));
            if step.is_multiple_of(4) {
                service.process_batch();
            }
        }
        service.drain();

        let mut outcomes = BTreeMap::new();
        for t in tickets {
            let status = match service.take(t) {
                TicketState::Ready(status) => status,
                other => panic!("ticket {} did not resolve after drain: {other:?}", t.id()),
            };
            // Exactly-once: the outcome was just consumed, so a second
            // claim must see it gone (conservation, not duplication).
            assert_eq!(
                service.take(t),
                TicketState::Claimed,
                "ticket {} resolved more than once",
                t.id()
            );
            outcomes.insert(t.id(), status);
        }
        let events = service.cache_events();
        let service_events = service.service_events();
        let stats = service.stats();
        let fingerprint = fingerprint_service(&outcomes, &events, &service_events, &stats);
        ServiceRun { outcomes, events, service_events, stats, deadlined, fingerprint }
    }
}

/// A defended-service workload: the [`ServiceAxis`] mix plus seeded
/// service-plane chaos and rescue-session fault injection.
#[derive(Clone, Copy, Debug)]
pub struct ServiceChaosAxis {
    /// The underlying request mix.
    pub base: ServiceAxis,
    /// Solution-column corruptions scheduled over the run (seeded dispatch
    /// indices; schedules beyond the last dispatch are no-ops).
    pub n_corruptions: usize,
    /// Cached-hierarchy poisonings scheduled over the run.
    pub n_poisonings: usize,
    /// Consecutive failed dispatches of one fingerprint before its breaker
    /// opens.
    pub breaker_threshold: u32,
    /// Whether rescue sessions run under an injected [`FaultPlan`]
    /// (crash + corrupted correction write + straggler).
    pub with_fault_plan: bool,
    /// Queue high-water mark for overload shedding (None = never shed).
    pub shed_high_water: Option<usize>,
}

impl Default for ServiceChaosAxis {
    fn default() -> Self {
        ServiceChaosAxis {
            base: ServiceAxis { n_requests: 64, deadline_every: 7, ..Default::default() },
            n_corruptions: 5,
            n_poisonings: 3,
            breaker_threshold: 2,
            with_fault_plan: true,
            shed_high_water: None,
        }
    }
}

impl ServiceChaosAxis {
    /// A filterable label.
    pub fn label(&self) -> String {
        format!(
            "service-chaos/r{}x{}p{}b{}",
            self.base.n_requests, self.n_corruptions, self.n_poisonings, self.breaker_threshold
        )
    }

    /// The seeded chaos script: corruption and poisoning events keyed by
    /// dispatch counter, a pure function of `(self, seed)`.
    pub fn chaos_plan(&self, seed: u64) -> ChaosPlan {
        let mut rng = Splitmix(seed ^ 0xc4a5_0515_c4a5_0515);
        // Concentrate the schedule on early dispatches (a window of 64
        // requests dispatches ≥ 16 batches) and low column indices, so most
        // scheduled events actually land instead of keying dispatches that
        // never happen or columns wider than the batch.
        let span = (2 * (self.n_corruptions + self.n_poisonings)).max(4) as u64;
        let kinds = [Corruption::Nan, Corruption::Inf, Corruption::BitFlip];
        let mut plan = ChaosPlan::new();
        for j in 0..self.n_corruptions {
            plan = plan.with(ChaosEvent::CorruptColumn {
                dispatch: rng.next() % span,
                column: (rng.next() as usize) % 2,
                kind: kinds[j % kinds.len()],
            });
        }
        for _ in 0..self.n_poisonings {
            // Poisoning needs a cached entry: skip dispatch 0 (always a
            // cold miss for the first fingerprint).
            plan = plan.with(ChaosEvent::PoisonHierarchy { dispatch: 1 + rng.next() % span });
        }
        plan
    }

    /// The fault plan injected into every rescue session.
    pub fn fault_plan(&self, seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with(Fault::Crash { team: 0, at_round: 2 })
            .with(Fault::CorruptWrite { grid: 0, at_round: 1, kind: Corruption::BitFlip })
            .with(Fault::Straggler { worker: 0, from_round: 0, rounds: 4, steps: 3 })
    }

    /// Runs the seeded mix against a defended service under chaos.
    /// Deterministic end to end: chaos schedule, rescue-session seeds, and
    /// breaker timing all derive from `(self, seed)` on the virtual clock.
    pub fn run(&self, seed: u64) -> ServiceRun {
        let resilience = ResilienceOptions {
            breaker_threshold: self.breaker_threshold,
            breaker_backoff: Duration::from_millis(5),
            rescue_attempts: 4,
            rescue_backoff: Duration::from_millis(1),
            rescue_threads: 2,
            session_seed: Some(seed),
            fault_plan: self.with_fault_plan.then(|| self.fault_plan(seed)),
            chaos: Some(self.chaos_plan(seed)),
        };
        let opts = ServiceOptions {
            cache_capacity: self.base.cache_capacity,
            batch_window: self.base.batch_window,
            queue_capacity: self.base.n_requests.max(1),
            shed_high_water: self.shed_high_water,
            resilience: Some(resilience),
            ..Default::default()
        };
        self.base.run_with(seed, opts)
    }
}

/// The outcome of one seeded service run.
pub struct ServiceRun {
    /// Final status per ticket id (insertion order = submission order).
    pub outcomes: BTreeMap<u64, RequestStatus>,
    /// The cache event log, in decision order.
    pub events: Vec<CacheEvent>,
    /// The fault-plane event log (breakers, quarantines, sheds, rescues),
    /// in decision order.
    pub service_events: Vec<ServiceEvent>,
    /// Final aggregate counters.
    pub stats: ServiceStats,
    /// Tickets that carried a deadline (the convergence-rate oracle only
    /// scores the undeadlined rest).
    pub deadlined: Vec<u64>,
    /// Canonical hash of the whole run (see [`fingerprint_service`]).
    pub fingerprint: u64,
}

/// The canonical fingerprint of a service run: bit-exact over every
/// completed solution, every rejection's kind and deterministic timing
/// fields, the ordered cache and fault-plane event logs, and the stats
/// counters. Everything hashed is virtual-clock-deterministic, so
/// replaying a seed reproduces the fingerprint exactly.
pub fn fingerprint_service(
    outcomes: &BTreeMap<u64, RequestStatus>,
    events: &[CacheEvent],
    service_events: &[ServiceEvent],
    stats: &ServiceStats,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(outcomes.len() as u64);
    for (&ticket, status) in outcomes {
        h.write_u64(ticket);
        match status {
            RequestStatus::Completed(r) => {
                h.write_bytes(b"completed");
                h.write_u64(r.x.len() as u64);
                for &v in &r.x {
                    h.write_f64(v);
                }
                h.write_f64(r.relres);
                h.write_u64(r.converged as u64);
                h.write_bytes(r.stopped.name().as_bytes());
                h.write_u64(r.cycles as u64);
                h.write_u64(r.cache_hit as u64);
                h.write_u64(r.batch_size as u64);
                h.write_u64(r.rescued as u64);
            }
            RequestStatus::Rejected(rej) => {
                h.write_bytes(b"rejected");
                match rej {
                    Rejection::DeadlineExpired { deadline_ns, now_ns } => {
                        h.write_bytes(b"expired");
                        h.write_u64(*deadline_ns);
                        h.write_u64(*now_ns);
                    }
                    Rejection::DeadlineInfeasible { deadline_ns, estimated_ns, now_ns } => {
                        h.write_bytes(b"infeasible");
                        h.write_u64(*deadline_ns);
                        h.write_u64(*estimated_ns);
                        h.write_u64(*now_ns);
                    }
                    Rejection::BuildFailed(_) => h.write_bytes(b"build_failed"),
                    Rejection::CircuitOpen { fingerprint, retry_after_ns } => {
                        h.write_bytes(b"circuit_open");
                        h.write_u64(*fingerprint);
                        h.write_u64(*retry_after_ns);
                    }
                    Rejection::Shed { queue_depth } => {
                        h.write_bytes(b"shed");
                        h.write_u64(*queue_depth as u64);
                    }
                    Rejection::SolveFailed { relres, attempts } => {
                        h.write_bytes(b"solve_failed");
                        h.write_f64(*relres);
                        h.write_u64(u64::from(*attempts));
                    }
                }
            }
        }
    }
    h.write_u64(events.len() as u64);
    for e in events {
        h.write_bytes(e.name().as_bytes());
        h.write_u64(e.fingerprint());
    }
    h.write_u64(service_events.len() as u64);
    for e in service_events {
        h.write_bytes(e.name().as_bytes());
        h.write_u64(e.key());
    }
    // The stats snapshot hashes via its stable JSON rendering, so a new
    // counter can never silently drop out of the fingerprint.
    h.write_bytes(stats.to_json().as_bytes());
    h.finish()
}

/// Per-kind tallies of a run's rejections.
struct RejectionTally {
    deadline: u64,
    circuit_open: u64,
    shed: u64,
    solve_failed: u64,
    build_failed: u64,
}

/// The checks shared by the plain and chaos oracles: every outcome
/// well-formed, stats reconciled against outcomes and both event logs.
fn check_run(
    label: &str,
    axis: &ServiceAxis,
    run: &ServiceRun,
) -> Result<RejectionTally, Violation> {
    let fail = |reason: String| Violation { case: label.to_string(), reason };
    let mut completed = 0u64;
    let mut rescued = 0u64;
    let mut tally =
        RejectionTally { deadline: 0, circuit_open: 0, shed: 0, solve_failed: 0, build_failed: 0 };
    for (&ticket, status) in &run.outcomes {
        match status {
            RequestStatus::Completed(r) => {
                completed += 1;
                rescued += r.rescued as u64;
                if let Some(i) = r.x.iter().position(|v| !v.is_finite()) {
                    return Err(fail(format!("ticket {ticket}: non-finite x[{i}]")));
                }
                if r.converged && r.relres > axis.tolerance {
                    return Err(fail(format!(
                        "ticket {ticket}: converged at relres {} above tolerance {}",
                        r.relres, axis.tolerance
                    )));
                }
                if r.converged != matches!(r.stopped, Stopped::Tolerance) {
                    return Err(fail(format!(
                        "ticket {ticket}: converged={} disagrees with stopped={:?}",
                        r.converged, r.stopped
                    )));
                }
                if r.batch_size == 0 || r.batch_size > axis.batch_window {
                    return Err(fail(format!(
                        "ticket {ticket}: batch size {} outside 1..={}",
                        r.batch_size, axis.batch_window
                    )));
                }
                if r.cycles == 0 || r.cycles > axis.t_max {
                    return Err(fail(format!(
                        "ticket {ticket}: {} cycles outside 1..={}",
                        r.cycles, axis.t_max
                    )));
                }
            }
            RequestStatus::Rejected(rej) => match rej {
                Rejection::DeadlineExpired { .. } | Rejection::DeadlineInfeasible { .. } => {
                    tally.deadline += 1;
                }
                Rejection::CircuitOpen { .. } => tally.circuit_open += 1,
                Rejection::Shed { .. } => tally.shed += 1,
                Rejection::SolveFailed { .. } => tally.solve_failed += 1,
                Rejection::BuildFailed(_) => tally.build_failed += 1,
            },
        }
    }
    let s = &run.stats;
    let total = completed
        + tally.deadline
        + tally.circuit_open
        + tally.shed
        + tally.solve_failed
        + tally.build_failed;
    if total != axis.n_requests as u64 {
        return Err(fail(format!(
            "conservation violated: {total} outcomes for {} requests",
            axis.n_requests
        )));
    }
    if s.completed != completed {
        return Err(fail(format!(
            "stats count {} completed, outcomes hold {completed}",
            s.completed
        )));
    }
    if s.rejected_deadline != tally.deadline {
        return Err(fail(format!(
            "stats count {} deadline rejections, outcomes hold {}",
            s.rejected_deadline, tally.deadline
        )));
    }
    if s.rejected_circuit_open != tally.circuit_open {
        return Err(fail(format!(
            "stats count {} circuit-open rejections, outcomes hold {}",
            s.rejected_circuit_open, tally.circuit_open
        )));
    }
    if s.shed != tally.shed {
        return Err(fail(format!("stats count {} sheds, outcomes hold {}", s.shed, tally.shed)));
    }
    if s.rescued != rescued {
        return Err(fail(format!("stats count {} rescues, outcomes hold {rescued}", s.rescued)));
    }
    if s.rescue_failed != tally.solve_failed {
        return Err(fail(format!(
            "stats count {} failed rescues, outcomes hold {}",
            s.rescue_failed, tally.solve_failed
        )));
    }
    // Every dispatched right-hand side resolves as either a completion or
    // a failed rescue — nothing disappears between dispatch and publish.
    if s.batched_rhs != completed + tally.solve_failed {
        return Err(fail(format!(
            "stats batched {} rhs but published {}",
            s.batched_rhs,
            completed + tally.solve_failed
        )));
    }
    if s.queue_depth != 0 {
        return Err(fail(format!("queue depth {} after drain", s.queue_depth)));
    }
    let count = |name: &str| run.events.iter().filter(|e| e.name() == name).count() as u64;
    if s.cache_misses != count("miss") || s.evictions != count("evict") {
        return Err(fail("stats disagree with the cache event log".into()));
    }
    if s.quarantined != count("quarantine") {
        return Err(fail(format!(
            "stats count {} quarantines, the cache log holds {}",
            s.quarantined,
            count("quarantine")
        )));
    }
    let live = count("miss") - count("evict") - count("quarantine");
    if live > axis.cache_capacity as u64 {
        return Err(fail(format!(
            "{live} live hierarchies exceed the capacity of {}",
            axis.cache_capacity
        )));
    }
    let plane = |name: &str| run.service_events.iter().filter(|e| e.name() == name).count() as u64;
    if s.breaker_opened != plane("breaker_opened")
        || s.breaker_closed != plane("breaker_closed")
        || s.quarantined != plane("quarantined")
        || s.shed != plane("shed")
    {
        return Err(fail("stats disagree with the fault-plane event log".into()));
    }
    Ok(tally)
}

/// The service oracle for undefended runs: on top of the shared checks, an
/// undefended service must never reject through the fault plane.
pub fn check_service(axis: &ServiceAxis, run: &ServiceRun) -> Result<(), Violation> {
    let tally = check_run(&axis.label(), axis, run)?;
    if tally.circuit_open + tally.shed + tally.solve_failed > 0 || !run.service_events.is_empty() {
        return Err(Violation {
            case: axis.label(),
            reason: "undefended service produced fault-plane activity".into(),
        });
    }
    Ok(())
}

/// The chaos oracle: the shared checks (which already enforce ticket
/// conservation and finite, tolerance-honest completions) against the
/// defended configuration.
pub fn check_service_chaos(axis: &ServiceChaosAxis, run: &ServiceRun) -> Result<(), Violation> {
    check_run(&axis.label(), &axis.base, run)?;
    Ok(())
}

/// Of the requests that carried no deadline, the fraction whose solution
/// converged to the axis tolerance — the chaos acceptance criterion scores
/// this at ≥ 0.9 (deadlined requests may legitimately expire).
pub fn undeadlined_convergence(run: &ServiceRun) -> f64 {
    let mut total = 0u64;
    let mut converged = 0u64;
    for (ticket, status) in &run.outcomes {
        if run.deadlined.contains(ticket) {
            continue;
        }
        total += 1;
        if matches!(status, RequestStatus::Completed(r) if r.converged) {
            converged += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        converged as f64 / total as f64
    }
}

/// splitmix64 — the standard seed expander (public-domain constants), also
/// used by the sparse kernels' test generators.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_run_passes_the_oracle() {
        let axis = ServiceAxis::default();
        let run = axis.run(7);
        check_service(&axis, &run).unwrap();
        // The mix must actually exercise the interesting paths.
        assert!(run.stats.cache_hits > 0, "no cache hit in the mix");
        assert!(run.stats.evictions > 0, "no eviction in the mix");
        assert!(run.stats.batched_rhs > run.stats.batches, "no coalesced batch in the mix");
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let axis = ServiceAxis::default();
        let a = axis.run(42);
        let b = axis.run(42);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn different_seeds_diverge() {
        let axis = ServiceAxis::default();
        assert_ne!(axis.run(1).fingerprint, axis.run(2).fingerprint);
    }

    #[test]
    fn chaos_axis_survives_and_replays() {
        let axis = ServiceChaosAxis::default();
        let run = axis.run(3);
        check_service_chaos(&axis, &run).unwrap();
        // The chaos must actually land: something was rescued or
        // quarantined, and most clean requests still converged.
        assert!(
            run.stats.rescued + run.stats.rescue_failed + run.stats.quarantined > 0,
            "chaos plan injected nothing observable"
        );
        assert!(undeadlined_convergence(&run) >= 0.9, "chaos sank the convergence rate");
        let replay = axis.run(3);
        assert_eq!(run.fingerprint, replay.fingerprint, "chaos replay diverged");
    }
}
