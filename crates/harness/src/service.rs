//! The service axis of the harness: drive a seeded request mix through a
//! [`SolverService`] on a virtual clock and check every outcome.
//!
//! A [`ServiceAxis`] describes a workload shape — how many requests, over
//! how many distinct matrices, how often a tight deadline rides along, how
//! the submit/dispatch interleaving goes. [`ServiceAxis::run`] derives the
//! concrete mix from a seed with splitmix64, so the whole run — every
//! solution bit, every cache event, every rejection — is a pure function of
//! `(axis, seed)`: the service reads time only from a [`VirtualClock`]
//! the axis advances deterministically. [`check_service`] is the oracle; the fingerprint
//! folds outcomes, the cache event log and the stats into one replayable
//! hash.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
use asyncmg_service::{
    Rejection, RequestStatus, ServiceOptions, SolveRequest, SolverService, Ticket,
};
use asyncmg_sparse::Csr;
use asyncmg_telemetry::{CacheEvent, ServiceStats};
use asyncmg_threads::VirtualClock;

use crate::fingerprint::Fnv;
use crate::oracle::Violation;

/// One service-workload configuration of the fuzz matrix.
#[derive(Clone, Copy, Debug)]
pub struct ServiceAxis {
    /// Requests submitted over the run.
    pub n_requests: usize,
    /// Distinct matrices the mix draws from (a pool of anisotropic 7-point
    /// Laplacian sizes).
    pub n_matrices: usize,
    /// Hierarchy-cache capacity — set below `n_matrices` to exercise
    /// eviction.
    pub cache_capacity: usize,
    /// Maximum right-hand sides coalesced per dispatch.
    pub batch_window: usize,
    /// Every `deadline_every`-th request carries a deadline tight enough
    /// that a seeded clock advance can expire it (0 disables deadlines).
    pub deadline_every: usize,
    /// Early-stopping tolerance of every request.
    pub tolerance: f64,
    /// Cycle budget of every request.
    pub t_max: usize,
}

impl Default for ServiceAxis {
    fn default() -> Self {
        ServiceAxis {
            n_requests: 24,
            n_matrices: 3,
            cache_capacity: 2,
            batch_window: 4,
            deadline_every: 5,
            tolerance: 1e-6,
            t_max: 60,
        }
    }
}

impl ServiceAxis {
    /// A filterable label.
    pub fn label(&self) -> String {
        format!(
            "service/r{}m{}c{}w{}",
            self.n_requests, self.n_matrices, self.cache_capacity, self.batch_window
        )
    }

    /// The matrix pool: small anisotropic boxes, distinct per index.
    fn matrices(&self) -> Vec<Arc<Csr>> {
        (0..self.n_matrices).map(|i| Arc::new(laplacian_7pt(4 + i, 4, 4))).collect()
    }

    /// Runs the seeded request mix to completion. Deterministic: same
    /// `(self, seed)` ⇒ identical [`ServiceRun`], fingerprint included.
    pub fn run(&self, seed: u64) -> ServiceRun {
        let clock = Arc::new(VirtualClock::new());
        let opts = ServiceOptions {
            cache_capacity: self.cache_capacity,
            batch_window: self.batch_window,
            queue_capacity: self.n_requests.max(1),
            ..Default::default()
        };
        let service = SolverService::with_clock(opts, clock.clone());
        let mats = self.matrices();

        let mut rng = Splitmix(seed);
        let mut tickets: Vec<Ticket> = Vec::with_capacity(self.n_requests);
        for i in 0..self.n_requests {
            let m = &mats[(rng.next() as usize) % mats.len()];
            let mut req = SolveRequest::new(m.clone(), random_rhs(m.nrows(), rng.next()))
                .tolerance(self.tolerance)
                .t_max(self.t_max);
            if self.deadline_every > 0 && i % self.deadline_every == self.deadline_every - 1 {
                // Tight: 1–4 ms; the clock advances 0–2 ms per step below,
                // so some of these expire in queue and some dispatch.
                req = req.deadline(Duration::from_millis(1 + rng.next() % 4));
            }
            tickets.push(service.submit(req).expect("axis sizes the queue to fit the mix"));

            // Seeded interleaving: sometimes let time pass, sometimes
            // dispatch a batch mid-stream so cache and queue states vary.
            let step = rng.next();
            clock.advance(Duration::from_millis(step % 3));
            if step.is_multiple_of(4) {
                service.process_batch();
            }
        }
        service.drain();

        let mut outcomes = BTreeMap::new();
        for t in tickets {
            let status = service.take(t).expect("every submitted ticket must resolve");
            assert!(
                !matches!(status, RequestStatus::Queued),
                "drain left ticket {} queued",
                t.id()
            );
            outcomes.insert(t.id(), status);
        }
        let events = service.cache_events();
        let stats = service.stats();
        let fingerprint = fingerprint_service(&outcomes, &events, &stats);
        ServiceRun { outcomes, events, stats, fingerprint }
    }
}

/// The outcome of one seeded service run.
pub struct ServiceRun {
    /// Final status per ticket id (insertion order = submission order).
    pub outcomes: BTreeMap<u64, RequestStatus>,
    /// The cache event log, in decision order.
    pub events: Vec<CacheEvent>,
    /// Final aggregate counters.
    pub stats: ServiceStats,
    /// Canonical hash of the whole run (see [`fingerprint_service`]).
    pub fingerprint: u64,
}

/// The canonical fingerprint of a service run: bit-exact over every
/// completed solution, every rejection's kind and deterministic timing
/// fields, the ordered cache event log, and the stats counters. Everything
/// hashed is virtual-clock-deterministic, so replaying a seed reproduces
/// the fingerprint exactly.
pub fn fingerprint_service(
    outcomes: &BTreeMap<u64, RequestStatus>,
    events: &[CacheEvent],
    stats: &ServiceStats,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(outcomes.len() as u64);
    for (&ticket, status) in outcomes {
        h.write_u64(ticket);
        match status {
            RequestStatus::Queued => h.write_bytes(b"queued"),
            RequestStatus::Completed(r) => {
                h.write_bytes(b"completed");
                h.write_u64(r.x.len() as u64);
                for &v in &r.x {
                    h.write_f64(v);
                }
                h.write_f64(r.relres);
                h.write_u64(r.converged as u64);
                h.write_u64(r.cycles as u64);
                h.write_u64(r.cache_hit as u64);
                h.write_u64(r.batch_size as u64);
            }
            RequestStatus::Rejected(rej) => {
                h.write_bytes(b"rejected");
                match rej {
                    Rejection::DeadlineExpired { deadline_ns, now_ns } => {
                        h.write_bytes(b"expired");
                        h.write_u64(*deadline_ns);
                        h.write_u64(*now_ns);
                    }
                    Rejection::DeadlineInfeasible { deadline_ns, estimated_ns, now_ns } => {
                        h.write_bytes(b"infeasible");
                        h.write_u64(*deadline_ns);
                        h.write_u64(*estimated_ns);
                        h.write_u64(*now_ns);
                    }
                    Rejection::BuildFailed(_) => h.write_bytes(b"build_failed"),
                }
            }
        }
    }
    h.write_u64(events.len() as u64);
    for e in events {
        h.write_bytes(e.name().as_bytes());
        h.write_u64(e.fingerprint());
    }
    h.write_u64(stats.cache_hits);
    h.write_u64(stats.cache_misses);
    h.write_u64(stats.evictions);
    h.write_u64(stats.batches);
    h.write_u64(stats.batched_rhs);
    h.write_u64(stats.completed);
    h.write_u64(stats.rejected_deadline);
    h.write_u64(stats.rejected_queue_full);
    h.write_u64(stats.max_queue_depth);
    h.finish()
}

/// The service oracle: what must hold for every axis and seed.
///
/// Every request resolves (no ticket left queued after drain); completed
/// solutions are finite and, when marked converged, meet the axis
/// tolerance; batch sizes respect the window; and the stats must account
/// for every request and agree with the event log.
pub fn check_service(axis: &ServiceAxis, run: &ServiceRun) -> Result<(), Violation> {
    let fail = |reason: String| Violation { case: axis.label(), reason };
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for (&ticket, status) in &run.outcomes {
        match status {
            RequestStatus::Queued => {
                return Err(fail(format!("ticket {ticket} still queued after drain")));
            }
            RequestStatus::Completed(r) => {
                completed += 1;
                if let Some(i) = r.x.iter().position(|v| !v.is_finite()) {
                    return Err(fail(format!("ticket {ticket}: non-finite x[{i}]")));
                }
                if r.converged && r.relres > axis.tolerance {
                    return Err(fail(format!(
                        "ticket {ticket}: converged at relres {} above tolerance {}",
                        r.relres, axis.tolerance
                    )));
                }
                if r.batch_size == 0 || r.batch_size > axis.batch_window {
                    return Err(fail(format!(
                        "ticket {ticket}: batch size {} outside 1..={}",
                        r.batch_size, axis.batch_window
                    )));
                }
                if r.cycles == 0 || r.cycles > axis.t_max {
                    return Err(fail(format!(
                        "ticket {ticket}: {} cycles outside 1..={}",
                        r.cycles, axis.t_max
                    )));
                }
            }
            RequestStatus::Rejected(_) => rejected += 1,
        }
    }
    let s = &run.stats;
    if s.completed != completed {
        return Err(fail(format!(
            "stats count {} completed, outcomes hold {completed}",
            s.completed
        )));
    }
    if s.rejected_deadline != rejected {
        return Err(fail(format!(
            "stats count {} deadline rejections, outcomes hold {rejected}",
            s.rejected_deadline
        )));
    }
    if completed + rejected != axis.n_requests as u64 {
        return Err(fail(format!(
            "{} outcomes for {} requests",
            completed + rejected,
            axis.n_requests
        )));
    }
    if s.batched_rhs != completed {
        return Err(fail(format!("stats batched {} rhs but completed {completed}", s.batched_rhs)));
    }
    if s.queue_depth != 0 {
        return Err(fail(format!("queue depth {} after drain", s.queue_depth)));
    }
    let misses = run.events.iter().filter(|e| matches!(e, CacheEvent::Miss { .. })).count();
    let evictions = run.events.iter().filter(|e| matches!(e, CacheEvent::Evict { .. })).count();
    if s.cache_misses != misses as u64 || s.evictions != evictions as u64 {
        return Err(fail("stats disagree with the cache event log".into()));
    }
    if misses - evictions > axis.cache_capacity {
        return Err(fail(format!(
            "{} live hierarchies exceed the capacity of {}",
            misses - evictions,
            axis.cache_capacity
        )));
    }
    Ok(())
}

/// splitmix64 — the standard seed expander (public-domain constants), also
/// used by the sparse kernels' test generators.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_run_passes_the_oracle() {
        let axis = ServiceAxis::default();
        let run = axis.run(7);
        check_service(&axis, &run).unwrap();
        // The mix must actually exercise the interesting paths.
        assert!(run.stats.cache_hits > 0, "no cache hit in the mix");
        assert!(run.stats.evictions > 0, "no eviction in the mix");
        assert!(run.stats.batched_rhs > run.stats.batches, "no coalesced batch in the mix");
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let axis = ServiceAxis::default();
        let a = axis.run(42);
        let b = axis.run(42);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn different_seeds_diverge() {
        let axis = ServiceAxis::default();
        assert_ne!(axis.run(1).fingerprint, axis.run(2).fingerprint);
    }
}
