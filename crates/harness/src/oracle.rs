//! Convergence oracles: what must hold for *every* interleaving.

use crate::case::{CaseRun, FaultAxis, FuzzCase};
use asyncmg_core::{SolveOutcome, StopCriterion};

/// The properties a schedule-fuzzed run is checked against.
///
/// The bar is deliberately schedule-independent: the paper proves (and
/// Section VI measures) convergence for *families* of asynchronous
/// executions, so any single interleaving violating the oracle is a bug —
/// either in the solver or in the oracle's model of it.
///
/// For fault-injected cases (`case.fault != FaultAxis::None`) the bar
/// changes shape rather than dropping: the iterate must stay finite and the
/// outcome must be *structured* — `Degraded` with a non-empty fault log —
/// never `Faulted`, never a hang; crashed or quarantined grids are allowed
/// below the correction envelope.
#[derive(Clone, Copy, Debug)]
pub struct Oracle {
    /// Required final relative residual, or `None` when the configuration
    /// is only guaranteed to stay bounded (the paper's † entries: global-res
    /// under heavy staleness can stagnate legitimately).
    pub max_relres: Option<f64>,
}

impl Oracle {
    /// Checks a run. `Err` carries a human-readable violation description.
    pub fn check(&self, case: &FuzzCase, run: &CaseRun) -> Result<(), Violation> {
        let r = &run.result;
        let faulted_case = case.fault != FaultAxis::None;
        // No NaN/Inf anywhere: an async schedule may slow convergence but
        // must never corrupt the iterate — and with defended recovery, an
        // injected corruption must be suppressed before it reaches x.
        if !r.relres.is_finite() {
            return Err(Violation::new(case, format!("non-finite relres {}", r.relres)));
        }
        if let Some(i) = r.x.iter().position(|v| !v.is_finite()) {
            return Err(Violation::new(case, format!("non-finite x[{i}] = {}", r.x[i])));
        }
        if faulted_case {
            // The solve must end structurally: a logged, degraded outcome.
            if r.outcome != SolveOutcome::Degraded {
                return Err(Violation::new(
                    case,
                    format!("fault-injected run ended {:?}, expected Degraded", r.outcome),
                ));
            }
            if r.faults.is_empty() {
                return Err(Violation::new(case, "fault-injected run logged no faults".into()));
            }
        } else if !r.faults.is_empty() {
            return Err(Violation::new(
                case,
                format!("fault-free run logged {} faults", r.faults.len()),
            ));
        }
        if let Some(tol) = self.max_relres {
            if r.relres >= tol {
                return Err(Violation::new(
                    case,
                    format!("relres {} above oracle threshold {tol}", r.relres),
                ));
            }
        }
        // Correction-count envelope per stop criterion: under Criterion 1
        // every grid performs exactly `t_max` corrections regardless of
        // schedule; under Criterion 2 at least `t_max`, with a generous cap
        // catching runaway grids (a team that never observes the stop flag).
        // Fault injection can legitimately push grids below the floor
        // (crashed teams, quarantined grids), never above the cap.
        let envelope = match case.criterion {
            StopCriterion::One => (case.t_max, case.t_max),
            StopCriterion::Two | StopCriterion::Tolerance { .. } => {
                (case.t_max, case.t_max.saturating_mul(50))
            }
        };
        let floor = if faulted_case { 0 } else { envelope.0 };
        for (k, &c) in r.grid_corrections.iter().enumerate() {
            if c < floor || c > envelope.1 {
                return Err(Violation::new(
                    case,
                    format!(
                        "grid {k} performed {c} corrections, outside envelope [{}, {}]",
                        floor, envelope.1
                    ),
                ));
            }
        }
        // Telemetry must agree with the solver's own counters.
        let traced = run.trace.grid_corrections();
        if traced != r.grid_corrections {
            return Err(Violation::new(
                case,
                format!(
                    "trace corrections {traced:?} disagree with solver counters {:?}",
                    r.grid_corrections
                ),
            ));
        }
        Ok(())
    }
}

/// A failed oracle check, tied to the case that produced it.
#[derive(Debug)]
pub struct Violation {
    /// The case's label.
    pub case: String,
    /// What went wrong.
    pub reason: String,
}

impl Violation {
    fn new(case: &FuzzCase, reason: String) -> Self {
        Violation { case: case.label(), reason }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.case, self.reason)
    }
}

impl std::error::Error for Violation {}
