//! Deterministic concurrency-testing harness for the asyncmg solvers.
//!
//! The production async solvers race by design: teams write the shared
//! iterate and residual without global synchronisation, and the paper's
//! convergence claims (Section III) are about *families* of interleavings
//! — update probabilities `p_k ∈ [α, 1]`, read delays up to `δ`. A handful
//! of wall-clock runs exercises one arbitrary interleaving per invocation;
//! this crate exercises *chosen* ones:
//!
//! * [`FuzzCase`] — one solver configuration (matrix family × method ×
//!   smoother × write mode × residual flavour) that can be run under a
//!   [`VirtualSched`](asyncmg_threads::VirtualSched) seed: same seed, same
//!   bit-identical execution.
//! * [`fingerprint_run`] — a canonical hash of everything a run determines
//!   (solution bits, residuals, correction streams) and nothing it doesn't
//!   (wall-clock timestamps).
//! * [`Oracle`] — the convergence oracle: finite solution, relative
//!   residual below the configuration's threshold, per-grid correction
//!   counts inside the stop-criterion envelope.
//! * [`run_fuzz`] — the seeded fuzz loop: N seeds × M cases, shrinking any
//!   failure to the smallest failing seed and printing a one-line
//!   `HARNESS_SEED=… HARNESS_CASE=…` reproduction command.
//! * [`ShardAxis`] — the sharded execution model's fuzz axis: shard count ×
//!   seeded transport profile (delay/reorder/drop) × fault plan, with
//!   [`fingerprint_sharded`] replay hashing and the conservation-aware
//!   [`check_sharded`] oracle.
//!
//! Reproducing a failure is a matter of re-exporting the environment
//! variables from the failure message; see `docs/testing.md`.

pub mod case;
pub mod fingerprint;
pub mod fuzz;
pub mod oracle;
pub mod resilience;
pub mod service;
pub mod shard;

pub use case::{CaseRun, FaultAxis, FuzzCase, KernelAxis, MatrixFamily};
pub use fingerprint::{fingerprint_run, Fnv};
pub use fuzz::{case_filter, run_fuzz, seeds_from_env, FuzzOutcome};
pub use oracle::{Oracle, Violation};
pub use resilience::{check_session, fingerprint_session, ResilienceAxis, SessionRun};
pub use service::{
    check_service, check_service_chaos, fingerprint_service, undeadlined_convergence, ServiceAxis,
    ServiceChaosAxis, ServiceRun,
};
pub use shard::{check_sharded, fingerprint_sharded, NetAxis, RecoveryAxis, ShardAxis, ShardRun};
