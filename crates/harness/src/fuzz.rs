//! The seeded schedule-fuzz loop: run, check, shrink, reproduce.

use crate::case::FuzzCase;
use crate::oracle::Oracle;

/// Summary of a green fuzz sweep.
#[derive(Clone, Copy, Debug)]
pub struct FuzzOutcome {
    /// Distinct configurations exercised.
    pub cases: usize,
    /// Total seed×case runs.
    pub runs: usize,
}

/// The seeds to fuzz with. `HARNESS_SEED=<n>` pins the sweep to a single
/// seed (the replay path printed by failures); otherwise seeds `0..n`
/// are used, with `HARNESS_FUZZ_SEEDS=<n>` overriding the default count.
pub fn seeds_from_env(default_n: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("HARNESS_SEED") {
        let seed: u64 = s.parse().unwrap_or_else(|_| panic!("HARNESS_SEED={s:?} is not a u64"));
        return vec![seed];
    }
    let n = match std::env::var("HARNESS_FUZZ_SEEDS") {
        Ok(s) => s.parse().unwrap_or_else(|_| panic!("HARNESS_FUZZ_SEEDS={s:?} is not a u64")),
        Err(_) => default_n,
    };
    (0..n).collect()
}

/// Optional case filter: `HARNESS_CASE=<substring>` restricts the sweep to
/// cases whose label contains the substring.
pub fn case_filter() -> Option<String> {
    std::env::var("HARNESS_CASE").ok()
}

/// Runs every case under every seed, checking `oracle_for(case)` on each
/// run.
///
/// On the first violation, the loop *shrinks*: it rescans seeds from 0
/// upward on the failing case and reports the smallest seed that still
/// fails, together with a one-line environment-variable command that
/// replays exactly that interleaving.
pub fn run_fuzz(
    cases: &[FuzzCase],
    seeds: &[u64],
    oracle_for: impl Fn(&FuzzCase) -> Oracle,
) -> Result<FuzzOutcome, String> {
    let filter = case_filter();
    let mut ran_cases = 0usize;
    let mut runs = 0usize;
    for case in cases {
        let label = case.label();
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        ran_cases += 1;
        let oracle = oracle_for(case);
        for &seed in seeds {
            runs += 1;
            let run = case.run(seed);
            if let Err(v) = oracle.check(case, &run) {
                let smallest = shrink(case, &oracle, seed);
                return Err(failure_report(case, &v.to_string(), seed, smallest));
            }
        }
    }
    Ok(FuzzOutcome { cases: ran_cases, runs })
}

/// Scans seeds `0..failing` in order and returns the smallest one that
/// still violates the oracle (or the original seed when no smaller one
/// does). Every candidate is a full deterministic replay, so the result is
/// stable.
fn shrink(case: &FuzzCase, oracle: &Oracle, failing: u64) -> u64 {
    for seed in 0..failing {
        let run = case.run(seed);
        if oracle.check(case, &run).is_err() {
            return seed;
        }
    }
    failing
}

fn failure_report(case: &FuzzCase, violation: &str, seed: u64, smallest: u64) -> String {
    format!(
        "schedule fuzz failure: {violation}\n  first failing seed: {seed}\n  smallest failing seed: {smallest}\n  reproduce with:\n    HARNESS_SEED={smallest} HARNESS_CASE='{}' cargo test -p asyncmg-harness --test schedule_fuzz -- --nocapture",
        case.label()
    )
}
