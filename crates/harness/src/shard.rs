//! The shard axis of the harness: sharded solves under seeded transports,
//! seeded schedules and fault plans, with replay fingerprints and a
//! conservation-aware oracle.
//!
//! A [`ShardAxis`] pins everything that shapes a sharded execution — the
//! matrix family, the shard count, the network profile
//! ([`NetAxis`]: delay/reorder/drop), and the [`FaultAxis`] reused from the
//! shared-memory matrix (fault decisions are pure functions of the plan
//! seed, so they inject identically over messages). [`ShardAxis::run`]
//! executes under a [`VirtualSched`] and a [`VirtualTransport`] both
//! derived from one seed: the run is a pure function of `(axis, seed)` and
//! [`fingerprint_sharded`] hashes everything it determines — solution bits,
//! reductions, per-rank message counters, fault kinds — and nothing it
//! doesn't (timestamps). [`check_sharded`] is the oracle: finiteness,
//! message conservation, strictly monotone reduction epochs, fault/outcome
//! consistency, and (where the axis demands it) convergence.

use crate::case::{FaultAxis, MatrixFamily};
use crate::fingerprint::Fnv;
use crate::oracle::Violation;
use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{MgOptions, MgSetup, SolveOutcome};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_shard::{
    solve_sharded_clocked, RecoveryReport, ShardOptions, ShardRecovery, ShardResult,
    VirtualTransport,
};
use asyncmg_telemetry::NoopProbe;
use asyncmg_threads::{Fault, FaultPlan, VirtualClock, VirtualSched};

/// The network profile of a sharded fuzz run: how the seeded
/// [`VirtualTransport`] treats data messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetAxis {
    /// No delay, no loss — ordering still follows the seeded sequence.
    Ideal,
    /// Small uniform delays (up to 4 transport ops): mild reordering.
    Delay,
    /// Large delays (up to 24 ops): heavy cross-sender reordering.
    Reorder,
    /// Mild delays plus 20 % data-message loss.
    Drop,
    /// Heavy delays plus 40 % loss — the stress profile.
    Lossy,
}

/// The self-healing axis of a sharded fuzz run: whether recovery is armed
/// and whether a deterministic mid-solve crash exercises it. The crash is
/// injected into shard 1 via [`Fault::Crash`] on top of whatever the
/// [`FaultAxis`] already injects, and the solve runs on a
/// [`VirtualClock`] so detection and retransmission replay bit-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAxis {
    /// Recovery disarmed — the undefended model, bit-identical to the
    /// pre-recovery solver.
    Off,
    /// Recovery armed with adoption off: shard 1 crashes at `crash_epoch`,
    /// the detector (epoch-gap threshold `threshold`) declares it dead and
    /// evicts it, and its rows freeze.
    Detect {
        /// Epoch at which shard 1 crashes.
        crash_epoch: u64,
        /// Detector silence threshold in epochs.
        threshold: u64,
    },
    /// Full self-healing: detection plus row adoption by a surviving
    /// neighbor, warm-started from the hub's last checkpoint.
    Adopt {
        /// Epoch at which shard 1 crashes.
        crash_epoch: u64,
        /// Detector silence threshold in epochs.
        threshold: u64,
    },
}

impl RecoveryAxis {
    /// The recovery knobs this axis arms, `None` for [`RecoveryAxis::Off`].
    pub fn recovery(self) -> Option<ShardRecovery> {
        match self {
            RecoveryAxis::Off => None,
            RecoveryAxis::Detect { threshold, .. } => Some(ShardRecovery {
                silence_epochs: threshold,
                adopt: false,
                ..ShardRecovery::default()
            }),
            RecoveryAxis::Adopt { threshold, .. } => Some(ShardRecovery {
                silence_epochs: threshold,
                adopt: true,
                ..ShardRecovery::default()
            }),
        }
    }

    /// The crash epoch of the injected death, if the axis injects one.
    pub fn crash_epoch(self) -> Option<u64> {
        match self {
            RecoveryAxis::Off => None,
            RecoveryAxis::Detect { crash_epoch, .. } | RecoveryAxis::Adopt { crash_epoch, .. } => {
                Some(crash_epoch)
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            RecoveryAxis::Off => "",
            RecoveryAxis::Detect { .. } => "/detect",
            RecoveryAxis::Adopt { .. } => "/heal",
        }
    }
}

impl NetAxis {
    /// All profiles, `Ideal` first (the order test matrices iterate in).
    pub const ALL: [NetAxis; 5] =
        [NetAxis::Ideal, NetAxis::Delay, NetAxis::Reorder, NetAxis::Drop, NetAxis::Lossy];

    /// Whether the profile loses data messages (convergence demands relax).
    pub fn lossy(self) -> bool {
        matches!(self, NetAxis::Drop | NetAxis::Lossy)
    }

    /// The seeded transport this profile builds over `ranks` ranks.
    pub fn transport(self, ranks: usize, seed: u64) -> VirtualTransport {
        let (delay, drop) = match self {
            NetAxis::Ideal => (0, 0.0),
            NetAxis::Delay => (4, 0.0),
            NetAxis::Reorder => (24, 0.0),
            NetAxis::Drop => (4, 0.2),
            NetAxis::Lossy => (24, 0.4),
        };
        VirtualTransport::with_profile(ranks, seed, delay, drop)
    }

    fn label(self) -> &'static str {
        match self {
            NetAxis::Ideal => "",
            NetAxis::Delay => "/net-delay",
            NetAxis::Reorder => "/net-reorder",
            NetAxis::Drop => "/net-drop",
            NetAxis::Lossy => "/net-lossy",
        }
    }
}

/// One sharded configuration of the fuzz matrix. An axis plus a seed
/// identifies a run completely.
#[derive(Clone, Copy, Debug)]
pub struct ShardAxis {
    /// Test problem.
    pub family: MatrixFamily,
    /// Shard-worker count (the hub adds one rank).
    pub n_shards: usize,
    /// Network profile of the virtual transport.
    pub net: NetAxis,
    /// Fault-injection axis, reused from the shared-memory matrix: the
    /// plan's grid/team/worker sites address shards here.
    pub fault: FaultAxis,
    /// Seed of the right-hand side.
    pub rhs_seed: u64,
    /// Epoch budget per shard.
    pub t_max: usize,
    /// Stopping tolerance handed to the solve (optional).
    pub tolerance: Option<f64>,
    /// Relative residual the oracle demands, when the configuration is
    /// clean enough to demand one (`None` skips the convergence check).
    pub max_relres: Option<f64>,
    /// Self-healing axis: recovery knobs plus the deterministic crash that
    /// exercises them.
    pub recovery: RecoveryAxis,
}

impl ShardAxis {
    /// A baseline axis; test matrices mutate individual fields.
    pub fn base() -> Self {
        ShardAxis {
            family: MatrixFamily::SevenPt(6),
            n_shards: 2,
            net: NetAxis::Ideal,
            fault: FaultAxis::None,
            rhs_seed: 3,
            t_max: 80,
            tolerance: None,
            max_relres: Some(2e-3),
            recovery: RecoveryAxis::Off,
        }
    }

    /// A compact, filterable name: `shard/7pt6/s2/net-drop/crash/heal`.
    pub fn label(&self) -> String {
        format!(
            "shard/{}/s{}{}{}{}",
            self.family.label(),
            self.n_shards,
            self.net.label(),
            self.fault.label(),
            self.recovery.label()
        )
    }

    fn setup(&self) -> MgSetup {
        let a = self.family.build();
        let aopts =
            AmgOptions { num_functions: self.family.num_functions(), ..AmgOptions::default() };
        MgSetup::new(build_hierarchy(a, &aopts), MgOptions::default())
    }

    /// Runs the axis once: `VirtualSched` and `VirtualTransport` are both
    /// derived from `seed`, so the whole [`ShardRun`] — fingerprint
    /// included — is a deterministic function of `(self, seed)`.
    pub fn run(&self, seed: u64) -> ShardRun {
        let setup = self.setup();
        let b = random_rhs(setup.n(), self.rhs_seed);
        let opts = ShardOptions {
            n_shards: self.n_shards,
            t_max: self.t_max,
            tolerance: self.tolerance,
            sweeps: 1,
            damping: 1.0,
            recovery: self.recovery.recovery(),
        };
        let sched = VirtualSched::new(seed);
        // A distinct stream for the fabric so network and schedule
        // randomness stay decoupled per seed.
        let net =
            self.net.transport(self.n_shards + 1, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let mut plan = self.fault.plan(seed);
        if let Some(at_round) = self.recovery.crash_epoch() {
            // The recovery axes kill shard 1 mid-solve on top of whatever
            // the fault axis injects.
            plan = Some(
                plan.unwrap_or_else(|| FaultPlan::new(seed))
                    .with(Fault::Crash { team: 1, at_round }),
            );
        }
        // The virtual clock makes detector deadlines and retransmit backoff
        // pure functions of the schedule (time only advances on hub polls).
        let clock = VirtualClock::new();
        let result = solve_sharded_clocked(
            &setup,
            &b,
            &opts,
            &net,
            &sched,
            plan.as_ref(),
            Some(&clock),
            &NoopProbe,
        );
        let decisions = sched.decisions();
        let fingerprint = fingerprint_sharded(&result);
        ShardRun { result, decisions, fingerprint }
    }
}

/// The outcome of one schedule- and transport-controlled sharded run.
pub struct ShardRun {
    /// The solver result.
    pub result: ShardResult,
    /// The virtual scheduler's decision sequence.
    pub decisions: Vec<u32>,
    /// Canonical replay hash (see [`fingerprint_sharded`]).
    pub fingerprint: u64,
}

/// The canonical fingerprint of one sharded solve: bit-exact over the
/// solution, the exact relative residual, per-shard epoch counts, hub
/// cycles, every published reduction, the per-rank transport counters, the
/// recovery report (deaths, adoptions, retransmit/ack/checkpoint/eviction
/// counters), the outcome and the fault-kind stream. Wall-clock fields
/// (`elapsed`, fault timestamps) are excluded — two replays of the same
/// interleaving differ only there.
pub fn fingerprint_sharded(result: &ShardResult) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(result.x.len() as u64);
    for &v in &result.x {
        h.write_f64(v);
    }
    h.write_f64(result.relres);
    h.write_u64(result.stopped_on_tolerance as u64);
    h.write_u64(result.shard_epochs.len() as u64);
    for &e in &result.shard_epochs {
        h.write_u64(e);
    }
    h.write_u64(result.hub_cycles);
    h.write_u64(result.reductions.len() as u64);
    for r in &result.reductions {
        h.write_u64(r.epoch);
        h.write_f64(r.relres);
        h.write_u64(r.parts as u64);
    }
    for c in &result.stats.per_rank {
        h.write_u64(c.sent);
        h.write_u64(c.delivered);
        h.write_u64(c.dropped);
        h.write_u64(c.overflowed);
    }
    h.write_u64(result.stats.pending);
    let rec = &result.recovery;
    h.write_u64(rec.dead_shards.len() as u64);
    for &d in &rec.dead_shards {
        h.write_u64(d as u64);
    }
    h.write_u64(rec.adoptions.len() as u64);
    for &(dead, adopter) in &rec.adoptions {
        h.write_u64(dead as u64);
        h.write_u64(adopter as u64);
    }
    h.write_u64(rec.retransmits);
    h.write_u64(rec.acks);
    h.write_u64(rec.checkpoints);
    h.write_u64(rec.evictions);
    h.write_u64(match result.outcome {
        SolveOutcome::Converged => 0,
        SolveOutcome::MaxIterations => 1,
        SolveOutcome::Degraded => 2,
        SolveOutcome::Faulted => 3,
    });
    h.write_u64(result.faults.len() as u64);
    for f in &result.faults {
        h.write_bytes(f.kind.name().as_bytes());
    }
    h.finish()
}

/// The sharded oracle. Checks, in order:
///
/// 1. finiteness of the solution and residual;
/// 2. message conservation (`sent = delivered + dropped + overflowed +
///    pending` per the quiescent counter snapshot) — retransmitted
///    reliable wrappers are ordinary sends, so the balance holds with
///    recovery armed too;
/// 3. strictly increasing reduction epochs, each combining the live shard
///    count: exactly `n_shards` contributions undefended, between
///    `n_shards - deaths` and `n_shards` once the detector retires parts;
/// 4. per-shard epoch counts within the budget;
/// 5. fault/outcome consistency: a finite run is `Degraded` exactly when
///    its fault log is non-empty, and the deterministic fault axes
///    (straggler/crash/corrupt) must actually have injected;
/// 6. recovery/report consistency: [`RecoveryAxis::Off`] must leave an
///    all-zero report (undefended purity), the recovery axes must declare
///    the crashed shard dead and evict it, adoption happens exactly on
///    [`RecoveryAxis::Adopt`], and the fault log carries the matching
///    `shard_declared_dead` / `rows_adopted` events;
/// 7. the axis's convergence demand (`max_relres`), when set.
pub fn check_sharded(axis: &ShardAxis, run: &ShardRun) -> Result<(), Violation> {
    let fail = |reason: String| Violation { case: axis.label(), reason };
    let r = &run.result;
    if let Some(i) = r.x.iter().position(|v| !v.is_finite()) {
        return Err(fail(format!("non-finite x[{i}]")));
    }
    if !r.relres.is_finite() {
        return Err(fail(format!("non-finite relres {}", r.relres)));
    }
    if !r.stats.conserved() {
        return Err(fail(format!(
            "message conservation violated: sent {} != delivered {} + dropped {} + overflowed {} + pending {}",
            r.stats.total_sent(),
            r.stats.total_delivered(),
            r.stats.total_dropped(),
            r.stats.total_overflowed(),
            r.stats.pending
        )));
    }
    for pair in r.reductions.windows(2) {
        if pair[0].epoch >= pair[1].epoch {
            return Err(fail(format!(
                "reduction epochs not strictly increasing: {} then {}",
                pair[0].epoch, pair[1].epoch
            )));
        }
    }
    let deaths = r.recovery.dead_shards.len();
    for red in &r.reductions {
        let lo = axis.n_shards.saturating_sub(deaths).max(1);
        if !(lo..=axis.n_shards).contains(&(red.parts as usize)) {
            return Err(fail(format!(
                "reduction at epoch {} combined {} parts, expected {lo}..={}",
                red.epoch, red.parts, axis.n_shards
            )));
        }
    }
    for pair in r.reductions.windows(2) {
        if pair[0].parts < pair[1].parts {
            return Err(fail(format!(
                "reduction parts grew from {} to {} — a retired shard came back",
                pair[0].parts, pair[1].parts
            )));
        }
    }
    if r.shard_epochs.len() != axis.n_shards {
        return Err(fail(format!(
            "{} epoch counters for {} shards",
            r.shard_epochs.len(),
            axis.n_shards
        )));
    }
    for (s, &e) in r.shard_epochs.iter().enumerate() {
        if e > axis.t_max as u64 {
            return Err(fail(format!("shard {s} ran {e} epochs over budget {}", axis.t_max)));
        }
    }
    let degraded_expected = !r.faults.is_empty();
    if degraded_expected != (r.outcome == SolveOutcome::Degraded) {
        return Err(fail(format!(
            "outcome {:?} inconsistent with {} logged faults",
            r.outcome,
            r.faults.len()
        )));
    }
    if matches!(axis.fault, FaultAxis::Straggler | FaultAxis::Crash | FaultAxis::Corrupt)
        && r.faults.is_empty()
    {
        return Err(fail(format!("{:?} axis injected no faults", axis.fault)));
    }
    let kinds: Vec<&str> = r.faults.iter().map(|f| f.kind.name()).collect();
    match axis.recovery {
        RecoveryAxis::Off => {
            if r.recovery != RecoveryReport::default() {
                return Err(fail(format!(
                    "recovery disarmed but the report is non-zero: {:?}",
                    r.recovery
                )));
            }
        }
        RecoveryAxis::Detect { .. } | RecoveryAxis::Adopt { .. } => {
            if !r.recovery.dead_shards.contains(&1) {
                return Err(fail(format!(
                    "crashed shard 1 never declared dead: {:?}",
                    r.recovery.dead_shards
                )));
            }
            if r.recovery.evictions < r.recovery.dead_shards.len() as u64 {
                return Err(fail(format!(
                    "{} deaths but only {} evictions",
                    r.recovery.dead_shards.len(),
                    r.recovery.evictions
                )));
            }
            if !kinds.contains(&"shard_declared_dead") {
                return Err(fail("no shard_declared_dead event in the fault log".into()));
            }
            let adopting = matches!(axis.recovery, RecoveryAxis::Adopt { .. });
            if adopting {
                if !r.recovery.adoptions.iter().any(|&(dead, _)| dead == 1) {
                    return Err(fail(format!(
                        "adoption armed but shard 1's rows were never adopted: {:?}",
                        r.recovery.adoptions
                    )));
                }
                if !kinds.contains(&"rows_adopted") {
                    return Err(fail("no rows_adopted event in the fault log".into()));
                }
            } else if !r.recovery.adoptions.is_empty() {
                return Err(fail(format!(
                    "adoption disarmed but adoptions happened: {:?}",
                    r.recovery.adoptions
                )));
            }
        }
    }
    if let Some(bound) = axis.max_relres {
        if r.relres > bound {
            return Err(fail(format!("relres {} above the axis bound {bound}", r.relres)));
        }
    }
    Ok(())
}
