//! One fuzzable solver configuration and its schedule-controlled runner.

use crate::fingerprint::fingerprint_run;
use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    solve_async_faulted, AdditiveMethod, AsyncOptions, AsyncResult, MgOptions, MgSetup,
    RecoveryOptions, ResComp, StopCriterion, WriteMode,
};
use asyncmg_problems::elasticity::elasticity_beam;
use asyncmg_problems::rhs::random_rhs;
use asyncmg_problems::stencil::{laplacian_27pt, laplacian_7pt};
use asyncmg_smoothers::SmootherKind;
use asyncmg_sparse::{simd, KernelSelect};
use asyncmg_telemetry::TelemetryProbe;
use asyncmg_threads::{Corruption, Fault, FaultPlan, ReadDelay, VirtualSched};

/// The test-problem families the fuzz matrix draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixFamily {
    /// 7-point Laplacian on an `n³` grid.
    SevenPt(usize),
    /// 27-point Laplacian on an `n³` grid.
    TwentySevenPt(usize),
    /// Elasticity cantilever beam, `n × 2 × 2` elements (3 dofs per node —
    /// the natural home of the blocked kernel axis).
    Elasticity(usize),
}

impl MatrixFamily {
    pub(crate) fn build(&self) -> asyncmg_sparse::Csr {
        match *self {
            MatrixFamily::SevenPt(n) => laplacian_7pt(n, n, n),
            MatrixFamily::TwentySevenPt(n) => laplacian_27pt(n, n, n),
            MatrixFamily::Elasticity(n) => {
                elasticity_beam(n, 2, 2, [n as f64, 1.0, 1.0], Default::default())
            }
        }
    }

    /// Interleaved unknowns per node (BoomerAMG's `num_functions`).
    pub fn num_functions(&self) -> usize {
        match *self {
            MatrixFamily::Elasticity(_) => 3,
            _ => 1,
        }
    }

    pub(crate) fn label(&self) -> String {
        match *self {
            MatrixFamily::SevenPt(n) => format!("7pt{n}"),
            MatrixFamily::TwentySevenPt(n) => format!("27pt{n}"),
            MatrixFamily::Elasticity(n) => format!("elast{n}"),
        }
    }
}

/// The fault-injection axis of the fuzz matrix. A non-`None` axis arms
/// [`RecoveryOptions::defended`] for the run, so the oracle can demand a
/// structured degraded outcome instead of a hang or a poisoned iterate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAxis {
    /// No injection: the plain fuzz configuration.
    None,
    /// Worker 0 is descheduled for extra steps over a window of rounds.
    Straggler,
    /// Grid team 1 crashes early and never corrects again.
    Crash,
    /// Grid 0's correction write is replaced by NaN at round 2.
    Corrupt,
    /// Grid 1's correction writes are dropped with probability ½ per round.
    Drop,
}

impl FaultAxis {
    /// All axes, `None` first (the order test matrices iterate in).
    pub const ALL: [FaultAxis; 5] = [
        FaultAxis::None,
        FaultAxis::Straggler,
        FaultAxis::Crash,
        FaultAxis::Corrupt,
        FaultAxis::Drop,
    ];

    /// The fault plan this axis injects, keyed to `seed` (probabilistic
    /// decisions and bit-flip targets vary with the scheduler seed; the
    /// injected sites are fixed per axis). `None` for [`FaultAxis::None`].
    pub fn plan(self, seed: u64) -> Option<FaultPlan> {
        match self {
            FaultAxis::None => None,
            FaultAxis::Straggler => Some(FaultPlan::new(seed).with(Fault::Straggler {
                worker: 0,
                from_round: 2,
                rounds: 4,
                steps: 5,
            })),
            FaultAxis::Crash => {
                Some(FaultPlan::new(seed).with(Fault::Crash { team: 1, at_round: 3 }))
            }
            FaultAxis::Corrupt => Some(FaultPlan::new(seed).with(Fault::CorruptWrite {
                grid: 0,
                at_round: 2,
                kind: Corruption::Nan,
            })),
            FaultAxis::Drop => {
                Some(FaultPlan::new(seed).with(Fault::DropWrite { grid: 1, prob: 0.5 }))
            }
        }
    }

    pub(crate) fn label(self) -> &'static str {
        match self {
            FaultAxis::None => "",
            FaultAxis::Straggler => "/straggler",
            FaultAxis::Crash => "/crash",
            FaultAxis::Corrupt => "/corrupt",
            FaultAxis::Drop => "/drop",
        }
    }
}

/// The kernel axis of the fuzz matrix: which operator representation the
/// hierarchy uses and whether the SIMD dot paths are forced on or off.
///
/// Every kernel layer promises bit-identical results, so the oracle demands
/// that *all* axis values of a case produce the same run fingerprint — a
/// kernel choice that perturbs a single bit anywhere is a harness failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelAxis {
    /// Auto selection (calibration-driven kernels, SIMD auto-detected).
    Auto,
    /// Scalar CSR kernels, SIMD disabled.
    CsrScalar,
    /// CSR kernels with the SIMD dot paths forced on.
    CsrSimd,
    /// Blocked BSR kernels, SIMD disabled.
    BsrScalar,
    /// Blocked BSR kernels with the SIMD dot paths forced on.
    BsrSimd,
}

impl KernelAxis {
    /// All axes, `Auto` first (the order test matrices iterate in).
    pub const ALL: [KernelAxis; 5] = [
        KernelAxis::Auto,
        KernelAxis::CsrScalar,
        KernelAxis::CsrSimd,
        KernelAxis::BsrScalar,
        KernelAxis::BsrSimd,
    ];

    /// The kernel selection this axis pins in [`asyncmg_amg::AmgOptions`].
    pub fn select(self) -> KernelSelect {
        match self {
            KernelAxis::Auto => KernelSelect::Auto,
            KernelAxis::CsrScalar | KernelAxis::CsrSimd => KernelSelect::Csr,
            KernelAxis::BsrScalar | KernelAxis::BsrSimd => KernelSelect::Bsr,
        }
    }

    /// The SIMD mode this axis pins process-wide for the run.
    pub fn simd_mode(self) -> simd::SimdMode {
        match self {
            KernelAxis::Auto => simd::SimdMode::Auto,
            KernelAxis::CsrScalar | KernelAxis::BsrScalar => simd::SimdMode::Off,
            KernelAxis::CsrSimd | KernelAxis::BsrSimd => simd::SimdMode::Force,
        }
    }

    fn label(self) -> &'static str {
        match self {
            KernelAxis::Auto => "",
            KernelAxis::CsrScalar => "/csr-scalar",
            KernelAxis::CsrSimd => "/csr-simd",
            KernelAxis::BsrScalar => "/bsr-scalar",
            KernelAxis::BsrSimd => "/bsr-simd",
        }
    }
}

/// One solver configuration of the fuzz matrix. Every field that affects
/// the execution is explicit, so a case plus a scheduler seed identifies a
/// run completely.
#[derive(Clone, Copy, Debug)]
pub struct FuzzCase {
    /// Test problem.
    pub family: MatrixFamily,
    /// Additive method under test.
    pub method: AdditiveMethod,
    /// Smoother on every level.
    pub smoother: SmootherKind,
    /// Shared-write flavour.
    pub write: WriteMode,
    /// Residual computation flavour.
    pub res_comp: ResComp,
    /// Stop criterion (`Tolerance` is excluded: its monitor thread is not
    /// schedule-controlled).
    pub criterion: StopCriterion,
    /// Corrections per grid.
    pub t_max: usize,
    /// Worker count.
    pub n_threads: usize,
    /// Seed of the right-hand side.
    pub rhs_seed: u64,
    /// Optional bounded read-delay injection (the paper's `δ`).
    pub delay: Option<ReadDelay>,
    /// Fault-injection axis (a non-`None` axis arms defended recovery).
    pub fault: FaultAxis,
    /// Kernel axis (operator representation × SIMD mode). Must never change
    /// the fingerprint.
    pub kernel: KernelAxis,
}

impl FuzzCase {
    /// A baseline case; the fuzz matrix mutates individual fields.
    pub fn base() -> Self {
        let mut opts = AsyncOptions::default();
        opts.t_max = 16;
        opts.n_threads = 3;
        FuzzCase {
            family: MatrixFamily::SevenPt(6),
            method: opts.method,
            smoother: MgOptions::default().smoother,
            write: opts.write,
            res_comp: opts.res_comp,
            criterion: opts.criterion,
            t_max: opts.t_max,
            n_threads: opts.n_threads,
            rhs_seed: 3,
            delay: None,
            fault: FaultAxis::None,
            kernel: KernelAxis::Auto,
        }
    }

    /// A compact, filterable name: `7pt6/multadd/wjacobi/lock/local`.
    pub fn label(&self) -> String {
        let method = match self.method {
            AdditiveMethod::Multadd => "multadd",
            AdditiveMethod::Afacx => "afacx",
            AdditiveMethod::Bpx => "bpx",
        };
        let smoother = match self.smoother {
            SmootherKind::WJacobi { .. } => "wjacobi",
            SmootherKind::L1Jacobi => "l1jacobi",
            SmootherKind::HybridJgs => "hybridjgs",
            SmootherKind::AsyncGs => "asyncgs",
        };
        let write = match self.write {
            WriteMode::Lock => "lock",
            WriteMode::Atomic => "atomic",
        };
        let res = match self.res_comp {
            ResComp::Local => "local",
            ResComp::Global => "global",
            ResComp::ResidualBased => "rbased",
        };
        let delay = if self.delay.is_some() { "/delay" } else { "" };
        format!(
            "{}/{method}/{smoother}/{write}/{res}{delay}{}{}",
            self.family.label(),
            self.fault.label(),
            self.kernel.label()
        )
    }

    pub(crate) fn setup(&self) -> MgSetup {
        let a = self.family.build();
        let aopts = AmgOptions {
            num_functions: self.family.num_functions(),
            kernel: self.kernel.select(),
            ..AmgOptions::default()
        };
        let h = build_hierarchy(a, &aopts);
        let mut opts = MgOptions::default();
        opts.smoother = self.smoother;
        MgSetup::new(h, opts)
    }

    fn async_opts(&self) -> AsyncOptions {
        let mut opts = AsyncOptions::default();
        opts.method = self.method;
        opts.res_comp = self.res_comp;
        opts.write = self.write;
        opts.criterion = self.criterion;
        opts.t_max = self.t_max;
        opts.n_threads = self.n_threads;
        opts.sync = false;
        if self.fault != FaultAxis::None {
            // Fault cases run defended so injected failures end in a
            // structured Degraded/Faulted outcome rather than a poisoned
            // iterate; fault-free cases stay bit-identical to earlier
            // harness revisions (no extra barriers).
            opts.recovery = RecoveryOptions::defended();
        }
        opts
    }

    /// Runs the case once under the virtual scheduler seeded with
    /// `sched_seed`, recording telemetry. The returned [`CaseRun`] is a
    /// deterministic function of `(self, sched_seed)` up to wall-clock
    /// timestamps, which the fingerprint excludes.
    pub fn run(&self, sched_seed: u64) -> CaseRun {
        // Pin the process-wide SIMD mode for this run. All modes are
        // bit-identical by construction, so a concurrent run under another
        // mode cannot change any result — the pin only controls which
        // implementation executes.
        simd::set_mode(self.kernel.simd_mode());
        let setup = self.setup();
        let b = random_rhs(setup.n(), self.rhs_seed);
        let opts = self.async_opts();
        let sched = match self.delay {
            Some(d) => VirtualSched::with_delay(sched_seed, d),
            None => VirtualSched::new(sched_seed),
        };
        let plan = self.fault.plan(sched_seed);
        let mut probe = TelemetryProbe::with_threads(self.n_threads);
        let result = solve_async_faulted(&setup, &b, &opts, &probe, Some(&sched), plan.as_ref());
        let trace = probe.take_trace();
        let decisions = sched.decisions();
        let fingerprint = fingerprint_run(&result, &trace);
        CaseRun { result, trace, decisions, fingerprint }
    }
}

/// The outcome of one schedule-controlled run.
pub struct CaseRun {
    /// The solver result (solution, residual, correction counts).
    pub result: AsyncResult,
    /// The recorded telemetry trace.
    pub trace: asyncmg_telemetry::SolveTrace,
    /// The scheduler's decision sequence (worker ranks in decision order).
    pub decisions: Vec<u32>,
    /// Canonical hash of the run (see [`fingerprint_run`]).
    pub fingerprint: u64,
}
