//! One fuzzable solver configuration and its schedule-controlled runner.

use crate::fingerprint::fingerprint_run;
use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::{
    solve_async_sched, AdditiveMethod, AsyncOptions, AsyncResult, MgOptions, MgSetup, ResComp,
    StopCriterion, WriteMode,
};
use asyncmg_problems::rhs::random_rhs;
use asyncmg_problems::stencil::{laplacian_27pt, laplacian_7pt};
use asyncmg_smoothers::SmootherKind;
use asyncmg_telemetry::TelemetryProbe;
use asyncmg_threads::{ReadDelay, VirtualSched};

/// The test-problem families the fuzz matrix draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixFamily {
    /// 7-point Laplacian on an `n³` grid.
    SevenPt(usize),
    /// 27-point Laplacian on an `n³` grid.
    TwentySevenPt(usize),
}

impl MatrixFamily {
    fn build(&self) -> asyncmg_sparse::Csr {
        match *self {
            MatrixFamily::SevenPt(n) => laplacian_7pt(n, n, n),
            MatrixFamily::TwentySevenPt(n) => laplacian_27pt(n, n, n),
        }
    }

    fn label(&self) -> String {
        match *self {
            MatrixFamily::SevenPt(n) => format!("7pt{n}"),
            MatrixFamily::TwentySevenPt(n) => format!("27pt{n}"),
        }
    }
}

/// One solver configuration of the fuzz matrix. Every field that affects
/// the execution is explicit, so a case plus a scheduler seed identifies a
/// run completely.
#[derive(Clone, Copy, Debug)]
pub struct FuzzCase {
    /// Test problem.
    pub family: MatrixFamily,
    /// Additive method under test.
    pub method: AdditiveMethod,
    /// Smoother on every level.
    pub smoother: SmootherKind,
    /// Shared-write flavour.
    pub write: WriteMode,
    /// Residual computation flavour.
    pub res_comp: ResComp,
    /// Stop criterion (`Tolerance` is excluded: its monitor thread is not
    /// schedule-controlled).
    pub criterion: StopCriterion,
    /// Corrections per grid.
    pub t_max: usize,
    /// Worker count.
    pub n_threads: usize,
    /// Seed of the right-hand side.
    pub rhs_seed: u64,
    /// Optional bounded read-delay injection (the paper's `δ`).
    pub delay: Option<ReadDelay>,
}

impl FuzzCase {
    /// A baseline case; the fuzz matrix mutates individual fields.
    pub fn base() -> Self {
        let mut opts = AsyncOptions::default();
        opts.t_max = 16;
        opts.n_threads = 3;
        FuzzCase {
            family: MatrixFamily::SevenPt(6),
            method: opts.method,
            smoother: MgOptions::default().smoother,
            write: opts.write,
            res_comp: opts.res_comp,
            criterion: opts.criterion,
            t_max: opts.t_max,
            n_threads: opts.n_threads,
            rhs_seed: 3,
            delay: None,
        }
    }

    /// A compact, filterable name: `7pt6/multadd/wjacobi/lock/local`.
    pub fn label(&self) -> String {
        let method = match self.method {
            AdditiveMethod::Multadd => "multadd",
            AdditiveMethod::Afacx => "afacx",
            AdditiveMethod::Bpx => "bpx",
        };
        let smoother = match self.smoother {
            SmootherKind::WJacobi { .. } => "wjacobi",
            SmootherKind::L1Jacobi => "l1jacobi",
            SmootherKind::HybridJgs => "hybridjgs",
            SmootherKind::AsyncGs => "asyncgs",
        };
        let write = match self.write {
            WriteMode::Lock => "lock",
            WriteMode::Atomic => "atomic",
        };
        let res = match self.res_comp {
            ResComp::Local => "local",
            ResComp::Global => "global",
            ResComp::ResidualBased => "rbased",
        };
        let delay = if self.delay.is_some() { "/delay" } else { "" };
        format!("{}/{method}/{smoother}/{write}/{res}{delay}", self.family.label())
    }

    fn setup(&self) -> MgSetup {
        let a = self.family.build();
        let h = build_hierarchy(a, &AmgOptions::default());
        let mut opts = MgOptions::default();
        opts.smoother = self.smoother;
        MgSetup::new(h, opts)
    }

    fn async_opts(&self) -> AsyncOptions {
        let mut opts = AsyncOptions::default();
        opts.method = self.method;
        opts.res_comp = self.res_comp;
        opts.write = self.write;
        opts.criterion = self.criterion;
        opts.t_max = self.t_max;
        opts.n_threads = self.n_threads;
        opts.sync = false;
        opts
    }

    /// Runs the case once under the virtual scheduler seeded with
    /// `sched_seed`, recording telemetry. The returned [`CaseRun`] is a
    /// deterministic function of `(self, sched_seed)` up to wall-clock
    /// timestamps, which the fingerprint excludes.
    pub fn run(&self, sched_seed: u64) -> CaseRun {
        let setup = self.setup();
        let b = random_rhs(setup.n(), self.rhs_seed);
        let opts = self.async_opts();
        let sched = match self.delay {
            Some(d) => VirtualSched::with_delay(sched_seed, d),
            None => VirtualSched::new(sched_seed),
        };
        let mut probe = TelemetryProbe::with_threads(self.n_threads);
        let result = solve_async_sched(&setup, &b, &opts, &probe, &sched);
        let trace = probe.take_trace();
        let decisions = sched.decisions();
        let fingerprint = fingerprint_run(&result, &trace);
        CaseRun { result, trace, decisions, fingerprint }
    }
}

/// The outcome of one schedule-controlled run.
pub struct CaseRun {
    /// The solver result (solution, residual, correction counts).
    pub result: AsyncResult,
    /// The recorded telemetry trace.
    pub trace: asyncmg_telemetry::SolveTrace,
    /// The scheduler's decision sequence (worker ranks in decision order).
    pub decisions: Vec<u32>,
    /// Canonical hash of the run (see [`fingerprint_run`]).
    pub fingerprint: u64,
}
