//! Canonical run fingerprints: hash what a schedule determines, skip what
//! it doesn't.
//!
//! Wall-clock timestamps (`t_ns`, phase durations, `elapsed`) differ
//! between two replays of the *same* interleaving, so they are excluded.
//! Everything else — solution bits, residual bits, per-grid correction
//! event streams, phase occurrence counts — is a pure function of the
//! schedule and is folded into a 64-bit FNV-1a digest.

use asyncmg_core::{AsyncResult, SolveOutcome};
use asyncmg_telemetry::{FaultKind, SolveTrace};

/// The FNV-1a digest engine, re-exported from `asyncmg-sparse` where it now
/// lives so that the solver service can key its hierarchy cache on
/// [`Csr::fingerprint`](asyncmg_sparse::Csr::fingerprint) without depending
/// on the harness. The harness API is unchanged.
pub use asyncmg_sparse::Fnv;

/// The canonical fingerprint of one solve: bit-exact over the solution
/// vector, the final relative residual, the residual history values,
/// per-grid correction counts and event streams (index and local residual,
/// not timestamps), and phase occurrence counts (not durations).
///
/// Two runs under the same [`VirtualSched`](asyncmg_threads::VirtualSched)
/// seed produce equal fingerprints; a different interleaving that changes
/// any floating-point accumulation order changes the fingerprint.
pub fn fingerprint_run(result: &AsyncResult, trace: &SolveTrace) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(result.x.len() as u64);
    for &v in &result.x {
        h.write_f64(v);
    }
    h.write_f64(result.relres);
    h.write_u64(result.grid_corrections.len() as u64);
    for &c in &result.grid_corrections {
        h.write_u64(c as u64);
    }
    h.write_u64(trace.residual_history.len() as u64);
    for s in &trace.residual_history {
        h.write_f64(s.relres);
    }
    h.write_u64(trace.grids.len() as u64);
    for g in &trace.grids {
        h.write_u64(g.corrections);
        h.write_u64(g.events.len() as u64);
        for e in &g.events {
            h.write_u64(e.index as u64);
            h.write_f64(e.local_res);
        }
    }
    for t in &trace.phase_totals {
        h.write_u64(t.count);
    }
    h.write_u64(trace.dropped_events);
    // Outcome and fault log: kinds and their sites are schedule-determined
    // (fault decisions are pure functions of plan seed and site); the
    // records' wall-clock timestamps are not, so only the kinds are hashed.
    h.write_u64(match result.outcome {
        SolveOutcome::Converged => 0,
        SolveOutcome::MaxIterations => 1,
        SolveOutcome::Degraded => 2,
        SolveOutcome::Faulted => 3,
    });
    h.write_u64(result.faults.len() as u64);
    for f in &result.faults {
        h.write_bytes(f.kind.name().as_bytes());
        h.write_u64(f.kind.grid().map_or(u64::MAX, u64::from));
        if let FaultKind::Straggler { worker, steps } = f.kind {
            h.write_u64(worker as u64);
            h.write_u64(steps as u64);
        }
        if let FaultKind::TeamCrash { team } = f.kind {
            h.write_u64(team as u64);
        }
    }
    h.finish()
}
