//! The resilient-session axis of the harness: drive fault plans through the
//! full degradation ladder and check the *final* outcome, not just one
//! solve's.
//!
//! A [`ResilienceAxis`] wraps a PR-4 [`FuzzCase`] (problem, method,
//! write/residual flavours, fault axis) and runs it through
//! [`Solver::resilient`] with a seeded deterministic session: attempt `a`
//! executes under `VirtualSched::new(mix(session_seed, a))`, so the whole
//! session — escalations, warm starts, final bits — is a pure function of
//! `(axis, session_seed)`. [`check_session`] is the session oracle: the run
//! must end structurally (converged at tolerance, or retry budget exhausted
//! with a non-empty escalation log), never hang, and never yield a
//! non-finite iterate.

use crate::case::{FaultAxis, FuzzCase};
use crate::fingerprint::Fnv;
use crate::oracle::Violation;
use asyncmg_core::{AdditiveMethod, Method, RetryPolicy, SessionReport, SolveOutcome, Solver};
use asyncmg_problems::rhs::random_rhs;

/// One resilient-session configuration of the fuzz matrix.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceAxis {
    /// The underlying fuzz case. Its stop criterion is ignored — sessions
    /// always target [`ResilienceAxis::tolerance`]; its fault axis is
    /// injected on the asynchronous ladder rungs.
    pub case: FuzzCase,
    /// Session tolerance (the oracle's convergence bar).
    pub tolerance: f64,
    /// Retry budget — the default ladder has 5 rungs, so 6 attempts walk
    /// it end to end with one retry to spare.
    pub max_attempts: u32,
}

impl ResilienceAxis {
    /// An axis over `case` with the default session bar (1e-6, 6 attempts).
    pub fn new(case: FuzzCase) -> Self {
        ResilienceAxis { case, tolerance: 1e-6, max_attempts: 6 }
    }

    /// A filterable label: the case's label plus the session suffix.
    pub fn label(&self) -> String {
        format!("{}/session", self.case.label())
    }

    /// Runs the session deterministically under `session_seed`, recording
    /// telemetry. The returned [`SessionRun`] is a pure function of
    /// `(self, session_seed)` up to wall-clock durations, which the
    /// fingerprint excludes.
    pub fn run(&self, session_seed: u64) -> SessionRun {
        let setup = self.case.setup();
        let b = random_rhs(setup.n(), self.case.rhs_seed);
        let method = match self.case.method {
            AdditiveMethod::Multadd => Method::Multadd,
            AdditiveMethod::Afacx => Method::Afacx,
            AdditiveMethod::Bpx => Method::Bpx,
        };
        let plan = self.case.fault.plan(session_seed);
        let mut solver = Solver::new(&setup)
            .method(method)
            .threads(self.case.n_threads)
            .t_max(self.case.t_max)
            .res_comp(self.case.res_comp)
            .write_mode(self.case.write)
            .tolerance(self.tolerance)
            .retry(RetryPolicy { max_attempts: self.max_attempts, ..Default::default() })
            .session_seed(session_seed)
            .with_trace();
        if let Some(plan) = plan.as_ref() {
            solver = solver.fault_plan(plan);
        }
        let report = solver.resilient(&b);
        let fingerprint = fingerprint_session(&report);
        SessionRun { report, fingerprint }
    }
}

/// The outcome of one schedule-controlled resilient session.
pub struct SessionRun {
    /// The full session report (attempts, escalations, checkpoints, trace).
    pub report: SessionReport,
    /// Canonical hash of the session (see [`fingerprint_session`]).
    pub fingerprint: u64,
}

/// The canonical fingerprint of one session: bit-exact over the final
/// iterate and residual, the per-attempt rungs, outcomes, residuals,
/// escalation reasons and fault-kind streams, and the checkpoint counters.
/// Wall-clock durations and timestamps are excluded, so two replays of the
/// same seeded session produce equal fingerprints.
pub fn fingerprint_session(report: &SessionReport) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(report.x.len() as u64);
    for &v in &report.x {
        h.write_f64(v);
    }
    h.write_f64(report.relres);
    h.write_u64(report.converged as u64);
    h.write_u64(outcome_ordinal(report.outcome));
    h.write_u64(report.deadline_exhausted as u64);
    h.write_u64(report.attempts.len() as u64);
    for a in &report.attempts {
        h.write_u64(a.index as u64);
        h.write_bytes(a.rung.name().as_bytes());
        h.write_f64(a.relres);
        h.write_u64(outcome_ordinal(a.outcome));
        h.write_f64(a.corrections);
        h.write_u64(a.warm_start as u64);
        h.write_bytes(a.escalation.map_or("", |e| e.name()).as_bytes());
        h.write_u64(a.sched_seed.unwrap_or(u64::MAX));
        h.write_u64(a.faults.len() as u64);
        for f in &a.faults {
            h.write_bytes(f.kind.name().as_bytes());
            h.write_u64(f.kind.grid().map_or(u64::MAX, u64::from));
        }
    }
    h.write_u64(report.checkpoints.taken as u64);
    h.write_u64(report.checkpoints.restored as u64);
    h.finish()
}

fn outcome_ordinal(outcome: SolveOutcome) -> u64 {
    match outcome {
        SolveOutcome::Converged => 0,
        SolveOutcome::MaxIterations => 1,
        SolveOutcome::Degraded => 2,
        SolveOutcome::Faulted => 3,
    }
}

/// The session oracle: what must hold for *every* fault plan and seed.
///
/// A resilient session must end structurally — either converged at the
/// axis tolerance, or with its retry budget exhausted and a non-empty
/// escalation log explaining every failed attempt — with a finite iterate
/// either way. Fault-free axes must additionally log no faults at all.
pub fn check_session(axis: &ResilienceAxis, run: &SessionRun) -> Result<(), Violation> {
    let r = &run.report;
    let fail = |reason: String| Violation { case: axis.label(), reason };
    if let Some(i) = r.x.iter().position(|v| !v.is_finite()) {
        return Err(fail(format!("non-finite x[{i}] = {}", r.x[i])));
    }
    if r.attempts.is_empty() {
        return Err(fail("session made no attempts".into()));
    }
    if r.attempts.len() > axis.max_attempts as usize {
        return Err(fail(format!(
            "{} attempts exceed the budget of {}",
            r.attempts.len(),
            axis.max_attempts
        )));
    }
    if r.converged {
        if r.relres.is_nan() || r.relres > axis.tolerance {
            return Err(fail(format!(
                "converged session reports relres {} above tolerance {}",
                r.relres, axis.tolerance
            )));
        }
        if r.outcome != SolveOutcome::Converged {
            return Err(fail(format!("converged session reports outcome {:?}", r.outcome)));
        }
        // Every attempt before the converging one must carry an escalation
        // reason; the converging one must not.
        let (last, rest) = r.attempts.split_last().unwrap();
        if last.escalation.is_some() {
            return Err(fail("converging attempt carries an escalation reason".into()));
        }
        if let Some(a) = rest.iter().find(|a| a.escalation.is_none()) {
            return Err(fail(format!("non-final attempt {} lacks an escalation reason", a.index)));
        }
    } else {
        if r.attempts.len() != axis.max_attempts as usize && !r.deadline_exhausted {
            return Err(fail(format!(
                "unconverged session stopped after {} of {} attempts without a deadline",
                r.attempts.len(),
                axis.max_attempts
            )));
        }
        if r.escalations().is_empty() {
            return Err(fail("unconverged session has an empty escalation log".into()));
        }
    }
    if axis.case.fault == FaultAxis::None && r.attempts.iter().any(|a| !a.faults.is_empty()) {
        return Err(fail("fault-free session logged faults".into()));
    }
    // The trace must carry one attempt record per attempt.
    if let Some(trace) = r.trace.as_ref() {
        if trace.attempts.len() != r.attempts.len() {
            return Err(fail(format!(
                "trace has {} attempt records for {} attempts",
                trace.attempts.len(),
                r.attempts.len()
            )));
        }
    }
    Ok(())
}
