//! Smoothed interpolants for Multadd.
//!
//! Multadd (Section II.B.1) replaces the plain two-level interpolants with
//! `P̄_{k+1}^k = G_k P_{k+1}^k`, where `G_k = I − M_k⁻¹ A_k` is the smoother
//! iteration matrix. The paper keeps `M_k` diagonal when building the
//! interpolants — ω-Jacobi for most smoothers, ℓ1-Jacobi when the ℓ1-Jacobi
//! smoother is used — "to keep the smoothed interpolants sparse".

use crate::hierarchy::Hierarchy;
use asyncmg_sparse::{add_scaled, auto_setup_threads, spgemm_parallel, transpose_parallel, Csr};

/// Which diagonal iteration matrix to build `P̄` with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterpSmoothing {
    /// `G = I − ω D⁻¹ A`.
    WJacobi {
        /// The Jacobi weight ω.
        omega: f64,
    },
    /// `G = I − D₁⁻¹ A` with `(D₁)_ii = Σ_j |a_ij|`.
    L1Jacobi,
}

/// The smoothed two-level interpolant `P̄ = (I − W A) P` and its transpose,
/// with `W` the diagonal weight matrix of `kind`.
pub fn smoothed_interpolant(a: &Csr, p: &Csr, kind: InterpSmoothing) -> (Csr, Csr) {
    smoothed_interpolant_with_diag(a, None, p, kind)
}

/// As [`smoothed_interpolant`], reusing a precomputed main diagonal of `a`
/// when one is available (the hierarchy caches one per level).
pub fn smoothed_interpolant_with_diag(
    a: &Csr,
    diag: Option<&[f64]>,
    p: &Csr,
    kind: InterpSmoothing,
) -> (Csr, Csr) {
    let weights: Vec<f64> = match kind {
        InterpSmoothing::WJacobi { omega } => {
            let owned;
            let d = match diag {
                Some(d) => d,
                None => {
                    owned = a.diag();
                    &owned
                }
            };
            d.iter().map(|&d| if d != 0.0 { omega / d } else { 0.0 }).collect()
        }
        InterpSmoothing::L1Jacobi => {
            a.l1_row_norms().iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect()
        }
    };
    // P̄ = P − W (A P), with the product and transpose parallelised on large
    // levels (bit-identical to the serial kernels at any thread count).
    let threads = auto_setup_threads(a.nnz());
    let mut ap = spgemm_parallel(a, p, threads);
    ap.scale_rows(&weights);
    let p_bar = add_scaled(p, &ap, 1.0, -1.0);
    let r_bar = transpose_parallel(&p_bar, threads);
    (p_bar, r_bar)
}

/// Smoothed interpolants for every non-coarsest level of a hierarchy.
pub fn smoothed_interpolants(h: &Hierarchy, kind: InterpSmoothing) -> Vec<(Csr, Csr)> {
    h.levels
        .iter()
        .filter_map(|l| {
            l.p.as_ref().map(|p| smoothed_interpolant_with_diag(&l.a, Some(&l.diag), p, kind))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{build_hierarchy, AmgOptions};
    use asyncmg_problems::stencil::laplacian_7pt;

    #[test]
    fn smoothed_interpolant_matches_definition() {
        let a = laplacian_7pt(5, 5, 5);
        let h = build_hierarchy(a, &AmgOptions::default());
        let p = h.levels[0].p.as_ref().unwrap();
        let a0 = &h.levels[0].a;
        let omega = 0.9;
        let (p_bar, r_bar) = smoothed_interpolant(a0, p, InterpSmoothing::WJacobi { omega });
        // Check P̄ x = P x − ω D⁻¹ A P x on a random-ish vector.
        let nc = p.ncols();
        let xc: Vec<f64> = (0..nc).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let n = p.nrows();
        let mut px = vec![0.0; n];
        p.spmv(&xc, &mut px);
        let mut apx = vec![0.0; n];
        a0.spmv(&px, &mut apx);
        let d = a0.diag();
        let mut pbx = vec![0.0; n];
        p_bar.spmv(&xc, &mut pbx);
        for i in 0..n {
            let expect = px[i] - omega / d[i] * apx[i];
            assert!((pbx[i] - expect).abs() < 1e-10, "row {i}");
        }
        assert_eq!(&p_bar.transpose(), &r_bar);
    }

    #[test]
    fn l1_variant_differs_from_jacobi() {
        let a = laplacian_7pt(4, 4, 4);
        let h = build_hierarchy(a, &AmgOptions::default());
        let p = h.levels[0].p.as_ref().unwrap();
        let a0 = &h.levels[0].a;
        let (pw, _) = smoothed_interpolant(a0, p, InterpSmoothing::WJacobi { omega: 0.9 });
        let (pl, _) = smoothed_interpolant(a0, p, InterpSmoothing::L1Jacobi);
        assert_eq!(pw.nrows(), pl.nrows());
        assert!(pw.vals().iter().zip(pl.vals()).any(|(x, y)| (x - y).abs() > 1e-12));
    }

    #[test]
    fn one_pair_per_interior_level() {
        let a = laplacian_7pt(8, 8, 8);
        let h = build_hierarchy(a, &AmgOptions::default());
        let bars = smoothed_interpolants(&h, InterpSmoothing::WJacobi { omega: 0.9 });
        assert_eq!(bars.len(), h.n_levels() - 1);
        for (k, (pb, rb)) in bars.iter().enumerate() {
            assert_eq!(pb.nrows(), h.levels[k].a.nrows());
            assert_eq!(pb.ncols(), h.levels[k + 1].a.nrows());
            assert_eq!(rb.nrows(), pb.ncols());
        }
    }

    #[test]
    fn smoothed_interpolant_denser_than_plain() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let p = h.levels[0].p.as_ref().unwrap();
        let (p_bar, _) =
            smoothed_interpolant(&h.levels[0].a, p, InterpSmoothing::WJacobi { omega: 0.9 });
        assert!(p_bar.nnz() > p.nnz());
    }
}
