//! Interpolation (prolongation) operators.
//!
//! Three schemes are provided:
//!
//! * **Direct** — each F-point interpolates only from its strong C
//!   neighbours with row-sum-preserving scaling,
//! * **Classical modified** — the scheme the paper selects in BoomerAMG
//!   ("classical modified interpolation"): strong F-F connections are
//!   distributed over common C-points (with sign filtering), and lumped into
//!   the diagonal when no compatible common C-point exists,
//! * **Multipass** — long-range interpolation for aggressively coarsened
//!   levels, where F-points may have no strong C neighbour at all; built in
//!   passes through already-interpolated neighbours.

use crate::coarsen::Cf;
use crate::strength::Strength;
use asyncmg_sparse::Csr;

/// Interpolation scheme selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interpolation {
    /// Direct interpolation from strong C neighbours.
    Direct,
    /// Classical interpolation with the "modified" F-F treatment.
    ClassicalModified,
    /// Multipass interpolation (required after aggressive coarsening).
    Multipass,
}

/// Builds the prolongation matrix `P` (`n_fine × n_coarse`).
///
/// `trunc` ∈ [0, 1): interpolation weights smaller than `trunc · max|w|`
/// within a row are dropped and the remaining weights rescaled to preserve
/// the row sum (BoomerAMG's truncation).
pub fn build_interpolation(
    a: &Csr,
    s: &Strength,
    cf: &[Cf],
    kind: Interpolation,
    trunc: f64,
) -> Csr {
    let p = match kind {
        Interpolation::Direct => direct(a, s, cf),
        Interpolation::ClassicalModified => classical_modified(a, s, cf),
        Interpolation::Multipass => multipass(a, s, cf),
    };
    if trunc > 0.0 {
        truncate(&p, trunc)
    } else {
        p
    }
}

/// Maps each point to its coarse index (C points only).
pub fn coarse_map(cf: &[Cf]) -> (Vec<u32>, usize) {
    let mut map = vec![u32::MAX; cf.len()];
    let mut nc = 0u32;
    for (i, &c) in cf.iter().enumerate() {
        if c == Cf::C {
            map[i] = nc;
            nc += 1;
        }
    }
    (map, nc as usize)
}

struct RowBuilder {
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl RowBuilder {
    fn new(n: usize) -> Self {
        RowBuilder { row_ptr: Vec::with_capacity(n + 1), col_idx: Vec::new(), vals: Vec::new() }
    }

    fn push_row(&mut self, entries: &mut Vec<(u32, f64)>) {
        entries.sort_unstable_by_key(|&(c, _)| c);
        for &(c, v) in entries.iter() {
            self.col_idx.push(c);
            self.vals.push(v);
        }
        self.row_ptr.push(self.col_idx.len() as u32);
        entries.clear();
    }

    fn finish(mut self, nrows: usize, ncols: usize) -> Csr {
        self.row_ptr.insert(0, 0);
        assert_eq!(self.row_ptr.len(), nrows + 1);
        Csr::from_raw(nrows, ncols, self.row_ptr, self.col_idx, self.vals)
    }
}

/// Direct interpolation with separate positive/negative scaling
/// (Stüben's formula): for F-point `i` and strong C neighbour `j`,
/// `w_ij = −α_i a_ij / a_ii` (negative couplings) or
/// `w_ij = −β_i a_ij / a_ii` (positive), where `α_i`/`β_i` are the ratios of
/// the total to the interpolated negative/positive off-diagonal mass.
fn direct(a: &Csr, s: &Strength, cf: &[Cf]) -> Csr {
    let n = a.nrows();
    let (cmap, nc) = coarse_map(cf);
    let mut b = RowBuilder::new(n);
    let mut entries: Vec<(u32, f64)> = Vec::new();
    for i in 0..n {
        if cf[i] == Cf::C {
            entries.push((cmap[i], 1.0));
            b.push_row(&mut entries);
            continue;
        }
        let strong: &[u32] = s.deps(i);
        let (cols, vals) = a.row(i);
        let mut diag = 0.0;
        let (mut neg_all, mut pos_all, mut neg_c, mut pos_c) = (0.0, 0.0, 0.0, 0.0);
        for (&j, &v) in cols.iter().zip(vals) {
            let ju = j as usize;
            if ju == i {
                diag = v;
                continue;
            }
            if v < 0.0 {
                neg_all += v;
            } else {
                pos_all += v;
            }
            if cf[ju] == Cf::C && strong.contains(&j) {
                if v < 0.0 {
                    neg_c += v;
                } else {
                    pos_c += v;
                }
            }
        }
        let alpha = if neg_c != 0.0 { neg_all / neg_c } else { 0.0 };
        let beta = if pos_c != 0.0 { pos_all / pos_c } else { 0.0 };
        // Positive mass without positive C neighbours is lumped into the
        // diagonal.
        let mut d = diag;
        if pos_c == 0.0 {
            d += pos_all;
        }
        if neg_c == 0.0 {
            d += neg_all;
        }
        for (&j, &v) in cols.iter().zip(vals) {
            let ju = j as usize;
            if ju != i && cf[ju] == Cf::C && strong.contains(&j) {
                let scale = if v < 0.0 { alpha } else { beta };
                if scale != 0.0 && d != 0.0 {
                    entries.push((cmap[ju], -scale * v / d));
                }
            }
        }
        b.push_row(&mut entries);
    }
    b.finish(n, nc)
}

/// Classical modified interpolation (hypre's `mod_classical`).
fn classical_modified(a: &Csr, s: &Strength, cf: &[Cf]) -> Csr {
    let n = a.nrows();
    let (cmap, nc) = coarse_map(cf);
    // marker[j] = i means j ∈ C_i during the processing of row i.
    let mut marker = vec![u32::MAX; n];
    let mut b = RowBuilder::new(n);
    let mut entries: Vec<(u32, f64)> = Vec::new();
    let mut numer: Vec<f64> = vec![0.0; n]; // indexed by fine col, C_i only
    for i in 0..n {
        if cf[i] == Cf::C {
            entries.push((cmap[i], 1.0));
            b.push_row(&mut entries);
            continue;
        }
        let strong = s.deps(i);
        let (cols, vals) = a.row(i);
        // Classify neighbours.
        let mut c_pts: Vec<u32> = Vec::new();
        let mut f_strong: Vec<(u32, f64)> = Vec::new();
        let mut diag = 0.0;
        let mut weak_sum = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            let ju = j as usize;
            if ju == i {
                diag = v;
            } else if strong.contains(&j) {
                if cf[ju] == Cf::C {
                    c_pts.push(j);
                    marker[ju] = i as u32;
                    numer[ju] = v;
                } else {
                    f_strong.push((j, v));
                }
            } else {
                weak_sum += v;
            }
        }
        let mut denom = diag + weak_sum;
        // Distribute each strong F-F connection over common C-points (and
        // the connection back to i), filtering by sign against a_mm.
        for &(m, a_im) in &f_strong {
            let mu = m as usize;
            let (m_cols, m_vals) = a.row(mu);
            let a_mm = a.get(mu, mu);
            let mut dist_sum = 0.0;
            let mut a_mi = 0.0;
            for (&k, &v) in m_cols.iter().zip(m_vals) {
                let ku = k as usize;
                let opposite = v * a_mm < 0.0;
                if !opposite {
                    continue;
                }
                if marker[ku] == i as u32 {
                    dist_sum += v;
                } else if ku == i {
                    a_mi = v;
                    dist_sum += v;
                }
            }
            if dist_sum == 0.0 {
                // No compatible common C-point: lump into the diagonal
                // (the "modified" part of the scheme).
                denom += a_im;
            } else {
                let f = a_im / dist_sum;
                for (&k, &v) in m_cols.iter().zip(m_vals) {
                    let ku = k as usize;
                    if v * a_mm < 0.0 && marker[ku] == i as u32 {
                        numer[ku] += f * v;
                    }
                }
                denom += f * a_mi;
            }
        }
        if denom != 0.0 {
            for &j in &c_pts {
                let w = -numer[j as usize] / denom;
                if w != 0.0 {
                    entries.push((cmap[j as usize], w));
                }
            }
        }
        b.push_row(&mut entries);
    }
    b.finish(n, nc)
}

/// Multipass interpolation for aggressive coarsening.
///
/// Pass 1 gives direct interpolation to F-points with strong C neighbours;
/// subsequent passes interpolate the remaining F-points through the rows of
/// already-interpolated strong neighbours, lumping unusable connections into
/// the diagonal. Preserves constants whenever `A` has zero row sums.
fn multipass(a: &Csr, s: &Strength, cf: &[Cf]) -> Csr {
    let n = a.nrows();
    let (cmap, nc) = coarse_map(cf);
    // rows[i] = Some(list of (coarse col, weight)).
    let mut rows: Vec<Option<Vec<(u32, f64)>>> = vec![None; n];
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..n {
        if cf[i] == Cf::C {
            rows[i] = Some(vec![(cmap[i], 1.0)]);
        } else {
            pending.push(i);
        }
    }
    // Pass 1: direct interpolation where a strong C neighbour exists.
    let direct_p = direct(a, s, cf);
    pending.retain(|&i| {
        let has_strong_c = s.deps(i).iter().any(|&j| cf[j as usize] == Cf::C);
        if has_strong_c {
            let (cols, vals) = direct_p.row(i);
            rows[i] = Some(cols.iter().copied().zip(vals.iter().copied()).collect());
            false
        } else {
            true
        }
    });
    // Later passes: interpolate through done strong neighbours.
    let mut acc: Vec<f64> = vec![0.0; nc];
    let mut touched: Vec<u32> = Vec::new();
    while !pending.is_empty() {
        let mut progressed = false;
        let mut next_pending: Vec<usize> = Vec::new();
        let snapshot: Vec<bool> = rows.iter().map(|r| r.is_some()).collect();
        for &i in &pending {
            let strong = s.deps(i);
            let usable: Vec<u32> =
                strong.iter().copied().filter(|&m| snapshot[m as usize]).collect();
            if usable.is_empty() {
                next_pending.push(i);
                continue;
            }
            let (cols, vals) = a.row(i);
            let mut denom = 0.0;
            // Lump: diagonal + every connection that is not a usable strong
            // neighbour.
            for (&j, &v) in cols.iter().zip(vals) {
                if j as usize == i || !usable.contains(&j) {
                    denom += v;
                }
            }
            touched.clear();
            for (&j, &v) in cols.iter().zip(vals) {
                if j as usize != i && usable.contains(&j) {
                    for &(c, w) in rows[j as usize].as_ref().unwrap() {
                        if acc[c as usize] == 0.0 && !touched.contains(&c) {
                            touched.push(c);
                        }
                        acc[c as usize] += v * w;
                    }
                }
            }
            if denom != 0.0 {
                let mut row: Vec<(u32, f64)> = touched
                    .iter()
                    .map(|&c| (c, -acc[c as usize] / denom))
                    .filter(|&(_, w)| w != 0.0)
                    .collect();
                row.sort_unstable_by_key(|&(c, _)| c);
                rows[i] = Some(row);
                progressed = true;
            } else {
                rows[i] = Some(Vec::new());
                progressed = true;
            }
            for &c in &touched {
                acc[c as usize] = 0.0;
            }
        }
        pending = next_pending;
        if !progressed && !pending.is_empty() {
            // Disconnected F-points (no path to any C point): zero rows.
            for &i in &pending {
                rows[i] = Some(Vec::new());
            }
            pending.clear();
        }
    }
    let mut b = RowBuilder::new(n);
    let mut entries: Vec<(u32, f64)> = Vec::new();
    for row in rows.into_iter() {
        entries.extend(row.unwrap());
        b.push_row(&mut entries);
    }
    b.finish(n, nc)
}

/// Drops weights below `trunc · max|w|` per row, rescaling survivors to
/// preserve the row sum.
fn truncate(p: &Csr, trunc: f64) -> Csr {
    let n = p.nrows();
    let mut b = RowBuilder::new(n);
    let mut entries: Vec<(u32, f64)> = Vec::new();
    for i in 0..n {
        let (cols, vals) = p.row(i);
        if cols.is_empty() {
            b.push_row(&mut entries);
            continue;
        }
        let max_w = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let threshold = trunc * max_w;
        let total: f64 = vals.iter().sum();
        let mut kept = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if v.abs() >= threshold {
                entries.push((c, v));
                kept += v;
            }
        }
        if kept != 0.0 && total != 0.0 {
            let scale = total / kept;
            for e in &mut entries {
                e.1 *= scale;
            }
        }
        b.push_row(&mut entries);
    }
    b.finish(n, p.ncols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::{coarsen, Coarsening};
    use crate::strength::classical_strength;
    use asyncmg_sparse::Coo;

    fn laplace1d(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    fn laplace2d_periodicish(n: usize) -> Csr {
        // 2-D 5-point with zero row sums (Neumann-like interior everywhere)
        // so constants are in the null space — ideal for row-sum tests.
        let m = n * n;
        let mut c = Coo::new(m, m);
        for j in 0..n {
            for i in 0..n {
                let id = i + n * j;
                let mut deg = 0.0;
                let mut nb = |cond: bool, other: usize, deg: &mut f64| {
                    if cond {
                        c.push(id, other, -1.0);
                        *deg += 1.0;
                    }
                };
                nb(i > 0, id.wrapping_sub(1), &mut deg);
                nb(i + 1 < n, id + 1, &mut deg);
                nb(j > 0, id.wrapping_sub(n), &mut deg);
                nb(j + 1 < n, id + n, &mut deg);
                c.push(id, id, deg);
            }
        }
        c.to_csr()
    }

    fn cf_and_strength(a: &Csr, method: Coarsening) -> (Strength, Vec<Cf>) {
        let s = classical_strength(a, 0.25);
        let cf = coarsen(&s, method, 11);
        (s, cf)
    }

    #[test]
    fn c_rows_are_identity() {
        let a = laplace1d(10);
        let (s, cf) = cf_and_strength(&a, Coarsening::Rs);
        for kind in
            [Interpolation::Direct, Interpolation::ClassicalModified, Interpolation::Multipass]
        {
            let p = build_interpolation(&a, &s, &cf, kind, 0.0);
            let (cmap, nc) = coarse_map(&cf);
            assert_eq!(p.ncols(), nc);
            for i in 0..10 {
                if cf[i] == Cf::C {
                    let (cols, vals) = p.row(i);
                    assert_eq!(cols, &[cmap[i]]);
                    assert_eq!(vals, &[1.0]);
                }
            }
        }
    }

    #[test]
    fn zero_row_sum_gives_unit_p_rows() {
        // With zero row sums, classical interpolation preserves constants:
        // every P row sums to 1.
        let a = laplace2d_periodicish(6);
        let (s, cf) = cf_and_strength(&a, Coarsening::Hmis);
        for kind in [Interpolation::Direct, Interpolation::ClassicalModified] {
            let p = build_interpolation(&a, &s, &cf, kind, 0.0);
            for i in 0..a.nrows() {
                let sum: f64 = p.row(i).1.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{kind:?} row {i} sums to {sum}");
            }
        }
    }

    #[test]
    fn multipass_preserves_constants_after_aggressive() {
        let a = laplace2d_periodicish(8);
        let s = classical_strength(&a, 0.25);
        let cf = crate::coarsen::aggressive_coarsen(&s, Coarsening::Hmis, 3);
        let p = build_interpolation(&a, &s, &cf, Interpolation::Multipass, 0.0);
        for i in 0..a.nrows() {
            let sum: f64 = p.row(i).1.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn interpolation_weights_bounded() {
        let a = laplace1d(20);
        let (s, cf) = cf_and_strength(&a, Coarsening::Rs);
        let p = build_interpolation(&a, &s, &cf, Interpolation::ClassicalModified, 0.0);
        for v in p.vals() {
            assert!(v.abs() <= 1.0 + 1e-12, "weight {v} out of range");
        }
    }

    #[test]
    fn truncation_preserves_row_sums() {
        let a = laplace2d_periodicish(6);
        let (s, cf) = cf_and_strength(&a, Coarsening::Hmis);
        let p = build_interpolation(&a, &s, &cf, Interpolation::ClassicalModified, 0.0);
        let pt = build_interpolation(&a, &s, &cf, Interpolation::ClassicalModified, 0.3);
        assert!(pt.nnz() <= p.nnz());
        for i in 0..p.nrows() {
            let s0: f64 = p.row(i).1.iter().sum();
            let s1: f64 = pt.row(i).1.iter().sum();
            assert!((s0 - s1).abs() < 1e-12);
        }
    }

    #[test]
    fn every_f_row_nonempty_on_connected_problem() {
        let a = laplace1d(30);
        let (s, cf) = cf_and_strength(&a, Coarsening::Hmis);
        let p = build_interpolation(&a, &s, &cf, Interpolation::ClassicalModified, 0.0);
        for i in 0..30 {
            assert!(!p.row(i).0.is_empty(), "empty P row {i} ({:?})", cf[i]);
        }
    }
}
