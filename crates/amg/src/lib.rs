//! Algebraic multigrid setup — the from-scratch BoomerAMG substitute.
//!
//! The paper generates its prolongation and coarse-grid matrices with the
//! BoomerAMG package, configured with HMIS coarsening, one or two aggressive
//! levels, and classical modified interpolation. This crate reimplements
//! that setup pipeline:
//!
//! 1. [`strength::classical_strength`] — classical strength of connection,
//! 2. [`coarsen`] — Ruge-Stüben first pass, PMIS, HMIS, and two-stage
//!    aggressive coarsening over the distance-2 strength graph,
//! 3. [`interp`] — direct, classical modified, and multipass interpolation,
//! 4. [`hierarchy::build_hierarchy`] — Galerkin products `A_{k+1} = Pᵀ A_k P`
//!    down to a dense-LU-factorable coarsest grid,
//! 5. [`smoothed`] — the smoothed interpolants `P̄ = (I − ωD⁻¹A) P` that
//!    define Multadd.

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod coarsen;
pub mod hierarchy;
pub mod interp;
pub mod smoothed;
pub mod strength;

pub use coarsen::{Cf, Coarsening};
pub use hierarchy::{
    build_hierarchy, build_hierarchy_probed, try_build_hierarchy, AmgOptions, BuildError,
    Hierarchy, Level,
};
pub use interp::Interpolation;
pub use smoothed::{
    smoothed_interpolant, smoothed_interpolant_with_diag, smoothed_interpolants, InterpSmoothing,
};
pub use strength::{classical_strength, Strength};
