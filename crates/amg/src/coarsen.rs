//! C/F coarsening: Ruge-Stüben first pass, PMIS, HMIS and aggressive
//! (two-stage) coarsening.
//!
//! The paper generates its hierarchies with BoomerAMG using *HMIS coarsening
//! with one or two aggressive levels*. HMIS (De Sterck, Yang & Heys 2006)
//! combines one pass of the classical Ruge-Stüben algorithm with a PMIS pass
//! over the resulting C-points; aggressive coarsening re-coarsens the
//! C-points once more over the distance-2 strength graph.

use crate::strength::{distance2_strength, Strength};

/// The C/F split assignment of one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cf {
    /// Coarse point (survives to the next level).
    C,
    /// Fine point (interpolated).
    F,
    /// Not yet decided (only during the algorithms).
    Undecided,
}

/// Available coarsening algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coarsening {
    /// Classical Ruge-Stüben, first pass only.
    Rs,
    /// Parallel modified independent set.
    Pmis,
    /// Hybrid MIS: RS first pass followed by PMIS over its C-points
    /// (the paper's BoomerAMG choice).
    Hmis,
}

/// Deterministic xorshift-style generator for PMIS tie-breaking weights.
/// Implemented inline so the AMG crate needs no RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs the selected coarsening on strength graph `s`.
pub fn coarsen(s: &Strength, method: Coarsening, seed: u64) -> Vec<Cf> {
    match method {
        Coarsening::Rs => rs_first_pass(s),
        Coarsening::Pmis => {
            let all = vec![true; s.n()];
            pmis_on_subset(s.s(), s, &all, seed)
        }
        Coarsening::Hmis => hmis(s, seed),
    }
}

/// Two-stage aggressive coarsening: coarsen with `method`, then re-coarsen
/// the C-points with PMIS on the distance-2 strength graph.
pub fn aggressive_coarsen(s: &Strength, method: Coarsening, seed: u64) -> Vec<Cf> {
    let stage1 = coarsen(s, method, seed);
    let c_mask: Vec<bool> = stage1.iter().map(|&c| c == Cf::C).collect();
    if c_mask.iter().filter(|&&c| c).count() <= 1 {
        return stage1;
    }
    let s2 = distance2_strength(s, &c_mask);
    let s2t = s2.transpose();
    let strength2 = Strength { s: s2, st: s2t };
    pmis_on_subset(strength2.s(), &strength2, &c_mask, seed.wrapping_add(1))
}

impl Strength {
    fn s(&self) -> &asyncmg_sparse::Csr {
        &self.s
    }
}

/// Classical Ruge-Stüben first pass with the influence-count measure.
///
/// Greedily picks the undecided point with the largest measure
/// `λ_i = |Sᵀ_i ∩ undecided| (+ bonus for F-neighbours)`, makes it C, makes
/// everything that strongly depends on it F, and bumps the measures of
/// those F-points' other dependencies.
pub fn rs_first_pass(s: &Strength) -> Vec<Cf> {
    let n = s.n();
    let mut cf = vec![Cf::Undecided; n];
    let mut measure: Vec<i64> = (0..n).map(|i| s.influences(i).len() as i64).collect();
    // Bucket queue with lazy deletion.
    let max_m = measure.iter().copied().max().unwrap_or(0).max(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_m + 1 + n];
    for i in 0..n {
        buckets[measure[i] as usize].push(i as u32);
    }
    let mut top = buckets.len() - 1;
    let mut decided = 0usize;

    // Points that influence nothing and depend on nothing can never
    // contribute to interpolation; they become F immediately.
    for i in 0..n {
        if s.influences(i).is_empty() && s.deps(i).is_empty() {
            cf[i] = Cf::F;
            decided += 1;
        }
    }

    while decided < n {
        // Pop the highest-measure undecided point.
        let i = loop {
            while top > 0 && buckets[top].is_empty() {
                top -= 1;
            }
            match buckets[top].pop() {
                Some(cand) => {
                    let c = cand as usize;
                    if cf[c] == Cf::Undecided && measure[c] as usize == top {
                        break Some(c);
                    }
                }
                None => break None,
            }
        };
        let Some(i) = i else { break };
        cf[i] = Cf::C;
        decided += 1;
        // Everything that strongly depends on i becomes F.
        for &j in s.influences(i) {
            let ju = j as usize;
            if cf[ju] == Cf::Undecided {
                cf[ju] = Cf::F;
                decided += 1;
                // New F-point: its other undecided dependencies become more
                // attractive C candidates.
                for &k in s.deps(ju) {
                    let ku = k as usize;
                    if cf[ku] == Cf::Undecided {
                        measure[ku] += 1;
                        let m = measure[ku] as usize;
                        if m >= buckets.len() {
                            buckets.resize(m + 1, Vec::new());
                        }
                        buckets[m].push(k);
                        if m > top {
                            top = m;
                        }
                    }
                }
            }
        }
    }
    // Anything left over (isolated cycles) becomes F.
    for c in &mut cf {
        if *c == Cf::Undecided {
            *c = Cf::F;
        }
    }
    cf
}

/// PMIS restricted to `candidates`: non-candidates start as F, candidates
/// compete with weights `|influences| + U[0,1)` over the edges of `graph`.
fn pmis_on_subset(
    graph: &asyncmg_sparse::Csr,
    s: &Strength,
    candidates: &[bool],
    seed: u64,
) -> Vec<Cf> {
    let n = s.n();
    let mut rng = SplitMix64(seed ^ 0xD1B54A32D192ED03);
    let mut cf = vec![Cf::Undecided; n];
    let mut weight = vec![0.0f64; n];
    let gt = graph.transpose();
    for i in 0..n {
        if !candidates[i] {
            cf[i] = Cf::F;
            continue;
        }
        let infl = gt.row(i).0.len();
        weight[i] = infl as f64 + rng.next_f64();
        // A candidate with no strong connections at all can neither
        // interpolate nor be interpolated: keep it as C so its equation
        // reaches the coarse grid (BoomerAMG keeps such points too when they
        // arise from subset restriction).
        if infl == 0 && graph.row(i).0.is_empty() {
            cf[i] = Cf::C;
        }
    }
    loop {
        let mut changed = false;
        // Select the distributed independent set: undecided points that are
        // local weight maxima over undecided neighbours.
        let mut new_c: Vec<usize> = Vec::new();
        for i in 0..n {
            if cf[i] != Cf::Undecided {
                continue;
            }
            let mut is_max = true;
            for &j in graph.row(i).0.iter().chain(gt.row(i).0) {
                let ju = j as usize;
                if cf[ju] == Cf::Undecided && weight[ju] >= weight[i] && ju != i {
                    // Ties are impossible w.p. 1; resolve deterministically.
                    if weight[ju] > weight[i] || ju > i {
                        is_max = false;
                        break;
                    }
                }
            }
            if is_max {
                new_c.push(i);
            }
        }
        for &i in &new_c {
            if cf[i] == Cf::Undecided {
                cf[i] = Cf::C;
                changed = true;
            }
        }
        // Undecided points that strongly depend on a new C point become F.
        for i in 0..n {
            if cf[i] == Cf::Undecided {
                let has_c_dep = graph.row(i).0.iter().any(|&j| cf[j as usize] == Cf::C);
                if has_c_dep {
                    cf[i] = Cf::F;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if cf.iter().all(|&c| c != Cf::Undecided) {
            break;
        }
    }
    for c in &mut cf {
        if *c == Cf::Undecided {
            *c = Cf::F;
        }
    }
    cf
}

/// HMIS: RS first pass, then PMIS over the RS C-points with distance-1
/// strength edges.
pub fn hmis(s: &Strength, seed: u64) -> Vec<Cf> {
    let stage1 = rs_first_pass(s);
    let c_mask: Vec<bool> = stage1.iter().map(|&c| c == Cf::C).collect();
    if c_mask.iter().filter(|&&c| c).count() <= 1 {
        return stage1;
    }
    pmis_on_subset(&s.s, s, &c_mask, seed)
}

/// Counts C points.
pub fn n_coarse(cf: &[Cf]) -> usize {
    cf.iter().filter(|&&c| c == Cf::C).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::classical_strength;
    use asyncmg_sparse::{Coo, Csr};

    fn laplace1d(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    fn laplace2d(n: usize) -> Csr {
        let m = n * n;
        let mut c = Coo::new(m, m);
        for j in 0..n {
            for i in 0..n {
                let id = i + n * j;
                c.push(id, id, 4.0);
                if i > 0 {
                    c.push(id, id - 1, -1.0);
                }
                if i + 1 < n {
                    c.push(id, id + 1, -1.0);
                }
                if j > 0 {
                    c.push(id, id - n, -1.0);
                }
                if j + 1 < n {
                    c.push(id, id + n, -1.0);
                }
            }
        }
        c.to_csr()
    }

    fn check_valid_split(s: &Strength, cf: &[Cf]) {
        // No undecided points remain.
        assert!(cf.iter().all(|&c| c != Cf::Undecided));
        // Nontrivial split on connected graphs.
        let nc = n_coarse(cf);
        assert!(nc > 0);
        assert!(nc < cf.len(), "everything became C");
        let _ = s;
    }

    #[test]
    fn rs_splits_1d_line() {
        let a = laplace1d(20);
        let s = classical_strength(&a, 0.25);
        let cf = rs_first_pass(&s);
        check_valid_split(&s, &cf);
        // 1-D line: every F point must have a strong C neighbour.
        for i in 0..20 {
            if cf[i] == Cf::F {
                assert!(
                    s.deps(i).iter().any(|&j| cf[j as usize] == Cf::C),
                    "F point {i} has no C neighbour"
                );
            }
        }
        // Roughly half the points coarse.
        let nc = n_coarse(&cf);
        assert!((6..=14).contains(&nc), "nc={nc}");
    }

    #[test]
    fn pmis_splits_2d_grid() {
        let a = laplace2d(10);
        let s = classical_strength(&a, 0.25);
        let cf = coarsen(&s, Coarsening::Pmis, 42);
        check_valid_split(&s, &cf);
        // PMIS: C points form an independent set in the strength graph.
        for i in 0..100 {
            if cf[i] == Cf::C {
                for &j in s.deps(i) {
                    assert_ne!(cf[j as usize], Cf::C, "adjacent C points {i},{j}");
                }
            }
        }
        // Every F point has a strong C neighbour (grid is connected).
        for i in 0..100 {
            if cf[i] == Cf::F {
                assert!(s.deps(i).iter().any(|&j| cf[j as usize] == Cf::C));
            }
        }
    }

    #[test]
    fn hmis_coarser_than_rs() {
        let a = laplace2d(12);
        let s = classical_strength(&a, 0.25);
        let rs = n_coarse(&rs_first_pass(&s));
        let hm = n_coarse(&hmis(&s, 7));
        assert!(hm <= rs, "HMIS ({hm}) should not exceed RS ({rs})");
        assert!(hm > 0);
    }

    #[test]
    fn aggressive_coarser_than_plain() {
        let a = laplace2d(16);
        let s = classical_strength(&a, 0.25);
        let plain = n_coarse(&coarsen(&s, Coarsening::Hmis, 3));
        let agg = n_coarse(&aggressive_coarsen(&s, Coarsening::Hmis, 3));
        assert!(agg < plain, "aggressive {agg} vs plain {plain}");
        assert!(agg > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = laplace2d(8);
        let s = classical_strength(&a, 0.25);
        let c1 = coarsen(&s, Coarsening::Pmis, 5);
        let c2 = coarsen(&s, Coarsening::Pmis, 5);
        assert_eq!(c1, c2);
    }

    #[test]
    fn isolated_points_become_f_in_rs() {
        let s = classical_strength(&Csr::identity(4), 0.25);
        let cf = rs_first_pass(&s);
        assert!(cf.iter().all(|&c| c == Cf::F));
    }

    #[test]
    fn two_point_system() {
        let a = laplace1d(2);
        let s = classical_strength(&a, 0.25);
        for method in [Coarsening::Rs, Coarsening::Pmis, Coarsening::Hmis] {
            let cf = coarsen(&s, method, 1);
            assert_eq!(n_coarse(&cf), 1, "{method:?}");
        }
    }
}
