//! Classical strength of connection.
//!
//! Point `i` *strongly depends* on point `j` when
//! `−a_ij ≥ θ · max_{k≠i} (−a_ik)` (negative-coupling convention, the
//! BoomerAMG default for the M-matrix-like problems of the paper). For rows
//! whose off-diagonal entries are all non-negative (they occur in the
//! elasticity set) the absolute-value variant is used as a fallback so such
//! rows still acquire strong neighbours.

use asyncmg_sparse::Csr;

/// The strength graph: `S` holds the strong *dependencies* of each row
/// (`S[i]` = the set of `j` that `i` strongly depends on), `S^T` the strong
/// *influences*.
#[derive(Clone, Debug)]
pub struct Strength {
    /// Strong dependencies, as a CSR pattern (values are all 1.0).
    pub s: Csr,
    /// Transpose pattern: `st.row(j)` lists the points influenced by `j`.
    pub st: Csr,
}

impl Strength {
    /// Number of points.
    pub fn n(&self) -> usize {
        self.s.nrows()
    }

    /// Strong dependencies of point `i`.
    pub fn deps(&self, i: usize) -> &[u32] {
        self.s.row(i).0
    }

    /// Points strongly influenced by `j`.
    pub fn influences(&self, j: usize) -> &[u32] {
        self.st.row(j).0
    }
}

/// Computes the classical strength graph with threshold `theta`
/// (BoomerAMG's default for 3-D problems is 0.25).
pub fn classical_strength(a: &Csr, theta: f64) -> Strength {
    classical_strength_nf(a, theta, 1)
}

/// Classical strength for a PDE *system* with `num_functions` interleaved
/// unknowns per node (dof `i` belongs to function `i % num_functions`).
///
/// This is BoomerAMG's "unknown approach": only couplings between dofs of
/// the same function count as (potentially) strong, so coarsening and
/// interpolation act on each solution component separately. Without it,
/// scalar AMG stagnates on elasticity because interpolation mixes
/// displacement components and loses the rigid-body modes.
pub fn classical_strength_nf(a: &Csr, theta: f64, num_functions: usize) -> Strength {
    assert!(num_functions >= 1);
    if num_functions == 1 {
        return classical_strength_funcs(a, theta, None);
    }
    let funcs: Vec<u8> = (0..a.nrows()).map(|i| (i % num_functions) as u8).collect();
    classical_strength_funcs(a, theta, Some(&funcs))
}

/// Classical strength with an explicit per-dof function label (the unknown
/// approach on coarse levels, where labels are inherited from the fine
/// grid's C-points rather than deducible from the dof index).
pub fn classical_strength_funcs(a: &Csr, theta: f64, funcs: Option<&[u8]>) -> Strength {
    if let Some(f) = funcs {
        assert_eq!(f.len(), a.nrows());
    }
    let n = a.nrows();
    let mut row_ptr = vec![0u32; n + 1];
    let mut col_idx: Vec<u32> = Vec::new();
    for i in 0..n {
        let (cols, vals) = a.row(i);
        // Largest negative coupling; fall back to absolute values when the
        // row has no negative off-diagonals.
        let same_func = |j: u32| match funcs {
            None => true,
            Some(f) => f[j as usize] == f[i],
        };
        let mut max_neg = 0.0f64;
        let mut max_abs = 0.0f64;
        for (&j, &v) in cols.iter().zip(vals) {
            if j as usize != i && same_func(j) {
                max_neg = max_neg.max(-v);
                max_abs = max_abs.max(v.abs());
            }
        }
        let (threshold, use_abs) =
            if max_neg > 0.0 { (theta * max_neg, false) } else { (theta * max_abs, true) };
        if threshold > 0.0 {
            for (&j, &v) in cols.iter().zip(vals) {
                if j as usize == i || !same_func(j) {
                    continue;
                }
                let coupling = if use_abs { v.abs() } else { -v };
                if coupling >= threshold && coupling > 0.0 {
                    col_idx.push(j);
                }
            }
        }
        row_ptr[i + 1] = col_idx.len() as u32;
    }
    let vals = vec![1.0; col_idx.len()];
    let s = Csr::from_raw(n, n, row_ptr, col_idx, vals);
    let st = s.transpose();
    Strength { s, st }
}

/// The distance-2 strength graph restricted to a point subset, used by
/// aggressive coarsening: points `i, j` of the subset are connected when
/// `j ∈ S(i)` or there is a path `i → k → j` in `S` (any intermediate `k`).
pub fn distance2_strength(s: &Strength, subset: &[bool]) -> Csr {
    let n = s.n();
    let mut row_ptr = vec![0u32; n + 1];
    let mut col_idx: Vec<u32> = Vec::new();
    let mut marker = vec![u32::MAX; n];
    for i in 0..n {
        if subset[i] {
            marker[i] = i as u32; // exclude self
            let mut local: Vec<u32> = Vec::new();
            for &j in s.deps(i) {
                let ju = j as usize;
                if subset[ju] && marker[ju] != i as u32 {
                    marker[ju] = i as u32;
                    local.push(j);
                }
                // Two-hop through any k (inside or outside the subset).
                for &l in s.deps(ju) {
                    let lu = l as usize;
                    if subset[lu] && marker[lu] != i as u32 {
                        marker[lu] = i as u32;
                        local.push(l);
                    }
                }
            }
            local.sort_unstable();
            col_idx.extend_from_slice(&local);
        }
        row_ptr[i + 1] = col_idx.len() as u32;
    }
    let vals = vec![1.0; col_idx.len()];
    Csr::from_raw(n, n, row_ptr, col_idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_sparse::Coo;

    fn laplace1d(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn tridiag_all_neighbours_strong() {
        let s = classical_strength(&laplace1d(5), 0.25);
        assert_eq!(s.deps(0), &[1]);
        assert_eq!(s.deps(2), &[1, 3]);
        assert_eq!(s.influences(2), &[1, 3]);
    }

    #[test]
    fn threshold_filters_weak() {
        // Row 0: strong -4 to col 1, weak -0.5 to col 2.
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 5.0);
        c.push(0, 1, -4.0);
        c.push(0, 2, -0.5);
        c.push(1, 1, 5.0);
        c.push(1, 0, -4.0);
        c.push(2, 2, 5.0);
        c.push(2, 0, -0.5);
        let s = classical_strength(&c.to_csr(), 0.25);
        assert_eq!(s.deps(0), &[1]);
        assert_eq!(s.deps(2), &[0]); // its only (max) coupling is strong
    }

    #[test]
    fn positive_offdiagonal_fallback() {
        // All-positive off-diagonals: abs fallback keeps the large one.
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 3.0);
        c.push(0, 1, 2.0);
        c.push(1, 1, 3.0);
        c.push(1, 0, 2.0);
        let s = classical_strength(&c.to_csr(), 0.25);
        assert_eq!(s.deps(0), &[1]);
    }

    #[test]
    fn diagonal_matrix_has_empty_strength() {
        let s = classical_strength(&Csr::identity(4), 0.25);
        for i in 0..4 {
            assert!(s.deps(i).is_empty());
        }
    }

    #[test]
    fn distance2_reaches_two_hops() {
        let s = classical_strength(&laplace1d(5), 0.1);
        let subset = vec![true; 5];
        let s2 = distance2_strength(&s, &subset);
        // Point 2 reaches 0,1,3,4 within two hops.
        assert_eq!(s2.row(2).0, &[0, 1, 3, 4]);
        // Self is excluded.
        assert!(!s2.row(2).0.contains(&2));
    }

    #[test]
    fn distance2_respects_subset() {
        let s = classical_strength(&laplace1d(5), 0.1);
        let subset = vec![true, false, true, false, true];
        let s2 = distance2_strength(&s, &subset);
        // 0 reaches 2 through excluded 1 (two hops allowed through any k).
        assert_eq!(s2.row(0).0, &[2]);
        assert_eq!(s2.row(2).0, &[0, 4]);
        // Excluded rows are empty.
        assert!(s2.row(1).0.is_empty());
    }
}

#[cfg(test)]
mod unknown_approach_tests {
    use super::*;
    use asyncmg_sparse::Coo;

    /// 2-function interleaved system: strong same-function couplings plus
    /// strong cross-function couplings that must be filtered.
    fn two_function_matrix() -> Csr {
        let mut c = Coo::new(4, 4);
        for i in 0..4usize {
            c.push(i, i, 4.0);
        }
        c.push(0, 2, -2.0); // same function (0)
        c.push(2, 0, -2.0);
        c.push(1, 3, -2.0); // same function (1)
        c.push(3, 1, -2.0);
        c.push(0, 1, -3.0); // cross function — stronger, but must be ignored
        c.push(1, 0, -3.0);
        c.to_csr()
    }

    #[test]
    fn nf_filters_cross_function_couplings() {
        let a = two_function_matrix();
        let scalar = classical_strength(&a, 0.25);
        assert!(scalar.deps(0).contains(&1), "scalar strength sees cross coupling");
        let nf = classical_strength_nf(&a, 0.25, 2);
        assert_eq!(nf.deps(0), &[2]);
        assert_eq!(nf.deps(1), &[3]);
        assert!(!nf.deps(0).contains(&1));
    }

    #[test]
    fn explicit_funcs_match_modulo_labels() {
        let a = two_function_matrix();
        let by_nf = classical_strength_nf(&a, 0.25, 2);
        let funcs = vec![0u8, 1, 0, 1];
        let by_funcs = classical_strength_funcs(&a, 0.25, Some(&funcs));
        assert_eq!(by_nf.s, by_funcs.s);
    }

    #[test]
    fn nf_one_is_scalar_strength() {
        let a = two_function_matrix();
        assert_eq!(classical_strength(&a, 0.25).s, classical_strength_nf(&a, 0.25, 1).s);
    }
}
