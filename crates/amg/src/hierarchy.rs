//! Building the multigrid hierarchy (the BoomerAMG-substitute setup phase).

use crate::coarsen::{aggressive_coarsen, coarsen, n_coarse, Coarsening};
use crate::interp::{build_interpolation, Interpolation};
use crate::strength::classical_strength_funcs;
use asyncmg_sparse::{
    auto_setup_threads, calibrate, rap_parallel, transpose_parallel, Bsr, Csr, CsrError, DenseLu,
    Kernel, KernelSelect,
};
use asyncmg_telemetry::{NoopProbe, Phase, Probe};
use asyncmg_threads::chunk_range;
use std::borrow::Cow;
use std::ops::Range;
use std::sync::OnceLock;
use std::time::Instant;

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// The operator `A_k`.
    pub a: Csr,
    /// Prolongation `P_{k+1}^k` (absent on the coarsest level).
    pub p: Option<Csr>,
    /// Restriction `R = Pᵀ`, stored explicitly for fast SpMV.
    pub r: Option<Csr>,
    /// Cached main diagonal of `a`: smoothers reuse it instead of searching
    /// the matrix again on every solve.
    pub diag: Vec<f64>,
    /// Blocked twin of `a`, installed when the level's pattern is fully
    /// block-dense (see [`Level::install_bsr`]). Kernel dispatch through
    /// [`Level::op`] prefers it; results are bit-identical either way.
    pub bsr: Option<Bsr>,
}

impl Level {
    /// A level with its diagonal cache built from `a`.
    pub fn new(a: Csr, p: Option<Csr>, r: Option<Csr>) -> Self {
        let diag = a.diag();
        Level { a, p, r, diag, bsr: None }
    }

    /// Attempts to install a blocked (`b×b` BSR) twin of this level's
    /// operator, returning whether it was installed.
    ///
    /// Installation requires the conversion to add **zero fill-in** — a
    /// fully block-dense pattern, as produced by the elasticity assembly.
    /// That restriction is what makes the blocked kernels unconditionally
    /// bit-identical to the CSR ones: with fill, the inserted zeros would
    /// shift the `dot4` lane assignment of subsequent entries. Block size 1
    /// is declined (it is plain CSR with extra indirection).
    pub fn install_bsr(&mut self, b: usize) -> bool {
        if b < 2 {
            return false;
        }
        match Bsr::from_csr(&self.a, b) {
            Ok(bsr) if bsr.fill() == 0 => {
                self.bsr = Some(bsr);
                true
            }
            _ => false,
        }
    }

    /// The kernel handle solve loops should dispatch through: the blocked
    /// twin when installed, the CSR operator otherwise.
    pub fn op(&self) -> Kernel<'_> {
        match &self.bsr {
            Some(bsr) => Kernel::Bsr { csr: &self.a, bsr },
            None => Kernel::Csr(&self.a),
        }
    }
}

/// A complete multigrid hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Levels, fine (0) to coarse (ℓ).
    pub levels: Vec<Level>,
    /// Dense LU of the coarsest operator; `None` if it was singular.
    pub coarse_lu: Option<DenseLu>,
    /// Lazily cached per-level row partitions (see [`Hierarchy::partitions`]).
    partition_cache: OnceLock<(usize, Vec<Vec<Range<usize>>>)>,
}

/// Setup options mirroring the paper's BoomerAMG configuration.
#[derive(Clone, Debug)]
pub struct AmgOptions {
    /// Strength threshold θ.
    pub theta: f64,
    /// Coarsening algorithm (the paper uses HMIS).
    pub coarsening: Coarsening,
    /// Interpolation for non-aggressive levels (the paper uses classical
    /// modified).
    pub interp: Interpolation,
    /// Number of *aggressive* levels from the finest (the paper uses 1 for
    /// Figures 4 and 2 for Table I); aggressive levels use multipass
    /// interpolation.
    pub aggressive_levels: usize,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Stop coarsening when a level has at most this many rows.
    pub max_coarse: usize,
    /// Interpolation truncation factor.
    pub trunc: f64,
    /// Seed for the PMIS random weights.
    pub seed: u64,
    /// Number of interleaved unknowns per node (BoomerAMG's "unknown
    /// approach" for PDE systems; 3 for the elasticity test set).
    pub num_functions: usize,
    /// Threads for the setup-phase sparse kernels (Galerkin products and
    /// transposes). `0` picks automatically from the matrix size and the
    /// hardware; `1` forces serial. Any value produces bit-identical
    /// operators — the parallel kernels reproduce the serial results exactly.
    pub setup_threads: usize,
    /// Which kernel layer executes the per-level hot loops. `Auto` installs
    /// blocked (BSR) operators on levels where `num_functions`-sized blocks
    /// apply with zero fill-in and the host calibration (when cached) judges
    /// them profitable; `Csr`/`Bsr` force the choice. Results are
    /// bit-identical across all settings.
    pub kernel: KernelSelect,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            theta: 0.25,
            coarsening: Coarsening::Hmis,
            interp: Interpolation::ClassicalModified,
            aggressive_levels: 0,
            max_levels: 25,
            max_coarse: 40,
            trunc: 0.0,
            seed: 0xA5A5,
            num_functions: 1,
            setup_threads: 0,
            kernel: KernelSelect::Auto,
        }
    }
}

impl Hierarchy {
    /// A hierarchy from levels and the coarse factorisation.
    pub fn new(levels: Vec<Level>, coarse_lu: Option<DenseLu>) -> Self {
        Hierarchy { levels, coarse_lu, partition_cache: OnceLock::new() }
    }

    /// Number of levels (the paper's `ℓ + 1`).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-level contiguous row partitions for `nparts` workers:
    /// `partitions(n)[k][p]` is worker `p`'s row range on level `k`.
    ///
    /// The first requested part count is computed once and cached — solvers
    /// use one thread count for a whole run, so repeated solves stop
    /// re-deriving the same partitions. A different part count is computed on
    /// the fly without disturbing the cache.
    pub fn partitions(&self, nparts: usize) -> Cow<'_, [Vec<Range<usize>>]> {
        assert!(nparts > 0);
        let compute = || {
            self.levels
                .iter()
                .map(|l| (0..nparts).map(|p| chunk_range(l.a.nrows(), nparts, p)).collect())
                .collect::<Vec<Vec<Range<usize>>>>()
        };
        let (cached_n, cached) = self.partition_cache.get_or_init(|| (nparts, compute()));
        if *cached_n == nparts {
            Cow::Borrowed(cached.as_slice())
        } else {
            Cow::Owned(compute())
        }
    }

    /// Rows per level.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.a.nrows()).collect()
    }

    /// Operator complexity `Σ nnz(A_k) / nnz(A_0)`.
    pub fn operator_complexity(&self) -> f64 {
        let total: usize = self.levels.iter().map(|l| l.a.nnz()).sum();
        total as f64 / self.levels[0].a.nnz() as f64
    }

    /// Grid complexity `Σ n_k / n_0`.
    pub fn grid_complexity(&self) -> f64 {
        let total: usize = self.levels.iter().map(|l| l.a.nrows()).sum();
        total as f64 / self.levels[0].a.nrows() as f64
    }
}

/// A validation failure detected by [`try_build_hierarchy`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The fine-grid operator has no rows.
    EmptyMatrix,
    /// The fine-grid operator is not square.
    NotSquare {
        /// Row count.
        nrows: usize,
        /// Column count.
        ncols: usize,
    },
    /// The fine-grid operator has a structural defect or non-finite entry.
    BadMatrix(CsrError),
    /// An option is out of range (description of the first violation).
    InvalidOptions(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyMatrix => write!(f, "fine-grid operator has no rows"),
            BuildError::NotSquare { nrows, ncols } => {
                write!(f, "fine-grid operator is {nrows}x{ncols}, not square")
            }
            BuildError::BadMatrix(e) => write!(f, "bad fine-grid operator: {e}"),
            BuildError::InvalidOptions(msg) => write!(f, "invalid AMG options: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a hierarchy from the fine-grid operator.
pub fn build_hierarchy(a: Csr, opts: &AmgOptions) -> Hierarchy {
    build_hierarchy_probed(a, opts, &NoopProbe)
}

/// [`build_hierarchy`] with up-front validation: the operator's structure
/// and values and the option ranges are checked before setup starts,
/// returning a typed [`BuildError`] instead of panicking (or silently
/// building a poisoned hierarchy from non-finite entries).
pub fn try_build_hierarchy(a: Csr, opts: &AmgOptions) -> Result<Hierarchy, BuildError> {
    if a.nrows() == 0 {
        return Err(BuildError::EmptyMatrix);
    }
    if a.nrows() != a.ncols() {
        return Err(BuildError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    a.validate().map_err(BuildError::BadMatrix)?;
    if !(a.diag().iter().all(|&d| d != 0.0)) {
        return Err(BuildError::InvalidOptions(
            "fine-grid operator has a zero diagonal entry (smoothers divide by it)".into(),
        ));
    }
    if !(opts.theta.is_finite() && (0.0..=1.0).contains(&opts.theta)) {
        return Err(BuildError::InvalidOptions(format!("theta {} out of [0, 1]", opts.theta)));
    }
    if !(opts.trunc.is_finite() && (0.0..1.0).contains(&opts.trunc)) {
        return Err(BuildError::InvalidOptions(format!("trunc {} out of [0, 1)", opts.trunc)));
    }
    if opts.max_levels < 2 {
        return Err(BuildError::InvalidOptions(format!(
            "max_levels {} leaves no room for a coarse grid",
            opts.max_levels
        )));
    }
    if opts.num_functions == 0 {
        return Err(BuildError::InvalidOptions("num_functions must be positive".into()));
    }
    Ok(build_hierarchy(a, opts))
}

/// Builds a hierarchy, reporting per-level setup timings to `probe`.
///
/// Three phases are timed for every level built: [`Phase::SetupStrength`]
/// (strength graph + coarsening), [`Phase::SetupInterp`] (interpolation
/// construction) and [`Phase::SetupRap`] (the Galerkin product and the
/// restriction transpose). Events carry the index of the level being
/// coarsened as their grid id, so a `SolveTrace` shows where each level's
/// build time went.
pub fn build_hierarchy_probed<P: Probe + ?Sized>(
    a: Csr,
    opts: &AmgOptions,
    probe: &P,
) -> Hierarchy {
    assert_eq!(a.nrows(), a.ncols());
    let epoch = Instant::now();
    let enabled = probe.enabled();
    let now_ns = |epoch: &Instant| epoch.elapsed().as_nanos() as u64;
    let mut levels: Vec<Level> = Vec::new();
    let mut current = a;
    let mut level_idx = 0usize;
    // Per-dof function labels for the unknown approach; coarse dofs inherit
    // the label of their C-point.
    let mut funcs: Option<Vec<u8>> = (opts.num_functions > 1)
        .then(|| (0..current.nrows()).map(|i| (i % opts.num_functions) as u8).collect());
    while current.nrows() > opts.max_coarse && levels.len() + 1 < opts.max_levels {
        let t0 = if enabled { now_ns(&epoch) } else { 0 };
        let s = classical_strength_funcs(&current, opts.theta, funcs.as_deref());
        let aggressive = level_idx < opts.aggressive_levels;
        let seed = opts.seed.wrapping_add(level_idx as u64);
        let cf = if aggressive {
            aggressive_coarsen(&s, opts.coarsening, seed)
        } else {
            coarsen(&s, opts.coarsening, seed)
        };
        if enabled {
            let t1 = now_ns(&epoch);
            probe.phase(0, level_idx, Phase::SetupStrength, t0, t1 - t0);
        }
        let nc = n_coarse(&cf);
        if nc == 0 || nc >= current.nrows() {
            break; // coarsening stalled
        }
        let interp_kind = if aggressive { Interpolation::Multipass } else { opts.interp };
        let t0 = if enabled { now_ns(&epoch) } else { 0 };
        let p = build_interpolation(&current, &s, &cf, interp_kind, opts.trunc);
        if enabled {
            let t1 = now_ns(&epoch);
            probe.phase(0, level_idx, Phase::SetupInterp, t0, t1 - t0);
        }
        if p.ncols() == 0 {
            break;
        }
        let threads = if opts.setup_threads == 0 {
            auto_setup_threads(current.nnz())
        } else {
            opts.setup_threads
        };
        let t0 = if enabled { now_ns(&epoch) } else { 0 };
        let coarse = rap_parallel(&current, &p, threads);
        let r = transpose_parallel(&p, threads);
        if enabled {
            let t1 = now_ns(&epoch);
            probe.phase(0, level_idx, Phase::SetupRap, t0, t1 - t0);
        }
        if let Some(f) = &funcs {
            funcs = Some(
                cf.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == crate::coarsen::Cf::C)
                    .map(|(i, _)| f[i])
                    .collect(),
            );
        }
        levels.push(Level::new(current, Some(p), Some(r)));
        current = coarse;
        level_idx += 1;
    }
    let coarse_lu = DenseLu::factor(&current);
    levels.push(Level::new(current, None, None));
    let want_bsr = match opts.kernel {
        KernelSelect::Csr => false,
        KernelSelect::Bsr => true,
        KernelSelect::Auto => calibrate::get().map(|c| c.use_bsr).unwrap_or(true),
    };
    if want_bsr && opts.num_functions > 1 {
        for level in &mut levels {
            // Installs only where the pattern is fully block-dense (fill-free),
            // so dispatching through the blocked kernels stays bit-identical.
            level.install_bsr(opts.num_functions);
        }
    }
    Hierarchy::new(levels, coarse_lu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::stencil::{laplacian_27pt, laplacian_7pt};

    #[test]
    fn hierarchy_shrinks_levels() {
        let a = laplacian_7pt(10, 10, 10);
        let h = build_hierarchy(a, &AmgOptions::default());
        assert!(h.n_levels() >= 2, "expected multilevel, got {}", h.n_levels());
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "level sizes not decreasing: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() <= 40);
        assert!(h.coarse_lu.is_some());
    }

    #[test]
    fn coarse_operators_stay_symmetric() {
        let a = laplacian_27pt(8, 8, 8);
        let h = build_hierarchy(a, &AmgOptions::default());
        for (k, level) in h.levels.iter().enumerate() {
            assert!(level.a.is_symmetric(1e-10), "level {k} not symmetric");
        }
    }

    #[test]
    fn aggressive_reduces_complexity() {
        let a = laplacian_27pt(10, 10, 10);
        let plain = build_hierarchy(a.clone(), &AmgOptions::default());
        let agg = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..AmgOptions::default() });
        assert!(
            agg.levels[1].a.nrows() < plain.levels[1].a.nrows(),
            "aggressive first coarse level {} vs plain {}",
            agg.levels[1].a.nrows(),
            plain.levels[1].a.nrows()
        );
        assert!(agg.operator_complexity() < plain.operator_complexity());
    }

    #[test]
    fn elasticity_installs_blocked_kernel_and_stays_bitwise() {
        // The elasticity assembly stores every 3×3 block entry (including
        // exact zeros) and eliminates clamped nodes whole, so the fine level
        // is fully block-dense and must convert fill-free.
        let a = asyncmg_problems::TestSet::Elasticity.matrix(6);
        let opts = AmgOptions { num_functions: 3, ..AmgOptions::default() };
        let h = build_hierarchy(a, &opts);
        let fine = &h.levels[0];
        assert!(fine.bsr.is_some(), "fine elasticity level should install BSR");
        assert_eq!(fine.bsr.as_ref().unwrap().fill(), 0);
        assert_eq!(fine.op().label(), "bsr");
        // Dispatching through the kernel handle is bit-identical to CSR.
        let n = fine.a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 / 13.0 - 0.5).collect();
        let (mut yc, mut yk) = (vec![0.0; n], vec![0.0; n]);
        fine.a.spmv(&x, &mut yc);
        fine.op().spmv(&x, &mut yk);
        for i in 0..n {
            assert_eq!(yk[i].to_bits(), yc[i].to_bits(), "row {i}");
        }
        // Forcing CSR leaves every level unblocked.
        let a2 = asyncmg_problems::TestSet::Elasticity.matrix(6);
        let h2 = build_hierarchy(
            a2,
            &AmgOptions { num_functions: 3, kernel: KernelSelect::Csr, ..AmgOptions::default() },
        );
        assert!(h2.levels.iter().all(|l| l.bsr.is_none()));
        assert_eq!(h2.levels[0].op().label(), "csr");
    }

    #[test]
    fn scalar_problems_stay_unblocked() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        assert!(h.levels.iter().all(|l| l.bsr.is_none()));
    }

    #[test]
    fn restriction_is_transpose_of_p() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        for level in &h.levels {
            if let (Some(p), Some(r)) = (&level.p, &level.r) {
                assert_eq!(&p.transpose(), r);
            }
        }
    }

    #[test]
    fn galerkin_identity_holds() {
        // A_{k+1} = Pᵀ A_k P entry-wise.
        let a = laplacian_7pt(5, 5, 5);
        let h = build_hierarchy(a, &AmgOptions::default());
        if h.n_levels() >= 2 {
            let p = h.levels[0].p.as_ref().unwrap();
            let expect = asyncmg_sparse::rap(&h.levels[0].a, p);
            let got = &h.levels[1].a;
            assert_eq!(got.nrows(), expect.nrows());
            for i in 0..got.nrows() {
                for (&j, &v) in got.row(i).0.iter().zip(got.row(i).1) {
                    assert!((v - expect.get(i, j as usize)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn small_matrix_is_single_level() {
        let a = laplacian_7pt(3, 3, 3); // 27 rows ≤ max_coarse
        let h = build_hierarchy(a, &AmgOptions::default());
        assert_eq!(h.n_levels(), 1);
        assert!(h.coarse_lu.is_some());
    }

    #[test]
    fn complexities_reported() {
        let a = laplacian_7pt(8, 8, 8);
        let h = build_hierarchy(a, &AmgOptions::default());
        assert!(h.operator_complexity() >= 1.0);
        assert!(h.grid_complexity() >= 1.0);
        assert!(h.operator_complexity() < 3.0, "complexity blow-up");
    }

    #[test]
    fn level_diag_is_cached() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        for level in &h.levels {
            assert_eq!(level.diag, level.a.diag());
        }
    }

    #[test]
    fn partitions_tile_levels_and_cache() {
        let a = laplacian_7pt(7, 7, 7);
        let h = build_hierarchy(a, &AmgOptions::default());
        let parts = h.partitions(4);
        assert_eq!(parts.len(), h.n_levels());
        for (k, level_parts) in parts.iter().enumerate() {
            assert_eq!(level_parts.len(), 4);
            let n = h.levels[k].a.nrows();
            let mut covered = 0usize;
            for (p, r) in level_parts.iter().enumerate() {
                assert_eq!(r.start, covered, "level {k} part {p} not contiguous");
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
        // Same count hits the cache (borrowed); a different one is computed
        // fresh (owned) with the right shape.
        assert!(matches!(h.partitions(4), std::borrow::Cow::Borrowed(_)));
        let other = h.partitions(3);
        assert!(matches!(other, std::borrow::Cow::Owned(_)));
        assert_eq!(other[0].len(), 3);
    }

    #[test]
    fn parallel_setup_matches_serial_setup() {
        // setup_threads is numerically transparent: any thread count yields
        // the exact same hierarchy.
        let a = laplacian_27pt(8, 8, 8);
        let serial =
            build_hierarchy(a.clone(), &AmgOptions { setup_threads: 1, ..Default::default() });
        for nt in [2usize, 5] {
            let par =
                build_hierarchy(a.clone(), &AmgOptions { setup_threads: nt, ..Default::default() });
            assert_eq!(par.n_levels(), serial.n_levels());
            for (ls, lp) in serial.levels.iter().zip(&par.levels) {
                assert_eq!(ls.a, lp.a, "operators differ at {nt} threads");
                assert_eq!(ls.p, lp.p);
                assert_eq!(ls.r, lp.r);
            }
        }
    }

    #[test]
    fn probed_build_reports_setup_phases() {
        use asyncmg_telemetry::TelemetryProbe;
        let a = laplacian_7pt(8, 8, 8);
        let mut probe = TelemetryProbe::new(1, 1024);
        let h = build_hierarchy_probed(a, &AmgOptions::default(), &probe);
        assert!(h.n_levels() >= 2);
        let trace = probe.take_trace();
        let built = h.n_levels() as u64 - 1; // one event set per level built
        for ph in [Phase::SetupStrength, Phase::SetupInterp, Phase::SetupRap] {
            let t = trace.phase_totals[ph.index()];
            assert!(t.count >= built, "{}: {} events for {built} levels", ph.name(), t.count);
        }
    }
}

#[cfg(test)]
mod unknown_approach_tests {
    use super::*;
    use asyncmg_problems::elasticity::{elasticity_beam, BeamMaterials};
    use asyncmg_problems::stencil::laplacian_7pt;

    #[test]
    fn unknown_approach_unmixes_elasticity_interpolation() {
        let a = elasticity_beam(6, 2, 2, [3.0, 1.0, 1.0], BeamMaterials::default());
        let h3 = build_hierarchy(a, &AmgOptions { num_functions: 3, ..Default::default() });
        // With per-function labels, P never couples different displacement
        // components: column functions are inherited from C points, and each
        // F row only references same-function C points. Verify via the
        // Galerkin chain: check P's sparsity respects the label partition on
        // the finest level.
        let p = h3.levels[0].p.as_ref().expect("multilevel");
        // Reconstruct coarse labels the same way the builder does: C points
        // in increasing dof order. A fine dof i (function i%3) must only
        // interpolate from coarse dofs with the same label; equivalently,
        // every coarse column referenced from rows of different functions
        // would be a violation.
        let mut col_func: Vec<Option<u8>> = vec![None; p.ncols()];
        for i in 0..p.nrows() {
            let f = (i % 3) as u8;
            for &j in p.row(i).0 {
                match col_func[j as usize] {
                    None => col_func[j as usize] = Some(f),
                    Some(existing) => {
                        assert_eq!(existing, f, "column {j} mixes functions");
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_approach_fixes_elasticity_convergence() {
        // The motivating property: scalar AMG stagnates on elasticity while
        // the unknown approach converges (tested through the core solver in
        // the workspace integration tests; here we check hierarchy shape).
        let a = elasticity_beam(8, 2, 2, [4.0, 1.0, 1.0], BeamMaterials::default());
        let scalar = build_hierarchy(a.clone(), &AmgOptions::default());
        let nf3 = build_hierarchy(a, &AmgOptions { num_functions: 3, ..Default::default() });
        // Unknown-approach coarsening is less aggressive (per-component
        // grids) and must still terminate with a usable coarse solve.
        assert!(nf3.n_levels() >= 2);
        assert!(nf3.coarse_lu.is_some());
        let _ = scalar;
    }

    #[test]
    fn try_build_accepts_a_good_operator() {
        let a = laplacian_7pt(6, 6, 6);
        let h = try_build_hierarchy(a, &AmgOptions::default()).expect("valid operator");
        assert!(h.n_levels() >= 2);
    }

    #[test]
    fn try_build_rejects_bad_input() {
        let a = laplacian_7pt(4, 4, 4);

        let wide = Csr::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 1.0]);
        assert!(matches!(
            try_build_hierarchy(wide, &AmgOptions::default()),
            Err(BuildError::NotSquare { nrows: 2, ncols: 3 })
        ));

        let mut vals: Vec<f64> = a.vals().to_vec();
        vals[0] = f64::INFINITY;
        let poisoned =
            Csr::from_raw(a.nrows(), a.ncols(), a.row_ptr().to_vec(), a.col_idx().to_vec(), vals);
        assert!(matches!(
            try_build_hierarchy(poisoned, &AmgOptions::default()),
            Err(BuildError::BadMatrix(_))
        ));

        let bad_theta = AmgOptions { theta: 1.5, ..Default::default() };
        assert!(matches!(
            try_build_hierarchy(a.clone(), &bad_theta),
            Err(BuildError::InvalidOptions(_))
        ));
        let bad_levels = AmgOptions { max_levels: 1, ..Default::default() };
        assert!(matches!(try_build_hierarchy(a, &bad_levels), Err(BuildError::InvalidOptions(_))));
    }
}
