//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary prints CSV-ish rows to stdout. All accept `--full` to run at
//! paper scale; the defaults are laptop-scale so the whole suite finishes in
//! minutes on one core (see EXPERIMENTS.md).

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod plot;

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::TestSet;
use asyncmg_smoothers::SmootherKind;

/// Minimal command-line parsing: `--key value` pairs and bare flags.
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Cli { args: std::env::args().skip(1).collect() }
    }

    /// Whether flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let key = format!("--{name}");
        self.args.windows(2).find(|w| w[0] == key).and_then(|w| w[1].parse().ok())
    }

    /// A comma-separated list following `--name`.
    pub fn list<T: std::str::FromStr>(&self, name: &str) -> Option<Vec<T>> {
        let key = format!("--{name}");
        self.args
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].split(',').filter_map(|s| s.parse().ok()).collect())
    }
}

/// The per-problem Jacobi weight of Table I (ω = .9 for the stencil sets,
/// ω = .5 for the MFEM sets).
pub fn paper_omega(set: TestSet) -> f64 {
    match set {
        TestSet::SevenPt | TestSet::TwentySevenPt => 0.9,
        _ => 0.5,
    }
}

/// Builds the paper's BoomerAMG-equivalent hierarchy and solver setup for
/// `set` at grid length `n`.
pub fn build_setup(
    set: TestSet,
    n: usize,
    aggressive_levels: usize,
    smoother: SmootherKind,
) -> MgSetup {
    let a = set.matrix(n);
    // Elasticity has 3 interleaved displacement dofs per node; the unknown
    // approach is essential there (as in BoomerAMG's num_functions).
    let num_functions = if set == TestSet::Elasticity { 3 } else { 1 };
    let h =
        build_hierarchy(a, &AmgOptions { aggressive_levels, num_functions, ..Default::default() });
    let mut opts = MgOptions::default();
    opts.smoother = smoother;
    opts.interp_omega = paper_omega(set);
    MgSetup::new(h, opts)
}

/// The four smoothers of Table I for a given test set.
pub fn paper_smoothers(set: TestSet) -> [SmootherKind; 4] {
    [
        SmootherKind::WJacobi { omega: paper_omega(set) },
        SmootherKind::L1Jacobi,
        SmootherKind::HybridJgs,
        SmootherKind::AsyncGs,
    ]
}

/// One measured point of the time-to-tolerance protocol.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// V-cycles requested.
    pub vcycles: usize,
    /// Mean relative residual over the runs.
    pub relres: f64,
    /// Mean wall-clock seconds.
    pub secs: f64,
    /// Mean corrections per grid.
    pub corrects: f64,
}

/// Result of the protocol: the first sweep point under tolerance.
#[derive(Clone, Copy, Debug)]
pub struct ToleranceResult {
    /// The point that crossed the tolerance.
    pub point: SweepPoint,
    /// Whether the tolerance was actually reached (`false` ⇒ `point` is the
    /// last measured one; the paper marks this case †).
    pub reached: bool,
}

/// The paper's Section V measurement protocol: measure `(relres, secs,
/// corrects)` at increasing V-cycle counts (averaged over `runs`) and report
/// the first multiple of `step` whose mean residual crosses `tau`.
///
/// The search first brackets the crossing geometrically (`step, 2·step,
/// 4·step, …`) and then refines arithmetically inside the bracket, which
/// costs `O(crossing)` solves instead of the naive `O(crossing²/step)` —
/// same reported granularity as the paper's `5, 10, …` sweep.
///
/// `measure(t_max, run_index)` performs one solve.
pub fn time_to_tolerance<F>(
    tau: f64,
    step: usize,
    max_cycles: usize,
    runs: usize,
    mut measure: F,
) -> ToleranceResult
where
    F: FnMut(usize, usize) -> (f64, f64, f64),
{
    let eval = |t: usize, measure: &mut F| -> SweepPoint {
        let mut relres = 0.0;
        let mut secs = 0.0;
        let mut corrects = 0.0;
        for run in 0..runs {
            let (r, s, c) = measure(t, run);
            relres += r;
            secs += s;
            corrects += c;
        }
        SweepPoint {
            vcycles: t,
            relres: relres / runs as f64,
            secs: secs / runs as f64,
            corrects: corrects / runs as f64,
        }
    };
    // Geometric bracketing.
    let mut lo = 0usize; // largest t known to fail
    let hi_point: Option<SweepPoint>;
    let mut last = SweepPoint { vcycles: 0, relres: f64::INFINITY, secs: 0.0, corrects: 0.0 };
    let mut t = step;
    loop {
        let point = eval(t.min(max_cycles), &mut measure);
        if point.relres < tau {
            hi_point = Some(point);
            break;
        }
        if !point.relres.is_finite() || point.relres > 1e6 {
            return ToleranceResult { point, reached: false };
        }
        last = point;
        lo = t.min(max_cycles);
        if t >= max_cycles {
            return ToleranceResult { point: last, reached: false };
        }
        t = (t * 2).min(max_cycles);
    }
    // Binary refinement on multiples of `step`: smallest t in (lo, hi] whose
    // mean residual crosses tau (residuals are near-monotone in t).
    let mut hi = hi_point.unwrap();
    let mut lo_t = lo;
    while hi.vcycles > lo_t + step {
        let mid = (lo_t + (hi.vcycles - lo_t) / 2) / step * step;
        if mid <= lo_t || mid >= hi.vcycles {
            break;
        }
        let point = eval(mid, &mut measure);
        if point.relres < tau {
            hi = point;
        } else {
            lo_t = mid;
        }
    }
    let _ = last;
    ToleranceResult { point: hi, reached: true }
}

/// Formats a `ToleranceResult` like a Table I cell: `time corrects vcycles`
/// or `† † †` for divergence/non-convergence.
pub fn table_cell(r: &ToleranceResult) -> String {
    if r.reached {
        format!("{:.4} {:>4.0} {:>4}", r.point.secs, r.point.corrects, r.point.vcycles)
    } else {
        "†      †    †".to_string()
    }
}

/// One solver configuration of Table I.
#[derive(Clone, Copy, Debug)]
pub enum MethodCfg {
    /// Classical multiplicative multigrid, threaded ("sync Mult").
    Mult,
    /// An additive configuration run by [`asyncmg_core::solve_async_probed`].
    Additive(asyncmg_core::AsyncOptions),
}

/// The twelve method rows of Table I, in the paper's order.
pub fn table1_methods() -> Vec<(&'static str, MethodCfg)> {
    use asyncmg_core::additive::AdditiveMethod as M;
    use asyncmg_core::{AsyncOptions, ResComp, WriteMode};
    // AsyncOptions is #[non_exhaustive]: derive each row from the default.
    let cfg = |f: &dyn Fn(&mut AsyncOptions)| {
        let mut o = AsyncOptions::default();
        f(&mut o);
        MethodCfg::Additive(o)
    };
    vec![
        ("sync Mult", MethodCfg::Mult),
        ("sync Multadd, lock-write", cfg(&|o| o.sync = true)),
        (
            "sync Multadd, atomic-write",
            cfg(&|o| {
                o.sync = true;
                o.write = WriteMode::Atomic;
            }),
        ),
        (
            "sync AFACx, lock-write",
            cfg(&|o| {
                o.method = M::Afacx;
                o.sync = true;
            }),
        ),
        (
            "sync AFACx, atomic-write",
            cfg(&|o| {
                o.method = M::Afacx;
                o.sync = true;
                o.write = WriteMode::Atomic;
            }),
        ),
        ("AFACx, lock-write", cfg(&|o| o.method = M::Afacx)),
        (
            "AFACx, atomic-write",
            cfg(&|o| {
                o.method = M::Afacx;
                o.write = WriteMode::Atomic;
            }),
        ),
        ("Multadd, lock-write, global-res", cfg(&|o| o.res_comp = ResComp::Global)),
        ("Multadd, lock-write, local-res", cfg(&|_| ())),
        (
            "Multadd, atomic-write, global-res",
            cfg(&|o| {
                o.write = WriteMode::Atomic;
                o.res_comp = ResComp::Global;
            }),
        ),
        ("Multadd, atomic-write, local-res", cfg(&|o| o.write = WriteMode::Atomic)),
        (
            "r-Multadd, atomic-write, local-res",
            cfg(&|o| {
                o.write = WriteMode::Atomic;
                o.res_comp = ResComp::ResidualBased;
            }),
        ),
    ]
}

/// Runs one method configuration for `t_max` cycles; returns
/// `(relres, secs, mean corrects per grid)`.
pub fn run_method(
    cfg: &MethodCfg,
    setup: &MgSetup,
    b: &[f64],
    t_max: usize,
    n_threads: usize,
    criterion: asyncmg_core::StopCriterion,
) -> (f64, f64, f64) {
    use asyncmg_core::NoopProbe;
    match cfg {
        MethodCfg::Mult => {
            let r = asyncmg_core::solve_mult_threaded_probed(
                setup, b, n_threads, t_max, None, &NoopProbe,
            );
            (r.relres, r.elapsed.as_secs_f64(), t_max as f64)
        }
        MethodCfg::Additive(opts) => {
            let mut opts = *opts;
            opts.t_max = t_max;
            opts.n_threads = n_threads;
            opts.criterion = criterion;
            let r = asyncmg_core::solve_async_probed(setup, b, &opts, &NoopProbe);
            (r.relres, r.elapsed.as_secs_f64(), r.corrects_mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_table1_methods() {
        let m = table1_methods();
        assert_eq!(m.len(), 12);
        assert_eq!(m[0].0, "sync Mult");
        assert_eq!(m[11].0, "r-Multadd, atomic-write, local-res");
    }

    #[test]
    fn run_method_executes_both_kinds() {
        let s = build_setup(TestSet::SevenPt, 6, 0, SmootherKind::WJacobi { omega: 0.9 });
        let b = asyncmg_problems::rhs::random_rhs(s.n(), 0);
        for (name, cfg) in table1_methods().iter().take(2) {
            let (relres, secs, corrects) =
                run_method(cfg, &s, &b, 5, 2, asyncmg_core::StopCriterion::One);
            assert!(relres < 1.0, "{name}: {relres}");
            assert!(secs >= 0.0);
            assert!(corrects >= 5.0);
        }
    }

    #[test]
    fn protocol_finds_first_crossing() {
        // relres halves per 5 cycles: 0.5^(t/5).
        let res = time_to_tolerance(1e-3, 5, 100, 2, |t, _run| {
            (0.5f64.powf(t as f64 / 5.0), t as f64 * 0.01, t as f64)
        });
        assert!(res.reached);
        assert_eq!(res.point.vcycles, 50);
    }

    #[test]
    fn protocol_reports_failure() {
        let res = time_to_tolerance(1e-3, 10, 40, 1, |_, _| (0.5, 0.0, 0.0));
        assert!(!res.reached);
        assert_eq!(res.point.vcycles, 40);
        assert!(table_cell(&res).contains('†'));
    }

    #[test]
    fn protocol_stops_on_divergence() {
        let mut calls = 0;
        let res = time_to_tolerance(1e-9, 5, 1000, 1, |t, _| {
            calls += 1;
            (1e3f64.powf(t as f64 / 5.0), 0.0, 0.0)
        });
        assert!(!res.reached);
        assert!(calls <= 3, "kept sweeping after divergence");
    }

    #[test]
    fn paper_omegas() {
        assert_eq!(paper_omega(TestSet::SevenPt), 0.9);
        assert_eq!(paper_omega(TestSet::FemLaplace), 0.5);
    }

    #[test]
    fn build_setup_works_for_all_sets() {
        for set in TestSet::all() {
            let s = build_setup(set, 6, 0, SmootherKind::WJacobi { omega: paper_omega(set) });
            assert!(s.n() > 0);
        }
    }
}

#[cfg(test)]
mod cli_tests {
    use super::Cli;

    fn cli(args: &[&str]) -> Cli {
        Cli { args: args.iter().map(|s| s.to_string()).collect() }
    }

    #[test]
    fn flags_and_values() {
        let c = cli(&["--full", "--size", "30", "--tau", "1e-9"]);
        assert!(c.flag("full"));
        assert!(!c.flag("quick"));
        assert_eq!(c.get::<usize>("size"), Some(30));
        assert_eq!(c.get::<f64>("tau"), Some(1e-9));
        assert_eq!(c.get::<usize>("missing"), None);
    }

    #[test]
    fn lists_parse() {
        let c = cli(&["--sizes", "10,20,30"]);
        assert_eq!(c.list::<usize>("sizes"), Some(vec![10, 20, 30]));
        assert_eq!(c.list::<usize>("threads"), None);
    }

    #[test]
    fn malformed_values_ignored() {
        let c = cli(&["--size", "abc"]);
        assert_eq!(c.get::<usize>("size"), None);
        let c = cli(&["--sizes", "1,x,3"]);
        assert_eq!(c.list::<usize>("sizes"), Some(vec![1, 3]));
    }
}
