//! Terminal rendering of figure data: log-scale scatter/line charts in
//! ASCII, so the regenerated figures can be *looked at*, not just parsed.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a log10-y ASCII chart of the given size.
///
/// Each series is drawn with its own marker character; a legend is appended
/// below the axes. Non-positive y values are clamped to the bottom row.
pub fn log_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4);
    const MARKS: &[u8] = b"ox+*#@%&$~^=";
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            xs.push(x);
            if y > 0.0 && y.is_finite() {
                ys.push(y.log10());
            }
        }
    }
    if xs.is_empty() || ys.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (xmin, xmax) = min_max(&xs);
    let (ymin, ymax) = min_max(&ys);
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);

    let mut grid = vec![vec![b' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let ly = if y > 0.0 && y.is_finite() { y.log10() } else { ymin };
            let row_f = ((ymax - ly) / yspan) * (height - 1) as f64;
            let row = (row_f.round() as usize).min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let y_here = ymax - yspan * r as f64 / (height - 1) as f64;
        out.push_str(&format!("1e{:>6.1} |", y_here));
        out.push_str(std::str::from_utf8(row).unwrap());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>10}{:<8.3}{:>width$.3}\n",
        "",
        "-".repeat(width),
        "",
        xmin,
        xmax,
        width = width - 8
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()] as char, s.label));
    }
    out
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series { label: "fast".into(), points: vec![(10.0, 1e-2), (20.0, 1e-4), (30.0, 1e-6)] },
            Series { label: "slow".into(), points: vec![(10.0, 1e-1), (20.0, 1e-2), (30.0, 1e-3)] },
        ]
    }

    #[test]
    fn renders_marks_and_legend() {
        let p = log_plot("test", &sample(), 40, 10);
        assert!(p.contains('o'));
        assert!(p.contains('x'));
        assert!(p.contains("fast"));
        assert!(p.contains("slow"));
        assert!(p.starts_with("test\n"));
    }

    #[test]
    fn handles_empty() {
        let p = log_plot("empty", &[], 40, 10);
        assert!(p.contains("no data"));
    }

    #[test]
    fn clamps_nonpositive_values() {
        let s = vec![Series { label: "z".into(), points: vec![(0.0, 0.0), (1.0, 1.0)] }];
        let p = log_plot("t", &s, 20, 5);
        assert!(p.contains('o'));
    }

    #[test]
    fn axis_labels_reflect_range() {
        let p = log_plot("t", &sample(), 40, 8);
        // x axis from 10 to 30
        assert!(p.contains("10.000"));
        assert!(p.contains("30.000"));
    }
}
