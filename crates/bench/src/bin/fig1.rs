//! Figure 1: final relative residual after 20 V-cycles vs grid length for
//! the **semi-asynchronous model** (Equation 6), δ = 0, five minimum update
//! probabilities, AFACx and Multadd, 27pt test set, vs synchronous Mult.
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin fig1 [-- --sizes 10,14,18 --runs 5 --full]
//! ```
//!
//! Output: CSV `method,alpha,grid_length,rows,relres` (`alpha = sync` for
//! the synchronous baseline).

use asyncmg_bench::plot::{log_plot, Series};
use asyncmg_bench::{build_setup, Cli};
use asyncmg_core::additive::AdditiveMethod;
use asyncmg_core::models::{simulate_mean, ModelKind, ModelOptions};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_smoothers::SmootherKind;
use std::collections::BTreeMap;

fn main() {
    let cli = Cli::from_env();
    // Paper scale: 40..80 step 10, 20 runs. Default: laptop scale.
    let (sizes, runs) = if cli.flag("full") {
        (vec![40usize, 50, 60, 70, 80], 20usize)
    } else {
        (vec![10usize, 14, 18, 22], 5)
    };
    let sizes = cli.list("sizes").unwrap_or(sizes);
    let runs = cli.get("runs").unwrap_or(runs);
    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let cycles = 20;

    let mut curves: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    println!("method,alpha,grid_length,rows,relres");
    for &n in &sizes {
        // Figure 1 uses ω-Jacobi (ω = .9) and HMIS + 1 aggressive level.
        let setup = build_setup(TestSet::TwentySevenPt, n, 1, SmootherKind::WJacobi { omega: 0.9 });
        let b = random_rhs(setup.n(), 27 + n as u64);
        let sync = solve_mult_probed(&setup, &b, cycles, None, &NoopProbe);
        println!("Mult,sync,{n},{},{:e}", setup.n(), sync.final_relres());
        curves.entry("Mult (sync)".into()).or_default().push((n as f64, sync.final_relres()));
        for method in [AdditiveMethod::Afacx, AdditiveMethod::Multadd] {
            for &alpha in &alphas {
                let mut opts = ModelOptions::default();
                opts.model = ModelKind::SemiAsync;
                opts.alpha = alpha;
                opts.delta = 0;
                opts.updates_per_grid = cycles;
                opts.seed = 1000 + n as u64;
                let relres = simulate_mean(&setup, method, &b, &opts, runs);
                println!("{},{alpha},{n},{},{relres:e}", method.name(), setup.n());
                curves
                    .entry(format!("{} a={alpha}", method.name()))
                    .or_default()
                    .push((n as f64, relres));
            }
        }
    }
    if cli.flag("plot") {
        for prefix in ["AFACx", "Multadd"] {
            let series: Vec<Series> = curves
                .iter()
                .filter(|(k, _)| k.starts_with(prefix) || k.starts_with("Mult ("))
                .map(|(k, v)| Series { label: k.clone(), points: v.clone() })
                .collect();
            eprintln!(
                "\n{}",
                log_plot(
                    &format!("Fig. 1 ({prefix}): relres after 20 V-cycles vs grid length"),
                    &series,
                    60,
                    16
                )
            );
        }
    }
}
