//! Export a full telemetry trace of one asynchronous solve as JSON
//! (schema `asyncmg-trace-v5`, see docs/telemetry.md), plus a summary and
//! an optional ASCII convergence plot on stderr.
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin trace \
//!     [-- --size 16 --threads 4 --tol 1e-8 --t-max 200 --out trace.json --plot]
//! ```
//!
//! Without `--out` the JSON goes to stdout.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_bench::plot::{log_plot, Series};
use asyncmg_bench::Cli;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::{Method, Solver};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

fn main() {
    let cli = Cli::from_env();
    let size: usize = cli.get("size").unwrap_or(16);
    let threads: usize = cli.get("threads").unwrap_or(4);
    let tol: f64 = cli.get("tol").unwrap_or(1e-8);
    let t_max: usize = cli.get("t-max").unwrap_or(200);
    let method = match cli.get::<String>("method").as_deref() {
        Some("afacx") => Method::Afacx,
        Some("bpx") => Method::Bpx,
        Some("mult") => Method::Mult,
        _ => Method::Multadd,
    };

    let a = laplacian_7pt(size, size, size);
    let b = random_rhs(a.nrows(), 7);
    let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());

    let report = Solver::new(&setup)
        .method(method)
        .threads(threads)
        .t_max(t_max)
        .tolerance(tol)
        .with_trace()
        .run(&b);
    let trace = report.trace.as_ref().expect("with_trace attaches a trace");

    eprintln!(
        "{} on 7pt {size}^3, {threads} threads: relres {:.2e} (tol {tol:.0e}, converged: {}) \
         in {:.1?}, corrections {:?}",
        method.name(),
        report.relres,
        report.converged,
        report.elapsed,
        report.grid_corrections
    );
    for (ph, t) in asyncmg_core::Phase::ALL.iter().zip(&trace.phase_totals) {
        if t.count > 0 {
            eprintln!(
                "  phase {:<15} {:>8} × {:>10.3} ms total",
                ph.name(),
                t.count,
                t.total_ns as f64 / 1e6
            );
        }
    }
    if trace.dropped_events > 0 {
        eprintln!("  ({} events dropped to ring overwrite)", trace.dropped_events);
    }

    if cli.flag("plot") && trace.residual_history.len() > 1 {
        let points: Vec<(f64, f64)> =
            trace.residual_history.iter().map(|s| (s.t_ns as f64 / 1e6, s.relres)).collect();
        let series = [Series { label: format!("{} relres vs ms", method.name()), points }];
        eprintln!("\n{}", log_plot("residual trace", &series, 60, 16));
    }

    let json = trace.to_json();
    match cli.get::<String>("out") {
        Some(path) => {
            std::fs::write(&path, &json).expect("write trace JSON");
            eprintln!("wrote {} bytes to {path}", json.len());
        }
        None => print!("{json}"),
    }
}
