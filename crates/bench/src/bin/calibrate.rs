//! Host calibration pass: measure this machine's kernel crossovers and
//! write the cache that drives `KernelSelect::Auto` and
//! `auto_setup_threads`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asyncmg-bench --bin calibrate           # measure + save
//! cargo run --release -p asyncmg-bench --bin calibrate -- --show # print cache, no measurement
//! ```
//!
//! The cache lives at `$ASYNCMG_CALIBRATION_FILE`, else
//! `$XDG_CACHE_HOME/asyncmg/calibration.json` (see
//! `asyncmg_sparse::calibrate::cache_path`). A cached file whose host
//! fingerprint no longer matches is ignored by the library and replaced
//! here on the next measurement run.

use asyncmg_sparse::calibrate::{cache_path, Calibration};

fn main() {
    let show_only = std::env::args().any(|arg| arg == "--show");
    let path = cache_path();

    if show_only {
        match Calibration::load() {
            Some(c) => {
                eprintln!(
                    "calibration cache at {}",
                    path.as_deref().map_or("<none>".into(), |p| p.display().to_string())
                );
                print!("{}", c.to_json());
            }
            None => {
                eprintln!(
                    "no valid calibration cached (path: {}); run without --show to measure",
                    path.as_deref().map_or("<none>".into(), |p| p.display().to_string())
                );
                std::process::exit(1);
            }
        }
        return;
    }

    if path.is_none() {
        eprintln!("warning: no cache directory resolvable; measuring without saving");
    }
    eprintln!("measuring kernel crossovers (a few hundred ms)...");
    let c = Calibration::measure();
    if c.fingerprint.nproc == 1 {
        eprintln!(
            "warning: single-core host — parallel setup kernels cannot win here; \
             max_setup_threads calibrated to {}",
            c.max_setup_threads
        );
    }
    match c.save() {
        Ok(()) => eprintln!(
            "saved to {}",
            path.as_deref().map_or("<none>".into(), |p| p.display().to_string())
        ),
        Err(e) => eprintln!("warning: could not save calibration cache: {e}"),
    }
    print!("{}", c.to_json());
}
