//! Figure 6: wall-clock time to reach τ vs number of threads for the four
//! test matrices with ω-Jacobi smoothing; sync Mult vs sync Multadd
//! (lock-write) vs async Multadd (lock-write, local-res).
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin fig6 \
//!     [-- --size 12 --threads 1,2,4,8 --runs 3 --tau 1e-9 --full]
//! ```
//!
//! Output: CSV `test_set,method,threads,secs,vcycles,reached`.
//!
//! NOTE: on a machine with fewer cores than threads the absolute times are
//! dominated by oversubscription; the paper's crossover (async Multadd wins
//! at high thread counts) needs real cores to show in wall-clock terms.

use asyncmg_bench::{build_setup, paper_omega, run_method, time_to_tolerance, Cli, MethodCfg};
use asyncmg_core::{AsyncOptions, StopCriterion};
use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_smoothers::SmootherKind;

fn main() {
    let cli = Cli::from_env();
    let full = cli.flag("full");
    let size: usize = cli.get("size").unwrap_or(if full { 30 } else { 12 });
    let thread_counts: Vec<usize> = cli.list("threads").unwrap_or(if full {
        vec![17, 34, 68, 136, 272]
    } else {
        vec![1, 2, 4, 8]
    });
    let runs: usize = cli.get("runs").unwrap_or(3);
    let tau: f64 = cli.get("tau").unwrap_or(1e-9);
    let step: usize = cli.get("step").unwrap_or(5);
    let max: usize = cli.get("max").unwrap_or(250);

    let mut sync_multadd = AsyncOptions::default();
    sync_multadd.sync = true;
    let methods: Vec<(&str, MethodCfg)> = vec![
        ("sync Mult", MethodCfg::Mult),
        ("sync Multadd lock-write", MethodCfg::Additive(sync_multadd)),
        ("Multadd lock-write local-res", MethodCfg::Additive(AsyncOptions::default())),
    ];

    println!("test_set,method,threads,secs,vcycles,reached");
    for set in TestSet::all() {
        let omega = paper_omega(set);
        // Elasticity: non-aggressive coarsening and a larger cycle budget
        // (see EXPERIMENTS.md).
        let agg = if set == TestSet::Elasticity { 0 } else { 2 };
        let set_max = if set == TestSet::Elasticity { max * 4 } else { max };
        let setup = build_setup(set, size, agg, SmootherKind::WJacobi { omega });
        let b = random_rhs(setup.n(), 6);
        for &(name, ref cfg) in &methods {
            for &threads in &thread_counts {
                let res = time_to_tolerance(tau, step, set_max, runs, |t, _run| {
                    run_method(cfg, &setup, &b, t, threads, StopCriterion::Two)
                });
                println!(
                    "{},{name},{threads},{:.5},{},{}",
                    set.name(),
                    res.point.secs,
                    res.point.vcycles,
                    res.reached
                );
                use std::io::Write as _;
                std::io::stdout().flush().ok();
            }
        }
    }
}
