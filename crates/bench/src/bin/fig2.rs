//! Figure 2: final relative residual after 20 V-cycles vs grid length for
//! the **full-asynchronous model**, α = .1, five maximum delays, both the
//! solution-based (Equation 7) and residual-based (Equation 10) versions,
//! AFACx and Multadd, 27pt test set, vs synchronous Mult.
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin fig2 [-- --sizes 10,14 --runs 3 --full]
//! ```
//!
//! Output: CSV `method,version,delta,grid_length,rows,relres`.

use asyncmg_bench::{build_setup, Cli};
use asyncmg_core::additive::AdditiveMethod;
use asyncmg_core::models::{simulate_mean, ModelKind, ModelOptions};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_smoothers::SmootherKind;

fn main() {
    let cli = Cli::from_env();
    let (sizes, runs) = if cli.flag("full") {
        (vec![40usize, 50, 60, 70, 80], 20usize)
    } else {
        (vec![10usize, 14, 18], 3)
    };
    let sizes = cli.list("sizes").unwrap_or(sizes);
    let runs = cli.get("runs").unwrap_or(runs);
    let deltas = [1usize, 2, 4, 8, 16];
    let alpha = 0.1;
    let cycles = 20;

    println!("method,version,delta,grid_length,rows,relres");
    for &n in &sizes {
        let setup = build_setup(TestSet::TwentySevenPt, n, 1, SmootherKind::WJacobi { omega: 0.9 });
        let b = random_rhs(setup.n(), 90 + n as u64);
        let sync = solve_mult_probed(&setup, &b, cycles, None, &NoopProbe);
        println!("Mult,sync,0,{n},{},{:e}", setup.n(), sync.final_relres());
        for (version, model) in
            [("solution", ModelKind::FullAsyncSolution), ("residual", ModelKind::FullAsyncResidual)]
        {
            for method in [AdditiveMethod::Afacx, AdditiveMethod::Multadd] {
                for &delta in &deltas {
                    let mut opts = ModelOptions::default();
                    opts.model = model;
                    opts.alpha = alpha;
                    opts.delta = delta;
                    opts.updates_per_grid = cycles;
                    opts.seed = 2000 + n as u64;
                    let relres = simulate_mean(&setup, method, &b, &opts, runs);
                    println!("{},{version},{delta},{n},{},{relres:e}", method.name(), setup.n());
                }
            }
        }
    }
}
