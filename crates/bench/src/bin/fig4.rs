//! Figure 4: relative residual after 20 V(1,1)-cycles vs number of rows for
//! the 7pt and 27pt test sets, ω-Jacobi and async GS smoothing, all threaded
//! method variants (Criterion 1).
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin fig4 [-- --sizes 10,14 --threads 4 --runs 3 --full]
//! ```
//!
//! Output: CSV `test_set,smoother,method,grid_length,rows,relres`.

use asyncmg_bench::{build_setup, paper_omega, run_method, table1_methods, Cli};
use asyncmg_core::StopCriterion;
use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_smoothers::SmootherKind;

fn main() {
    let cli = Cli::from_env();
    let (sizes, runs, threads) = if cli.flag("full") {
        (vec![40usize, 50, 60, 70, 80], 20usize, 68usize)
    } else {
        (vec![8usize, 12, 16], 3, 4)
    };
    let sizes = cli.list("sizes").unwrap_or(sizes);
    let runs: usize = cli.get("runs").unwrap_or(runs);
    let threads: usize = cli.get("threads").unwrap_or(threads);
    let cycles = 20;

    println!("test_set,smoother,method,grid_length,rows,relres");
    for set in [TestSet::SevenPt, TestSet::TwentySevenPt] {
        let omega = paper_omega(set);
        for smoother in [SmootherKind::WJacobi { omega }, SmootherKind::AsyncGs] {
            for &n in &sizes {
                // Figure 4: HMIS + one aggressive level.
                let setup = build_setup(set, n, 1, smoother);
                let b = random_rhs(setup.n(), 40 + n as u64);
                for (name, cfg) in table1_methods() {
                    let mut relres = 0.0;
                    for _ in 0..runs {
                        let (r, _, _) =
                            run_method(&cfg, &setup, &b, cycles, threads, StopCriterion::One);
                        relres += r;
                    }
                    relres /= runs as f64;
                    println!(
                        "{},{},\"{name}\",{n},{},{relres:e}",
                        set.name(),
                        smoother.name(),
                        setup.n()
                    );
                }
            }
        }
    }
}
