//! Figure 5: relative residual after 20 V(1,1)-cycles vs number of rows for
//! the MFEM Laplace test set (FEM ball Laplacian substitute), ω-Jacobi and
//! async GS smoothing, **no aggressive coarsening**.
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin fig5 [-- --sizes 9,13,17 --threads 4 --runs 3 --full]
//! ```
//!
//! Output: CSV `smoother,method,grid_length,rows,relres`.

use asyncmg_bench::{build_setup, run_method, table1_methods, Cli};
use asyncmg_core::StopCriterion;
use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_smoothers::SmootherKind;

fn main() {
    let cli = Cli::from_env();
    let (sizes, runs, threads) = if cli.flag("full") {
        (vec![21usize, 27, 33], 20usize, 68usize)
    } else {
        (vec![9usize, 13, 17], 3, 4)
    };
    let sizes = cli.list("sizes").unwrap_or(sizes);
    let runs: usize = cli.get("runs").unwrap_or(runs);
    let threads: usize = cli.get("threads").unwrap_or(threads);
    let cycles = 20;

    println!("smoother,method,grid_length,rows,relres");
    for smoother in [SmootherKind::WJacobi { omega: 0.5 }, SmootherKind::AsyncGs] {
        for &n in &sizes {
            // Figure 5: no aggressive coarsening.
            let setup = build_setup(TestSet::FemLaplace, n, 0, smoother);
            let b = random_rhs(setup.n(), 50 + n as u64);
            for (name, cfg) in table1_methods() {
                let mut relres = 0.0;
                for _ in 0..runs {
                    let (r, _, _) =
                        run_method(&cfg, &setup, &b, cycles, threads, StopCriterion::One);
                    relres += r;
                }
                relres /= runs as f64;
                println!("{},\"{name}\",{n},{},{relres:e}", smoother.name(), setup.n());
            }
        }
    }
}
