//! Table I: wall-clock time, mean corrections, and V-cycles required to
//! reach ‖r‖₂/‖b‖₂ < τ for the four test matrices × four smoothers ×
//! twelve method configurations (Criterion 2, HMIS + two aggressive
//! levels).
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin table1 \
//!     [-- --size 14 --threads 4 --runs 3 --tau 1e-9 --step 5 --max 150 --full]
//! ```
//!
//! Output: one markdown-ish block per matrix, mirroring the paper's layout:
//! `method | time corrects V-cycles` per smoother (`†` = did not reach τ).

use asyncmg_bench::{
    build_setup, paper_smoothers, run_method, table1_methods, table_cell, time_to_tolerance, Cli,
};
use asyncmg_core::StopCriterion;
use asyncmg_problems::{rhs::random_rhs, TestSet};

fn main() {
    let cli = Cli::from_env();
    let full = cli.flag("full");
    // Paper scale: grid length 30 (27k rows), 272 threads, τ = 1e-9,
    // sweep 5,10,…; mean of 20 runs.
    let size: usize = cli.get("size").unwrap_or(if full { 30 } else { 12 });
    let threads: usize = cli.get("threads").unwrap_or(if full { 272 } else { 4 });
    let runs: usize = cli.get("runs").unwrap_or(if full { 20 } else { 1 });
    let tau: f64 = cli.get("tau").unwrap_or(1e-9);
    let step: usize = cli.get("step").unwrap_or(5);
    let max: usize = cli.get("max").unwrap_or(if full { 400 } else { 250 });

    for set in TestSet::all() {
        // Pick a grid length giving roughly comparable row counts per set.
        let n = match set {
            TestSet::FemLaplace => size + 2,
            TestSet::Elasticity => size,
            _ => size,
        };
        let probe = set.matrix(n);
        println!(
            "\n=== {}: {} rows and {} non-zero values (grid length {n}, {threads} threads, tau {tau:.0e}) ===",
            set.name(),
            probe.nrows(),
            probe.nnz()
        );
        drop(probe);
        // Scalar AMG converges at ~0.94/cycle on elasticity (the paper's
        // BoomerAMG needed 190 cycles on its larger beam); give this set a
        // proportionally larger budget.
        let set_max = if set == TestSet::Elasticity { max * 4 } else { max };
        let smoothers = paper_smoothers(set);
        // Header.
        print!("{:<36}", "method");
        for sm in &smoothers {
            print!(" | {:<22}", sm.name());
        }
        println!();
        // Build one setup per smoother (Table I: HMIS + 2 aggressive levels).
        // Aggressive coarsening (paper: 2 levels) on the *scalar* sets; our
        // multipass interpolation after aggressive coarsening is too weak for
        // the elasticity system, so that set keeps standard coarsening (see
        // EXPERIMENTS.md).
        let agg = if set == TestSet::Elasticity { 0 } else { 2 };
        let setups: Vec<_> = smoothers.iter().map(|&sm| build_setup(set, n, agg, sm)).collect();
        let rhs: Vec<_> = setups.iter().map(|s| random_rhs(s.n(), 7)).collect();
        for (name, cfg) in table1_methods() {
            print!("{name:<36}");
            for (setup, b) in setups.iter().zip(&rhs) {
                let res = time_to_tolerance(tau, step, set_max, runs, |t, _run| {
                    run_method(&cfg, setup, b, t, threads, StopCriterion::Two)
                });
                print!(" | {:<22}", table_cell(&res));
            }
            println!();
            use std::io::Write as _;
            std::io::stdout().flush().ok();
        }
    }
}
