//! Ablation over the AMG setup choices the paper takes from BoomerAMG:
//! coarsening algorithm (RS / PMIS / HMIS) × aggressive levels (0 / 1 / 2).
//! Reports hierarchy statistics and Mult convergence — this backs the
//! paper's configuration rather than reproducing a specific figure.
//!
//! ```sh
//! cargo run --release -p asyncmg-bench --bin amg_ablation [-- --size 14]
//! ```

use asyncmg_amg::{build_hierarchy, AmgOptions, Coarsening};
use asyncmg_bench::Cli;
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};

fn main() {
    let cli = Cli::from_env();
    let size: usize = cli.get("size").unwrap_or(14);
    let a = TestSet::TwentySevenPt.matrix(size);
    let b = random_rhs(a.nrows(), 3);
    println!("27pt grid length {size}: {} rows, {} nnz\n", a.nrows(), a.nnz());
    println!(
        "{:<10} {:>4} {:>7} {:>8} {:>8} {:>12} {:>10}",
        "coarsening", "agg", "levels", "op-cx", "grid-cx", "relres@20", "setup"
    );
    for coarsening in [Coarsening::Rs, Coarsening::Pmis, Coarsening::Hmis] {
        for aggressive in [0usize, 1, 2] {
            let t0 = std::time::Instant::now();
            let h = build_hierarchy(
                a.clone(),
                &AmgOptions { coarsening, aggressive_levels: aggressive, ..Default::default() },
            );
            let setup_time = t0.elapsed();
            let ocx = h.operator_complexity();
            let gcx = h.grid_complexity();
            let levels = h.n_levels();
            let setup = MgSetup::new(h, MgOptions::default());
            let res = solve_mult_probed(&setup, &b, 20, None, &NoopProbe);
            println!(
                "{:<10} {:>4} {:>7} {:>8.2} {:>8.2} {:>12.2e} {:>9.1?}",
                format!("{coarsening:?}"),
                aggressive,
                levels,
                ocx,
                gcx,
                res.final_relres(),
                setup_time
            );
        }
    }
}
