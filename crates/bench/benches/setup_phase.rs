//! Setup-phase kernel benchmark: serial vs parallel Galerkin products.
//!
//! Times the serial `rap`/`transpose` kernels against `rap_parallel`/
//! `transpose_parallel` across thread counts and grid sizes. The parallel
//! kernels are bit-identical to the serial ones, so this is a pure
//! wall-clock comparison of the hierarchy build's dominant cost.
//!
//! Run with `cargo bench -p asyncmg-bench --bench setup_phase`; it prints a
//! JSON report to stdout (the committed baseline is `BENCH_setup.json` at
//! the repo root) and a human-readable summary to stderr. `-- --smoke`
//! selects a seconds-long CI-sized run.
//!
//! The report is environment-aware: thread counts above the host's
//! `nproc` cannot show wall-clock speedup, so they are recorded as `null`
//! (skipped), never as losses.

use asyncmg_amg::{classical_strength, coarsen, interp, Coarsening, Interpolation};
use asyncmg_problems::TestSet;
use asyncmg_sparse::{rap, rap_parallel, transpose_parallel, Csr};
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Minimum wall-clock seconds over `reps` calls of `f`.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The classical-modified interpolant of the finest level (the `P` the
/// Galerkin product consumes).
fn interpolant(a: &Csr) -> Csr {
    let s = classical_strength(a, 0.25);
    let cf = coarsen::coarsen(&s, Coarsening::Hmis, 1);
    interp::build_interpolation(a, &s, &cf, Interpolation::ClassicalModified, 0.0)
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.9}"),
        None => "null".to_string(),
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    if host == 1 {
        eprintln!(
            "warning: single-core host — parallel thread counts above 1 are skipped (null), \
             not measured as losses"
        );
    }
    let (sizes, reps): (&[usize], usize) = if smoke { (&[10], 2) } else { (&[16, 24, 32], 5) };

    let mut cases = Vec::new();
    for &n in sizes {
        let a = TestSet::TwentySevenPt.matrix(n);
        let p = interpolant(&a);
        let rap_serial = time_min(reps, || rap(&a, &p));
        let tr_serial = time_min(reps, || p.transpose());
        let mut rap_par = Vec::new();
        let mut tr_par = Vec::new();
        let mut rap_best: Option<(usize, f64)> = None;
        for &nt in &THREADS {
            // Thread counts the host cannot run in parallel are skipped.
            let rp = (nt <= host).then(|| time_min(reps, || rap_parallel(&a, &p, nt)));
            let tp = (nt <= host).then(|| time_min(reps, || transpose_parallel(&p, nt)));
            if let Some(t) = rp {
                if rap_best.is_none_or(|(_, b)| t < b) {
                    rap_best = Some((nt, t));
                }
            }
            rap_par.push(format!("\"{nt}\": {}", fmt_opt(rp)));
            tr_par.push(format!("\"{nt}\": {}", fmt_opt(tp)));
        }
        let (bt, best) = rap_best.expect("thread count 1 always runs");
        eprintln!(
            "27pt n={n} ({} rows, {} nnz): rap serial {:.1} ms, best parallel {:.1} ms \
             ({bt} threads, {:.2}x)",
            a.nrows(),
            a.nnz(),
            rap_serial * 1e3,
            best * 1e3,
            rap_serial / best
        );
        cases.push(format!(
            "    {{ \"grid\": \"27pt\", \"n\": {n}, \"rows\": {}, \"nnz\": {}, \
             \"rap_serial_s\": {rap_serial:.9}, \"rap_parallel_s\": {{ {} }}, \
             \"transpose_serial_s\": {tr_serial:.9}, \"transpose_parallel_s\": {{ {} }} }}",
            a.nrows(),
            a.nnz(),
            rap_par.join(", "),
            tr_par.join(", ")
        ));
    }

    println!("{{");
    println!("  \"bench\": \"setup_phase\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"host_threads\": {host},");
    println!("  \"threads\": [1, 2, 4, 8],");
    println!("  \"cases\": [");
    println!("{}", cases.join(",\n"));
    println!("  ]");
    println!("}}");
}
