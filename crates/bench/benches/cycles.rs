//! Whole-cycle benchmarks: one V(1,1)-cycle of Mult vs one full set of
//! additive corrections of Multadd/AFACx vs one threaded async round — the
//! per-cycle cost comparison underlying Table I's timing columns.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive_probed, AdditiveMethod};
use asyncmg_core::asynchronous::{solve_async_probed, AsyncOptions};
use asyncmg_core::mult::solve_mult_probed;
use asyncmg_core::parallel_mult::solve_mult_threaded_probed;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_core::NoopProbe;
use asyncmg_problems::{rhs::random_rhs, TestSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cycles(c: &mut Criterion) {
    let a = TestSet::TwentySevenPt.matrix(12);
    let h = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..Default::default() });
    let setup = MgSetup::new(h, MgOptions::default());
    let b = random_rhs(setup.n(), 5);

    c.bench_function("mult_5_cycles_sequential", |bench| {
        bench.iter(|| solve_mult_probed(&setup, black_box(&b), 5, None, &NoopProbe));
    });

    c.bench_function("multadd_5_cycles_sequential", |bench| {
        bench.iter(|| {
            solve_additive_probed(
                &setup,
                AdditiveMethod::Multadd,
                black_box(&b),
                5,
                None,
                &NoopProbe,
            )
        });
    });

    c.bench_function("afacx_5_cycles_sequential", |bench| {
        bench.iter(|| {
            solve_additive_probed(&setup, AdditiveMethod::Afacx, black_box(&b), 5, None, &NoopProbe)
        });
    });

    c.bench_function("mult_5_cycles_threaded_2t", |bench| {
        bench.iter(|| solve_mult_threaded_probed(&setup, black_box(&b), 2, 5, None, &NoopProbe));
    });

    c.bench_function("async_multadd_5_corrections_2t", |bench| {
        let mut opts = AsyncOptions::default();
        opts.t_max = 5;
        opts.n_threads = 2;
        bench.iter(|| solve_async_probed(&setup, black_box(&b), &opts, &NoopProbe));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cycles
}
criterion_main!(benches);
