//! Whole-cycle benchmarks: one V(1,1)-cycle of Mult vs one full set of
//! additive corrections of Multadd/AFACx vs one threaded async round — the
//! per-cycle cost comparison underlying Table I's timing columns.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::additive::{solve_additive, AdditiveMethod};
use asyncmg_core::asynchronous::{solve_async, AsyncOptions};
use asyncmg_core::mult::solve_mult;
use asyncmg_core::parallel_mult::solve_mult_threaded;
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::{rhs::random_rhs, TestSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cycles(c: &mut Criterion) {
    let a = TestSet::TwentySevenPt.matrix(12);
    let h = build_hierarchy(a, &AmgOptions { aggressive_levels: 1, ..Default::default() });
    let setup = MgSetup::new(h, MgOptions::default());
    let b = random_rhs(setup.n(), 5);

    c.bench_function("mult_5_cycles_sequential", |bench| {
        bench.iter(|| solve_mult(&setup, black_box(&b), 5));
    });

    c.bench_function("multadd_5_cycles_sequential", |bench| {
        bench.iter(|| solve_additive(&setup, AdditiveMethod::Multadd, black_box(&b), 5));
    });

    c.bench_function("afacx_5_cycles_sequential", |bench| {
        bench.iter(|| solve_additive(&setup, AdditiveMethod::Afacx, black_box(&b), 5));
    });

    c.bench_function("mult_5_cycles_threaded_2t", |bench| {
        bench.iter(|| solve_mult_threaded(&setup, black_box(&b), 2, 5));
    });

    c.bench_function("async_multadd_5_corrections_2t", |bench| {
        bench.iter(|| {
            solve_async(
                &setup,
                black_box(&b),
                &AsyncOptions { t_max: 5, n_threads: 2, ..Default::default() },
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cycles
}
criterion_main!(benches);
