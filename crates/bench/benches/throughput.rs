//! Service throughput benchmark: warm-cache reuse and batched dispatch.
//!
//! Measures the two wins the solver service exists for, on the paper's
//! 27-point Laplacian family at `relres ≤ 1e-6`:
//!
//! * **warm vs cold** — a cold solve pays for the AMG setup (the dominant
//!   cost); a warm solve finds its hierarchy in the fingerprint cache and
//!   goes straight to cycling,
//! * **batched vs sequential** — four same-matrix right-hand sides
//!   coalesced into one blocked dispatch traverse the matrix once per
//!   sweep for all four columns, against four back-to-back warm solves.
//!
//! Run with `cargo bench -p asyncmg-bench --bench throughput`; it prints a
//! JSON report to stdout (the committed baseline is `BENCH_service.json`
//! at the repo root) and a human-readable summary to stderr. `-- --smoke`
//! selects a seconds-long CI-sized run.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use asyncmg_problems::{rhs::random_rhs, TestSet};
use asyncmg_service::{ServiceOptions, SolveRequest, SolverService};
use asyncmg_sparse::Csr;

const TOL: f64 = 1e-6;
const BATCH: usize = 4;

/// Minimum wall-clock seconds over `reps` calls of `f`.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn request(a: &Arc<Csr>, seed: u64) -> SolveRequest {
    SolveRequest::new(a.clone(), random_rhs(a.nrows(), seed)).tolerance(TOL).t_max(100)
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (sizes, reps): (&[usize], usize) = if smoke { (&[10], 2) } else { (&[16, 24, 32], 5) };

    let mut cases = Vec::new();
    for &n in sizes {
        let a = Arc::new(TestSet::TwentySevenPt.matrix(n));
        let mut relres_max = 0.0f64;
        let mut check = |r: &asyncmg_service::SolveResponse| {
            assert!(r.converged, "solve must reach relres ≤ {TOL}, got {}", r.relres);
            relres_max = relres_max.max(r.relres);
        };

        // Cold: a fresh service per rep pays the full setup every time.
        let cold_s = time_min(reps, || {
            let service = SolverService::new(ServiceOptions::default());
            let r = service.solve(request(&a, 0)).unwrap();
            assert!(!r.cache_hit);
            check(&r);
        });

        // Warm: one service, hierarchy built once, then timed re-solves.
        let service = SolverService::new(ServiceOptions::default());
        check(&service.solve(request(&a, 0)).unwrap());
        let mut seed = 1u64;
        let warm_s = time_min(reps, || {
            let r = service.solve(request(&a, seed)).unwrap();
            seed += 1;
            assert!(r.cache_hit);
            check(&r);
        });

        // Four sequential warm single-RHS solves...
        let seq4_s = time_min(reps, || {
            for s in 0..BATCH as u64 {
                check(&service.solve(request(&a, 100 + s)).unwrap());
            }
        });
        // ...against the same four coalesced into one blocked dispatch.
        let batch4_s = time_min(reps, || {
            let tickets: Vec<_> =
                (0..BATCH as u64).map(|s| service.submit(request(&a, 100 + s)).unwrap()).collect();
            service.drain();
            for t in tickets {
                match service.take(t) {
                    asyncmg_service::TicketState::Ready(
                        asyncmg_service::RequestStatus::Completed(r),
                    ) => {
                        assert_eq!(r.batch_size, BATCH);
                        check(&r);
                    }
                    other => panic!("expected completion, got {other:?}"),
                }
            }
        });

        let warm_speedup = cold_s / warm_s;
        let batch_speedup = seq4_s / batch4_s;
        eprintln!(
            "27pt n={n} ({} rows, {} nnz): cold {:.1} ms, warm {:.1} ms ({:.2}x); \
             4 seq {:.1} ms, 4 batched {:.1} ms ({:.2}x)",
            a.nrows(),
            a.nnz(),
            cold_s * 1e3,
            warm_s * 1e3,
            warm_speedup,
            seq4_s * 1e3,
            batch4_s * 1e3,
            batch_speedup,
        );
        cases.push(format!(
            concat!(
                "    {{ \"grid\": \"27pt\", \"n\": {}, \"rows\": {}, \"nnz\": {}, ",
                "\"cold_s\": {:.9}, \"warm_s\": {:.9}, \"warm_solves_per_s\": {:.3}, ",
                "\"warm_speedup\": {:.3}, \"seq4_s\": {:.9}, \"batch4_s\": {:.9}, ",
                "\"batch4_speedup\": {:.3}, \"relres_max\": {:.3e} }}"
            ),
            n,
            a.nrows(),
            a.nnz(),
            cold_s,
            warm_s,
            1.0 / warm_s,
            warm_speedup,
            seq4_s,
            batch4_s,
            batch_speedup,
            relres_max,
        ));
    }

    println!("{{");
    println!("  \"bench\": \"service_throughput\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"tolerance\": {TOL:e},");
    println!("  \"batch_width\": {BATCH},");
    println!("  \"thresholds\": {{ \"warm_over_cold\": 3.0, \"batch4_over_seq4\": 1.5 }},");
    println!("  \"cases\": [");
    println!("{}", cases.join(",\n"));
    println!("  ]");
    println!("}}");
}
