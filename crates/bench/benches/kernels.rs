//! Microbenchmarks of the computational kernels behind one grid correction:
//! SpMV, restriction/prolongation, smoother sweeps, and the symmetrized
//! Multadd operator. These quantify the "work per correction" discussion of
//! Sections II.B and IV.

use asyncmg_amg::{build_hierarchy, AmgOptions};
use asyncmg_core::setup::{MgOptions, MgSetup};
use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt};
use asyncmg_smoothers::{LevelSmoother, SmootherKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> MgSetup {
    let a = laplacian_27pt(16, 16, 16);
    let h = build_hierarchy(a, &AmgOptions::default());
    MgSetup::new(h, MgOptions::default())
}

fn bench_kernels(c: &mut Criterion) {
    let s = setup();
    let n = s.n();
    let a0 = s.a(0);
    let x = random_rhs(n, 1);
    let mut y = vec![0.0; n];

    c.bench_function("spmv_27pt_16", |bench| {
        bench.iter(|| a0.spmv(black_box(&x), &mut y));
    });

    let r0 = s.r(0);
    let mut yc = vec![0.0; r0.nrows()];
    c.bench_function("restrict_plain", |bench| {
        bench.iter(|| r0.spmv(black_box(&x), &mut yc));
    });

    let rb = s.r_bar(0);
    c.bench_function("restrict_smoothed", |bench| {
        bench.iter(|| rb.spmv(black_box(&x), &mut yc));
    });

    for kind in
        [SmootherKind::WJacobi { omega: 0.9 }, SmootherKind::L1Jacobi, SmootherKind::HybridJgs]
    {
        let sm = LevelSmoother::new(a0, kind, 4);
        let b = random_rhs(n, 2);
        let mut xv = vec![0.0; n];
        let mut buf = vec![0.0; n];
        c.bench_function(&format!("relax_{}", kind.name().replace(' ', "_")), |bench| {
            bench.iter(|| sm.relax(a0, black_box(&b), &mut xv, &mut buf));
        });
    }

    let sm = LevelSmoother::new(a0, SmootherKind::WJacobi { omega: 0.9 }, 4);
    let b = random_rhs(n, 3);
    let mut e = vec![0.0; n];
    let mut buf = vec![0.0; n];
    c.bench_function("multadd_symmetrized_lambda", |bench| {
        bench.iter(|| sm.multadd_lambda(a0, black_box(&b), &mut e, &mut buf));
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
