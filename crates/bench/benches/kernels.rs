//! Raw-speed kernel benchmark: scalar vs SIMD `dot4` SpMV and scalar CSR vs
//! blocked BSR on the paper's operators.
//!
//! Every kernel under test is *bit-identical* to the scalar `dot4` baseline
//! — this benchmark is a pure wall-clock comparison, no accuracy axis.
//!
//! Run with `cargo bench -p asyncmg-bench --bench kernels`; it prints a JSON
//! report to stdout (the committed baseline is `BENCH_kernels.json` at the
//! repo root) and a human-readable summary to stderr. `-- --smoke` selects a
//! seconds-long CI-sized run.
//!
//! The report is environment-aware: it records the host fingerprint (arch,
//! `nproc`, detected SIMD feature), and any measurement the host cannot
//! support honestly — SIMD rows on machines without the feature, thread
//! counts above `nproc` — is recorded as `null` (skipped), never as a loss.

use asyncmg_problems::elasticity::elasticity_beam;
use asyncmg_problems::TestSet;
use asyncmg_sparse::{simd, Bsr, Csr};
use asyncmg_threads::chunk_range;
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Minimum wall-clock seconds over `reps` calls of `f`.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Seconds per SpMV under `mode`, with enough inner iterations to dwarf
/// timer granularity.
fn time_spmv(
    a: &Csr,
    x: &[f64],
    y: &mut [f64],
    reps: usize,
    iters: usize,
    mode: simd::SimdMode,
) -> f64 {
    simd::set_mode(mode);
    time_min(reps, || {
        for _ in 0..iters {
            a.spmv(black_box(x), y);
        }
    }) / iters as f64
}

fn time_spmv_bsr(
    a: &Bsr,
    x: &[f64],
    y: &mut [f64],
    reps: usize,
    iters: usize,
    mode: simd::SimdMode,
) -> f64 {
    simd::set_mode(mode);
    time_min(reps, || {
        for _ in 0..iters {
            a.spmv(black_box(x), y);
        }
    }) / iters as f64
}

/// Seconds per team-parallel SpMV over `nt` scoped threads (contiguous row
/// chunks). Only called when `nt` fits the host.
fn time_spmv_parallel(a: &Csr, x: &[f64], reps: usize, iters: usize, nt: usize) -> f64 {
    let n = a.nrows();
    let mut ys: Vec<Vec<f64>> = (0..nt).map(|r| vec![0.0; chunk_range(n, nt, r).len()]).collect();
    time_min(reps, || {
        for _ in 0..iters {
            std::thread::scope(|s| {
                for (r, y) in ys.iter_mut().enumerate() {
                    s.spawn(move || {
                        let range = chunk_range(n, nt, r);
                        a.spmv_rows(range, black_box(x), y);
                    });
                }
            });
        }
    }) / iters as f64
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.9}"),
        None => "null".to_string(),
    }
}

fn fmt_opt2(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "null".to_string(),
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let simd_ok = simd::supported();
    if host == 1 {
        eprintln!(
            "warning: single-core host — parallel thread counts above 1 are skipped (null), \
             not measured as losses"
        );
    }

    let (sizes, elast_ex, reps, iters): (&[usize], &[usize], usize, usize) =
        if smoke { (&[12], &[6], 2, 5) } else { (&[10, 16, 24, 32], &[8, 12, 16], 7, 20) };

    let mut cases = Vec::new();

    // Scalar stencil: the SIMD dot4 axis on the 27-point Laplacian.
    for &n in sizes {
        let a = TestSet::TwentySevenPt.matrix(n);
        let x = asyncmg_problems::rhs::random_rhs(a.ncols(), 1);
        let mut y = vec![0.0; a.nrows()];
        let scalar = time_spmv(&a, &x, &mut y, reps, iters, simd::SimdMode::Off);
        let vect = simd_ok.then(|| time_spmv(&a, &x, &mut y, reps, iters, simd::SimdMode::Force));
        let speedup = vect.map(|v| scalar / v);
        // Which kernel the SIMD row actually ran: the across-row stencil
        // plan when the operator has run structure, else per-row dot4.
        simd::set_mode(simd::SimdMode::Force);
        let stencil = a.stencil_stats();
        simd::set_mode(simd::SimdMode::Off);
        let mut par = Vec::new();
        for &nt in &THREADS {
            // Thread counts the host cannot run in parallel are skipped.
            let t = (nt <= host).then(|| time_spmv_parallel(&a, &x, reps, iters, nt));
            par.push(format!("\"{nt}\": {}", fmt_opt(t)));
        }
        let gnzs = a.nnz() as f64 / scalar / 1e9;
        let coverage = stencil.map(|s| s.covered_rows as f64 / a.nrows() as f64);
        eprintln!(
            "27pt n={n} ({} rows, {} nnz): scalar {:.3} ms ({:.2} Gnnz/s), simd {} ms, \
             speedup {}, stencil coverage {}",
            a.nrows(),
            a.nnz(),
            scalar * 1e3,
            gnzs,
            fmt_opt(vect.map(|v| v * 1e3)),
            fmt_opt2(speedup),
            fmt_opt2(coverage),
        );
        cases.push(format!(
            "    {{ \"grid\": \"27pt\", \"n\": {n}, \"rows\": {}, \"nnz\": {}, \"kernel\": \"csr\", \
             \"simd_kernel\": \"{}\", \"stencil_coverage\": {}, \
             \"spmv_scalar_s\": {scalar:.9}, \"spmv_simd_s\": {}, \"simd_speedup\": {}, \
             \"spmv_parallel_s\": {{ {} }} }}",
            a.nrows(),
            a.nnz(),
            if stencil.is_some() { "stencil" } else { "dot4" },
            fmt_opt2(coverage),
            fmt_opt(vect),
            fmt_opt2(speedup),
            par.join(", ")
        ));
    }

    // Elasticity: the blocked (BSR) axis, natural 3×3 blocks.
    for &ex in elast_ex {
        let a = elasticity_beam(ex, 4, 4, [ex as f64, 1.0, 1.0], Default::default());
        let bsr = Bsr::from_csr(&a, 3).expect("elasticity is 3-aligned");
        assert_eq!(bsr.fill(), 0, "elasticity pattern must be fully block-dense");
        let x = asyncmg_problems::rhs::random_rhs(a.ncols(), 2);
        let mut y = vec![0.0; a.nrows()];
        let csr_scalar = time_spmv(&a, &x, &mut y, reps, iters, simd::SimdMode::Off);
        let csr_simd =
            simd_ok.then(|| time_spmv(&a, &x, &mut y, reps, iters, simd::SimdMode::Force));
        let bsr_scalar = time_spmv_bsr(&bsr, &x, &mut y, reps, iters, simd::SimdMode::Off);
        let bsr_simd =
            simd_ok.then(|| time_spmv_bsr(&bsr, &x, &mut y, reps, iters, simd::SimdMode::Force));
        simd::set_mode(simd::SimdMode::Off);
        // The headline blocked-kernel claim: best BSR variant against the
        // scalar dot4 CSR baseline.
        let best_bsr = bsr_simd.map_or(bsr_scalar, |v| v.min(bsr_scalar));
        let speedup = csr_scalar / best_bsr;
        eprintln!(
            "elasticity ex={ex} ({} rows, {} nnz): csr {:.3} ms, bsr {:.3} ms, speedup {:.2}x",
            a.nrows(),
            a.nnz(),
            csr_scalar * 1e3,
            best_bsr * 1e3,
            speedup
        );
        cases.push(format!(
            "    {{ \"grid\": \"elasticity\", \"n\": {ex}, \"rows\": {}, \"nnz\": {}, \
             \"kernel\": \"bsr\", \"block\": 3, \"fill\": {}, \
             \"spmv_csr_scalar_s\": {csr_scalar:.9}, \"spmv_csr_simd_s\": {}, \
             \"spmv_bsr_scalar_s\": {bsr_scalar:.9}, \"spmv_bsr_simd_s\": {}, \
             \"bsr_speedup\": {speedup:.2} }}",
            a.nrows(),
            a.nnz(),
            bsr.fill(),
            fmt_opt(csr_simd),
            fmt_opt(bsr_simd),
        ));
    }

    println!("{{");
    println!("  \"bench\": \"kernels\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"host\": {{ \"arch\": \"{}\", \"threads\": {host}, \"simd\": \"{}\", \"simd_supported\": {simd_ok} }},", std::env::consts::ARCH, simd::capability_name());
    println!("  \"threads\": [1, 2, 4, 8],");
    println!("  \"cases\": [");
    println!("{}", cases.join(",\n"));
    println!("  ]");
    println!("}}");
}
