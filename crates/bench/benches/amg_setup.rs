//! AMG setup-phase benchmarks: strength, coarsening, interpolation and the
//! Galerkin triple product — the cost of the paper's BoomerAMG setup that
//! our hierarchy builder replaces.

use asyncmg_amg::{build_hierarchy, classical_strength, coarsen, interp, AmgOptions, Coarsening};
use asyncmg_problems::TestSet;
use asyncmg_sparse::rap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_setup(c: &mut Criterion) {
    let a = TestSet::TwentySevenPt.matrix(12);

    c.bench_function("strength_27pt_12", |bench| {
        bench.iter(|| classical_strength(black_box(&a), 0.25));
    });

    let s = classical_strength(&a, 0.25);
    for method in [Coarsening::Rs, Coarsening::Pmis, Coarsening::Hmis] {
        c.bench_function(&format!("coarsen_{method:?}"), |bench| {
            bench.iter(|| coarsen::coarsen(black_box(&s), method, 1));
        });
    }

    let cf = coarsen::coarsen(&s, Coarsening::Hmis, 1);
    c.bench_function("interp_classical_modified", |bench| {
        bench.iter(|| {
            interp::build_interpolation(
                black_box(&a),
                &s,
                &cf,
                asyncmg_amg::Interpolation::ClassicalModified,
                0.0,
            )
        });
    });

    let p = interp::build_interpolation(
        &a,
        &s,
        &cf,
        asyncmg_amg::Interpolation::ClassicalModified,
        0.0,
    );
    c.bench_function("galerkin_rap", |bench| {
        bench.iter(|| rap(black_box(&a), &p));
    });

    c.bench_function("full_hierarchy_hmis_agg1", |bench| {
        bench.iter(|| {
            build_hierarchy(a.clone(), &AmgOptions { aggressive_levels: 1, ..Default::default() })
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_setup
}
criterion_main!(benches);
