//! Threaded classical multiplicative multigrid ("sync Mult").
//!
//! All threads cooperate on every level with OpenMP-style static
//! partitioning and a global barrier after each operation — the maximally
//! synchronous baseline of the paper's Table I and Figure 6. On every grid
//! of every cycle the full thread set synchronises several times, which is
//! exactly the cost asynchronous Multadd avoids.

use crate::asynchronous::{AsyncResult, SolveOutcome};
use crate::setup::{CoarseSolve, MgSetup};
use asyncmg_smoothers::{LevelSmoother, SmootherKind};
use asyncmg_sparse::vecops;
use asyncmg_telemetry::Probe;
use asyncmg_threads::{run_teams_sched, OsSched, RacyVec, Sched};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-level thread-shared work vectors of the threaded multiplicative
/// cycle, allocated once per solve before the team starts.
struct SharedWorkspace {
    /// Residual per level.
    r: Vec<RacyVec>,
    /// Correction per level.
    e: Vec<RacyVec>,
    /// General-purpose buffer per level.
    buf: Vec<RacyVec>,
    /// Sweep-start snapshot per level (post-smoothing reads it).
    old: Vec<RacyVec>,
    /// The fine-grid iterate.
    x: RacyVec,
}

impl SharedWorkspace {
    fn new(sizes: &[usize]) -> Self {
        SharedWorkspace {
            r: sizes.iter().map(|&m| RacyVec::zeros(m)).collect(),
            e: sizes.iter().map(|&m| RacyVec::zeros(m)).collect(),
            buf: sizes.iter().map(|&m| RacyVec::zeros(m)).collect(),
            old: sizes.iter().map(|&m| RacyVec::zeros(m)).collect(),
            x: RacyVec::zeros(sizes[0]),
        }
    }
}

/// Threaded multiplicative V-cycles with tolerance-based early stopping
/// and telemetry. When `tol` is set (or `probe` records), the master computes
/// the exact relative residual at the end of every cycle — an extra fine-
/// grid SpMV that the plain fixed-cycle run does not pay — samples it into
/// `probe`, and stops all threads once it is below `tol`.
pub fn solve_mult_threaded_probed<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    n_threads: usize,
    t_max: usize,
    tol: Option<f64>,
    probe: &P,
) -> AsyncResult {
    let sched = OsSched::for_teams(&[n_threads]);
    solve_mult_threaded_sched(setup, b, n_threads, t_max, tol, probe, &sched)
}

/// [`solve_mult_threaded_probed`] under an explicit [`Sched`]. The cycle is
/// fully barriered, so any schedule produces the same result; a
/// [`VirtualSched`](asyncmg_threads::VirtualSched) makes the run
/// deterministic end to end.
pub fn solve_mult_threaded_sched<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    n_threads: usize,
    t_max: usize,
    tol: Option<f64>,
    probe: &P,
    sched: &dyn Sched,
) -> AsyncResult {
    let n = setup.n();
    let ell = setup.n_levels() - 1;
    let sizes = setup.hierarchy.level_sizes();
    let ws = SharedWorkspace::new(&sizes);
    let SharedWorkspace { r, e, buf, old, x } = &ws;
    // Cached per-level row partitions: `parts[k][rank]` is the rank's
    // contiguous chunk of level `k`, derived once on the hierarchy instead
    // of being re-split on every operation of every cycle.
    let parts = setup.hierarchy.partitions(n_threads);
    let smoothers: Vec<LevelSmoother> = setup.with_nblocks(n_threads);
    let nb = vecops::norm2(b);
    let nb_safe = if nb > 0.0 { nb } else { 1.0 };
    let check = tol.is_some() || probe.enabled();
    let stop = AtomicBool::new(false);
    let cycles_done = AtomicUsize::new(0);

    let start = Instant::now();
    let epoch = Instant::now();
    run_teams_sched(&[n_threads], sched, |ctx| {
        for cycle in 0..t_max {
            // r_0 = b − A x.
            {
                let xs = unsafe { x.as_slice() };
                let chunk = parts[0][ctx.rank].clone();
                let dst = unsafe { r[0].slice_mut(chunk.clone()) };
                for (off, i) in chunk.enumerate() {
                    dst[off] = b[i] - setup.op(0).row_dot(i, xs);
                }
            }
            ctx.barrier();
            // Downward sweep.
            for k in 0..ell {
                let a_k = setup.op(k);
                // Pre-smooth from zero: e_k = Λ r_k (rank's block).
                {
                    let rk = unsafe { r[k].as_slice() };
                    let range = rank_block(&smoothers[k], ctx.rank);
                    let dst = unsafe { e[k].slice_mut(range.clone()) };
                    smoothers[k].apply_zero_range_op(a_k, rk, dst, range);
                }
                ctx.barrier();
                // buf = r_k − A e_k.
                {
                    let rk = unsafe { r[k].as_slice() };
                    let ek = unsafe { e[k].as_slice() };
                    let chunk = parts[k][ctx.rank].clone();
                    let dst = unsafe { buf[k].slice_mut(chunk.clone()) };
                    for (off, i) in chunk.enumerate() {
                        dst[off] = rk[i] - a_k.row_dot(i, ek);
                    }
                }
                ctx.barrier();
                // r_{k+1} = Rᵀ buf.
                {
                    let src = unsafe { buf[k].as_slice() };
                    let rest = setup.r(k);
                    let chunk = parts[k + 1][ctx.rank].clone();
                    let dst = unsafe { r[k + 1].slice_mut(chunk.clone()) };
                    for (off, i) in chunk.enumerate() {
                        dst[off] = rest.row_dot(i, src);
                    }
                }
                ctx.barrier();
            }
            // Coarse solve by the master.
            match (setup.opts.coarse, &setup.hierarchy.coarse_lu) {
                (CoarseSolve::Exact, Some(lu)) => {
                    if ctx.is_team_master() {
                        let rl = unsafe { r[ell].as_slice() };
                        let dst = unsafe { e[ell].slice_mut(0..sizes[ell]) };
                        lu.solve(rl, dst);
                    }
                    ctx.barrier();
                }
                _ => {
                    let rl = unsafe { r[ell].as_slice() };
                    let range = rank_block(&smoothers[ell], ctx.rank);
                    let dst = unsafe { e[ell].slice_mut(range.clone()) };
                    smoothers[ell].apply_zero_range_op(setup.op(ell), rl, dst, range);
                    ctx.barrier();
                }
            }
            // Upward sweep.
            for k in (0..ell).rev() {
                let a_k = setup.op(k);
                // e_k += P e_{k+1} and snapshot into old.
                {
                    let src = unsafe { e[k + 1].as_slice() };
                    let p = setup.p(k);
                    let chunk = parts[k][ctx.rank].clone();
                    let dst = unsafe { e[k].slice_mut(chunk.clone()) };
                    let snap = unsafe { old[k].slice_mut(chunk.clone()) };
                    for (off, i) in chunk.enumerate() {
                        dst[off] += p.row_dot(i, src);
                        snap[off] = dst[off];
                    }
                }
                ctx.barrier();
                // Post-smooth: e_k ← relax(A_k, r_k, e_k) against the
                // sweep-start snapshot.
                {
                    let rk = unsafe { r[k].as_slice() };
                    let snap = unsafe { old[k].as_slice() };
                    let range = rank_block(&smoothers[k], ctx.rank);
                    let dst = unsafe { e[k].slice_mut(range.clone()) };
                    smoothers[k].relax_range_op(a_k, rk, dst, snap, range);
                }
                ctx.barrier();
            }
            // x += e_0.
            {
                let e0 = unsafe { e[0].as_slice() };
                let chunk = parts[0][ctx.rank].clone();
                let dst = unsafe { x.slice_mut(chunk.clone()) };
                for (off, i) in chunk.enumerate() {
                    dst[off] += e0[i];
                }
            }
            ctx.barrier();
            if ctx.is_team_master() {
                cycles_done.store(cycle + 1, Ordering::Release);
            }
            if check {
                // Every thread takes this branch or none: `check` depends
                // only on the call arguments.
                if ctx.is_team_master() {
                    let xs = unsafe { x.as_slice() };
                    let mut sum = 0.0;
                    for i in 0..n {
                        let v = b[i] - setup.op(0).row_dot(i, xs);
                        sum += v * v;
                    }
                    let rel = sum.sqrt() / nb_safe;
                    if probe.enabled() {
                        let t_ns = epoch.elapsed().as_nanos() as u64;
                        probe.correction(ctx.global_rank, 0, cycle, t_ns, rel);
                        probe.residual_sample(t_ns, rel);
                    }
                    if tol.is_some_and(|t| rel < t) {
                        stop.store(true, Ordering::Release);
                    }
                }
                ctx.barrier();
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    });
    let elapsed = start.elapsed();

    let xv = unsafe { x.as_slice().to_vec() };
    let mut res = vec![0.0; n];
    setup.op(0).residual(b, &xv, &mut res);
    let relres = if nb > 0.0 { vecops::norm2(&res) / nb } else { vecops::norm2(&res) };
    let cycles = cycles_done.load(Ordering::Acquire);
    // The cycle is fully barriered, so the stop flag is only ever raised by
    // the master's exact end-of-cycle residual check — it doubles as the
    // "tolerance actually observed" signal.
    let stopped_on_tolerance = stop.load(Ordering::Acquire);
    let outcome = if !relres.is_finite() {
        SolveOutcome::Faulted
    } else if tol.is_some_and(|t| stopped_on_tolerance || relres < t) {
        SolveOutcome::Converged
    } else {
        SolveOutcome::MaxIterations
    };
    AsyncResult {
        x: xv,
        relres,
        grid_corrections: vec![cycles; setup.n_levels()],
        corrects_mean: cycles as f64,
        elapsed,
        outcome,
        faults: Vec::new(),
        stopped_on_tolerance,
    }
}

/// The rank's smoother block, or an empty range when the level has fewer
/// blocks than the team has threads.
fn rank_block(sm: &LevelSmoother, rank: usize) -> std::ops::Range<usize> {
    if rank < sm.blocks().len() {
        sm.blocks()[rank].clone()
    } else {
        0..0
    }
}

/// `true` when the smoother makes the threaded cycle bit-identical to the
/// sequential one (Jacobi variants; block-GS depends on the block count).
pub fn threaded_matches_sequential(kind: SmootherKind) -> bool {
    !kind.is_block_gs()
}
