//! The per-solve buffer pool.
//!
//! Every sequential solver in this crate works on the same family of
//! per-level temporaries: a restricted residual, a correction, and one or
//! two general-purpose buffers per level, plus a fine-grid residual and
//! correction for the outer solve loop. [`Workspace`] allocates all of them
//! once, sized from the hierarchy, so the cycle loops of
//! [`mult`](crate::mult) and [`additive`](crate::additive) perform **zero
//! heap allocations** — every vector a cycle touches exists before the
//! first cycle starts.

use crate::setup::MgSetup;

/// Pre-sized per-level work vectors shared by the sequential solvers.
///
/// `r[k]`, `e[k]`, `buf[k]` and `buf2[k]` all have level-`k` length;
/// `res` and `corr` are fine-grid sized. The multiplicative cycle uses
/// `r`/`e`/`buf`, the additive corrections additionally use `buf2`
/// (AFACx's `P e_{k+1}` products), and the outer solve loops use
/// `res`/`corr` for the fine-grid residual and correction accumulator.
pub struct Workspace {
    /// Restricted residual per level (`r[0]` is the fine-grid residual the
    /// cycle consumes).
    pub(crate) r: Vec<Vec<f64>>,
    /// Correction per level (prolongated upward in place).
    pub(crate) e: Vec<Vec<f64>>,
    /// General-purpose buffer per level (smoother workspace, AFACx rhs).
    pub(crate) buf: Vec<Vec<f64>>,
    /// Second buffer per level (AFACx `P e_{k+1}` and `A_k P e_{k+1}`).
    pub(crate) buf2: Vec<Vec<f64>>,
    /// Fine-grid residual of the outer solve loop.
    pub(crate) res: Vec<f64>,
    /// Fine-grid correction accumulator of the additive solve loop.
    pub(crate) corr: Vec<f64>,
}

impl Workspace {
    /// Allocates every buffer a solve over `setup` can need.
    pub fn new(setup: &MgSetup) -> Self {
        let sizes = setup.hierarchy.level_sizes();
        let n = sizes[0];
        Workspace {
            r: sizes.iter().map(|&m| vec![0.0; m]).collect(),
            e: sizes.iter().map(|&m| vec![0.0; m]).collect(),
            buf: sizes.iter().map(|&m| vec![0.0; m]).collect(),
            buf2: sizes.iter().map(|&m| vec![0.0; m]).collect(),
            res: vec![0.0; n],
            corr: vec![0.0; n],
        }
    }

    /// Number of levels this workspace covers.
    pub fn n_levels(&self) -> usize {
        self.r.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::stencil::laplacian_7pt;

    #[test]
    fn workspace_sizes_match_hierarchy() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s = MgSetup::new(h, MgOptions::default());
        let ws = Workspace::new(&s);
        let sizes = s.hierarchy.level_sizes();
        assert_eq!(ws.n_levels(), sizes.len());
        for (k, &m) in sizes.iter().enumerate() {
            assert_eq!(ws.r[k].len(), m);
            assert_eq!(ws.e[k].len(), m);
            assert_eq!(ws.buf[k].len(), m);
            assert_eq!(ws.buf2[k].len(), m);
        }
        assert_eq!(ws.res.len(), sizes[0]);
        assert_eq!(ws.corr.len(), sizes[0]);
    }
}
