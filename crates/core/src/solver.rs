//! The unified solver front-end.
//!
//! Every solver of this crate — the sequential V-cycle and additive methods,
//! the threaded synchronous baselines, and the asynchronous thread-team
//! solver — is reachable through one builder:
//!
//! ```
//! use asyncmg_amg::{build_hierarchy, AmgOptions};
//! use asyncmg_core::{Method, MgOptions, MgSetup, Solver};
//! use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
//!
//! let a = laplacian_7pt(8, 8, 8);
//! let b = random_rhs(a.nrows(), 0);
//! let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());
//! let report = Solver::new(&setup)
//!     .method(Method::Multadd)
//!     .threads(4)
//!     .t_max(1000)
//!     .tolerance(1e-8)
//!     .run(&b);
//! // `converged` is schedule-independent: it is raised (release) by
//! // whoever actually observes the tolerance met — the monitor thread or
//! // the exact post-run residual check — and read (acquire) after the
//! // join, so no racy monitor timing can flip it.
//! assert!(report.converged);
//! assert!(report.outcome == asyncmg_core::SolveOutcome::Converged);
//! ```
//!
//! `threads(0)` selects the sequential backend, `threads(n)` with
//! [`Solver::sync`] the synchronous-threaded one, and `threads(n)` alone the
//! asynchronous solver of the paper. A [`Probe`] can observe any backend;
//! [`Solver::with_trace`] records a full [`SolveTrace`] without writing a
//! probe by hand. [`Solver::timeout`], [`Solver::recovery`] and
//! [`Solver::fault_plan`] configure the resilience layer of the
//! asynchronous backend; [`Solver::try_run`] validates inputs and options
//! up front, returning a typed [`SolveError`] instead of panicking.

use crate::additive::{solve_additive_probed, AdditiveMethod};
use crate::asynchronous::{
    solve_async_clocked, AsyncOptions, AsyncResult, RecoveryOptions, ResComp, SolveOutcome,
    StopCriterion, WriteMode,
};
use crate::mult::solve_mult_probed;
use crate::parallel_mult::solve_mult_threaded_probed;
use crate::resilience::{
    run_session, RetryPolicy, Rung, SessionError, SessionReport, ShardRungDriver,
};
use crate::setup::MgSetup;
use asyncmg_telemetry::{FaultRecord, NoopProbe, Probe, SolveTrace, TelemetryProbe};
use asyncmg_threads::{Clock, FaultPlan};
use std::time::Duration;

/// Which multigrid method the [`Solver`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// The classical multiplicative V(1,1)-cycle (Algorithm 1).
    Mult,
    /// The additive variant of Mult with smoothed interpolants (Eq. 2).
    Multadd,
    /// The asynchronous fast adaptive composite grid method (Algorithm 2).
    Afacx,
    /// Plain BPX (diverges as a solver; kept for study).
    Bpx,
}

impl Method {
    /// The additive method this maps to, or `None` for Mult.
    pub(crate) fn additive(self) -> Option<AdditiveMethod> {
        match self {
            Method::Mult => None,
            Method::Multadd => Some(AdditiveMethod::Multadd),
            Method::Afacx => Some(AdditiveMethod::Afacx),
            Method::Bpx => Some(AdditiveMethod::Bpx),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Mult => "Mult",
            Method::Multadd => "Multadd",
            Method::Afacx => "AFACx",
            Method::Bpx => "BPX",
        }
    }
}

/// The outcome of a [`Solver`] run, common to all backends.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The final approximation.
    pub x: Vec<f64>,
    /// Final relative residual 2-norm (recomputed exactly after the run).
    pub relres: f64,
    /// Whether the tolerance (if one was set) was reached.
    pub converged: bool,
    /// Corrections (or cycles) performed by each grid.
    pub grid_corrections: Vec<usize>,
    /// Mean corrections per grid (the paper's "Corrects" column).
    pub corrects_mean: f64,
    /// Per-cycle relative residual history, when the backend computes one
    /// (sequential backends always; threaded backends only when a tolerance
    /// or probe makes them check).
    pub history: Vec<f64>,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// How the solve ended (structured: converged, budget exhausted,
    /// degraded by faults, or faulted outright — never by hanging).
    pub outcome: SolveOutcome,
    /// Injected faults and recovery actions in time order (empty for
    /// fault-free runs).
    pub faults: Vec<FaultRecord>,
    /// The recorded telemetry, when [`Solver::with_trace`] was used.
    pub trace: Option<SolveTrace>,
}

/// A validation failure detected by [`Solver::try_run`] before any solve
/// work starts.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The right-hand side length does not match the fine-grid dimension.
    RhsLength {
        /// Fine-grid dimension.
        expected: usize,
        /// Supplied rhs length.
        got: usize,
    },
    /// The right-hand side contains a non-finite entry.
    NonFiniteRhs {
        /// Index of the first offending entry.
        index: usize,
    },
    /// An option is out of range (description of the first violation).
    InvalidOptions(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::RhsLength { expected, got } => {
                write!(f, "rhs has {got} entries but the fine grid has {expected}")
            }
            SolveError::NonFiniteRhs { index } => write!(f, "rhs entry {index} is not finite"),
            SolveError::InvalidOptions(msg) => write!(f, "invalid solver options: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A read-only snapshot of the scalar knobs of a [`Solver`], for extension
/// layers that build on the builder from outside this crate (the sharded
/// execution model of `asyncmg-shard` reads one to seed its own options).
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SolverConfig {
    /// Selected multigrid method.
    pub method: Method,
    /// Configured thread count (`0` = sequential).
    pub threads: usize,
    /// Correction / cycle budget.
    pub t_max: usize,
    /// Tolerance, when one was set.
    pub tolerance: Option<f64>,
}

/// Builder-style front-end over all solvers in this crate.
///
/// Defaults: [`Method::Multadd`], 4 threads, 20 corrections per grid, no
/// tolerance (fixed correction count), local-res, lock-write, asynchronous
/// execution, no telemetry.
#[derive(Clone, Copy)]
pub struct Solver<'a> {
    pub(crate) setup: &'a MgSetup,
    pub(crate) method: Method,
    pub(crate) threads: usize,
    pub(crate) t_max: usize,
    pub(crate) tolerance: Option<f64>,
    pub(crate) check_every: Duration,
    pub(crate) res_comp: ResComp,
    pub(crate) write: WriteMode,
    pub(crate) criterion: StopCriterion,
    pub(crate) sync: bool,
    pub(crate) recovery: RecoveryOptions,
    pub(crate) plan: Option<&'a FaultPlan>,
    pub(crate) probe: Option<&'a dyn Probe>,
    pub(crate) collect_trace: bool,
    pub(crate) retry: RetryPolicy,
    pub(crate) checkpoint_every: Duration,
    pub(crate) session_seed: Option<u64>,
    pub(crate) clock: Option<&'a dyn Clock>,
    pub(crate) ladder: &'a [Rung],
    pub(crate) shard_driver: Option<&'a dyn ShardRungDriver>,
}

impl<'a> Solver<'a> {
    /// A solver over `setup` with the default configuration.
    pub fn new(setup: &'a MgSetup) -> Self {
        let defaults = AsyncOptions::default();
        Solver {
            setup,
            method: Method::Multadd,
            threads: defaults.n_threads,
            t_max: defaults.t_max,
            tolerance: None,
            check_every: Duration::from_micros(100),
            res_comp: defaults.res_comp,
            write: defaults.write,
            criterion: defaults.criterion,
            sync: defaults.sync,
            recovery: defaults.recovery,
            plan: None,
            probe: None,
            collect_trace: false,
            retry: RetryPolicy::default(),
            checkpoint_every: Duration::from_millis(5),
            session_seed: None,
            clock: None,
            ladder: &Rung::LADDER,
            shard_driver: None,
        }
    }

    /// The setup this solver was built over, with the builder's lifetime
    /// (extension-layer hook: lets `asyncmg-shard` re-target the same
    /// hierarchy).
    pub fn setup_ref(&self) -> &'a MgSetup {
        self.setup
    }

    /// Snapshot of the scalar configuration (extension-layer hook).
    pub fn config(&self) -> SolverConfig {
        SolverConfig {
            method: self.method,
            threads: self.threads,
            t_max: self.t_max,
            tolerance: self.tolerance,
        }
    }

    /// The injected fault plan, if any (extension-layer hook).
    pub fn plan_ref(&self) -> Option<&'a FaultPlan> {
        self.plan
    }

    /// Selects the multigrid method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Number of threads; `0` selects the sequential backend.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Maximum corrections per grid (cycles). Always enforced, also under a
    /// tolerance.
    pub fn t_max(mut self, t_max: usize) -> Self {
        self.t_max = t_max;
        self
    }

    /// Stop when the relative residual drops below `relres` (capped by
    /// [`Solver::t_max`]). Asynchronous runs detect this with a monitor
    /// thread sampling every [`Solver::check_every`].
    pub fn tolerance(mut self, relres: f64) -> Self {
        self.tolerance = Some(relres);
        self
    }

    /// Sampling period of the asynchronous tolerance monitor.
    pub fn check_every(mut self, period: Duration) -> Self {
        self.check_every = period;
        self
    }

    /// Residual computation flavour for the asynchronous backend.
    pub fn res_comp(mut self, res_comp: ResComp) -> Self {
        self.res_comp = res_comp;
        self
    }

    /// Shared-write flavour for the asynchronous backend.
    pub fn write_mode(mut self, write: WriteMode) -> Self {
        self.write = write;
        self
    }

    /// Stop criterion for the asynchronous backend when *no* tolerance is
    /// set (a tolerance always selects [`StopCriterion::Tolerance`]).
    pub fn criterion(mut self, criterion: StopCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Execute the additive methods synchronously (global barrier and
    /// residual recomputation every cycle).
    pub fn sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// Hard wall-clock budget for the asynchronous backend: on expiry the
    /// watchdog stops all teams and the report's outcome is
    /// [`SolveOutcome::Faulted`]. Shorthand for setting
    /// [`RecoveryOptions::max_wall`].
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.recovery.max_wall = Some(budget);
        self
    }

    /// Quarantine any grid whose correction counter does not advance within
    /// `window` (asynchronous backend). Shorthand for setting
    /// [`RecoveryOptions::max_stall`].
    pub fn max_stall(mut self, window: Duration) -> Self {
        self.recovery.max_stall = Some(window);
        self
    }

    /// Full detection-and-recovery configuration for the asynchronous
    /// backend. Replaces anything set through [`Solver::timeout`] or
    /// [`Solver::max_stall`].
    pub fn recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = recovery;
        self
    }

    /// Injects a seeded deterministic [`FaultPlan`] into the asynchronous
    /// backend (resilience testing). Requires asynchronous execution; the
    /// injected faults and any recovery actions appear in
    /// [`SolveReport::faults`].
    pub fn fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Observes the run with a caller-owned [`Probe`].
    pub fn probe(mut self, probe: &'a dyn Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Records telemetry internally and attaches the [`SolveTrace`] to the
    /// report. Overrides [`Solver::probe`].
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Retry budget of a resilient session ([`Solver::resilient`]):
    /// attempt cap, backoff, and overall deadline.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Cadence of the watchdog's checkpoint snapshots during resilient
    /// sessions (asynchronous rungs only; attempt-end checkpoints are
    /// always taken).
    pub fn checkpoint_every(mut self, cadence: Duration) -> Self {
        self.checkpoint_every = cadence;
        self
    }

    /// Makes a resilient session deterministic: attempt `a` runs under a
    /// `VirtualSched` seeded from `(seed, a)` with count-based stopping,
    /// so the whole session — escalations, warm starts and final bits —
    /// replays identically for the same seed.
    pub fn session_seed(mut self, seed: u64) -> Self {
        self.session_seed = Some(seed);
        self
    }

    /// The clock a resilient session reads for backoff, deadline and
    /// checkpoint timestamps, and that asynchronous `Solver::run`s hand to
    /// the watchdog. A [`VirtualClock`](asyncmg_threads::VirtualClock)
    /// makes every timeout path deterministic and sleep-free.
    pub fn session_clock(mut self, clock: &'a dyn Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Replaces the degradation ladder of [`Solver::resilient`] (escalation
    /// walks the slice left to right and stays on the last rung). An empty
    /// slice selects the default [`Rung::LADDER`].
    pub fn ladder(mut self, ladder: &'a [Rung]) -> Self {
        self.ladder = ladder;
        self
    }

    /// Installs the driver that executes [`Rung::Sharded`] ladder rungs
    /// (`asyncmg-shard` provides one). Required before a resilient session
    /// whose ladder contains a sharded rung.
    pub fn shard_driver(mut self, driver: &'a dyn ShardRungDriver) -> Self {
        self.shard_driver = Some(driver);
        self
    }

    /// Runs a resilient session: checkpoint/rollback, retry with backoff,
    /// and the automatic degradation ladder, until the tolerance is met or
    /// the [`RetryPolicy`] is exhausted. Requires [`Solver::tolerance`].
    ///
    /// # Panics
    ///
    /// On invalid configuration; use [`Solver::try_resilient`] for a typed
    /// error.
    pub fn resilient(&self, b: &[f64]) -> SessionReport {
        match self.try_resilient(b) {
            Ok(report) => report,
            Err(e) => panic!("resilient session failed to start: {e}"),
        }
    }

    /// [`Solver::resilient`] with up-front validation instead of panicking.
    pub fn try_resilient(&self, b: &[f64]) -> Result<SessionReport, SessionError> {
        run_session(self, b)
    }

    /// Runs a resilient session toward whatever goal this solver has: the
    /// configured [`Solver::tolerance`], or — unlike
    /// [`Solver::try_resilient`], which rejects tolerance-free solvers —
    /// [`SessionGoal::Budget`](crate::resilience::SessionGoal::Budget) when
    /// none is set (succeed on the first attempt that runs its budget
    /// cleanly). This is the rescue entry point the solver service uses for
    /// sick batch columns, whose requests may not carry a tolerance.
    pub fn try_fallback(&self, b: &[f64]) -> Result<SessionReport, SessionError> {
        let goal = self.tolerance.map_or(
            crate::resilience::SessionGoal::Budget,
            crate::resilience::SessionGoal::Tolerance,
        );
        crate::resilience::run_session_goal(self, b, goal)
    }

    /// The [`AsyncOptions`] this builder resolves to for the threaded
    /// additive backends.
    fn async_options(&self, method: AdditiveMethod) -> AsyncOptions {
        let criterion = match self.tolerance {
            Some(relres) => StopCriterion::Tolerance { relres, check_every: self.check_every },
            None => self.criterion,
        };
        AsyncOptions {
            method,
            res_comp: self.res_comp,
            write: self.write,
            t_max: self.t_max,
            n_threads: self.threads,
            sync: self.sync,
            criterion,
            recovery: self.recovery,
        }
    }

    /// Validates the right-hand side and every configured option without
    /// running anything (the checks behind [`Solver::try_run`] and
    /// [`Solver::try_resilient`]).
    pub(crate) fn validate(&self, b: &[f64]) -> Result<(), SolveError> {
        let n = self.setup.n();
        if b.len() != n {
            return Err(SolveError::RhsLength { expected: n, got: b.len() });
        }
        if let Some(index) = b.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFiniteRhs { index });
        }
        if self.t_max == 0 {
            return Err(SolveError::InvalidOptions("t_max must be positive".into()));
        }
        if let Some(t) = self.tolerance {
            if !(t.is_finite() && t > 0.0) {
                return Err(SolveError::InvalidOptions(format!(
                    "tolerance {t} must be finite and positive"
                )));
            }
        }
        if self.plan.is_some_and(|p| !p.is_empty()) && (self.sync || self.threads == 0) {
            return Err(SolveError::InvalidOptions(
                "fault injection requires the asynchronous threaded backend".into(),
            ));
        }
        if self.threads > 0 {
            let method = self.method.additive().unwrap_or(AdditiveMethod::Multadd);
            self.async_options(method).validate().map_err(SolveError::InvalidOptions)?;
        } else {
            self.recovery.validate().map_err(SolveError::InvalidOptions)?;
        }
        Ok(())
    }

    /// [`Solver::run`] with up-front validation: the right-hand side and
    /// every configured option are checked before any thread is spawned,
    /// returning a typed [`SolveError`] instead of panicking mid-solve.
    pub fn try_run(&self, b: &[f64]) -> Result<SolveReport, SolveError> {
        self.validate(b)?;
        Ok(self.run(b))
    }

    /// Runs the configured solver on `b`.
    pub fn run(&self, b: &[f64]) -> SolveReport {
        if self.collect_trace {
            // One ring per worker thread; the monitor's residual samples go
            // through the probe's mutex, not a ring.
            let mut probe = TelemetryProbe::with_threads(self.threads.max(1));
            let mut report = self.run_with(b, &probe);
            report.trace = Some(probe.take_trace());
            report
        } else if let Some(probe) = self.probe {
            self.run_with(b, &probe)
        } else {
            self.run_with(b, &NoopProbe)
        }
    }

    /// Runs with an explicit probe (monomorphised per probe type).
    fn run_with<P: Probe + ?Sized>(&self, b: &[f64], probe: &P) -> SolveReport {
        match (self.threads, self.method.additive()) {
            (0, None) => {
                let start = std::time::Instant::now();
                let res = solve_mult_probed(self.setup, b, self.t_max, self.tolerance, probe);
                sequential_report(res, start.elapsed(), 1, self.tolerance)
            }
            (0, Some(method)) => {
                let start = std::time::Instant::now();
                let res =
                    solve_additive_probed(self.setup, method, b, self.t_max, self.tolerance, probe);
                sequential_report(res, start.elapsed(), self.setup.n_levels(), self.tolerance)
            }
            (threads, None) => {
                let res = solve_mult_threaded_probed(
                    self.setup,
                    b,
                    threads,
                    self.t_max,
                    self.tolerance,
                    probe,
                );
                threaded_report(res, self.tolerance)
            }
            (_, Some(method)) => {
                let opts = self.async_options(method);
                let res =
                    solve_async_clocked(self.setup, b, &opts, probe, None, self.plan, self.clock);
                threaded_report(res, self.tolerance)
            }
        }
    }
}

/// Report for the sequential backends: the cycle count is the history
/// length, identical on every grid, and the per-cycle tolerance check is
/// exact (no racy reads), so `relres < tol` is authoritative.
fn sequential_report(
    res: crate::additive::SolveResult,
    elapsed: Duration,
    n_grids: usize,
    tolerance: Option<f64>,
) -> SolveReport {
    let cycles = res.history.len();
    let relres = res.final_relres();
    let hit_tol = tolerance.is_some_and(|t| relres < t);
    let outcome = if !relres.is_finite() {
        SolveOutcome::Faulted
    } else if hit_tol {
        SolveOutcome::Converged
    } else {
        SolveOutcome::MaxIterations
    };
    SolveReport {
        x: res.x,
        relres,
        converged: tolerance.is_none() || hit_tol,
        grid_corrections: vec![cycles; n_grids],
        corrects_mean: cycles as f64,
        history: res.history,
        elapsed,
        outcome,
        faults: Vec::new(),
        trace: None,
    }
}

/// Report for the threaded backends. `converged` uses the backend's
/// release/acquire `stopped_on_tolerance` flag — not only the racy final
/// residual — so it is schedule-independent.
fn threaded_report(res: AsyncResult, tolerance: Option<f64>) -> SolveReport {
    SolveReport {
        converged: tolerance.is_none_or(|t| res.stopped_on_tolerance || res.relres < t),
        x: res.x,
        relres: res.relres,
        grid_corrections: res.grid_corrections,
        corrects_mean: res.corrects_mean,
        history: Vec::new(),
        elapsed: res.elapsed,
        outcome: res.outcome,
        faults: res.faults,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

    fn setup_n(n: usize) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    #[test]
    fn sequential_mult_through_builder() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 1);
        let report = Solver::new(&s).method(Method::Mult).threads(0).t_max(20).run(&b);
        assert!(report.relres < 1e-5, "relres {}", report.relres);
        assert_eq!(report.history.len(), 20);
        assert_eq!(report.grid_corrections, vec![20]);
    }

    #[test]
    fn sequential_tolerance_stops_early() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 2);
        let report =
            Solver::new(&s).method(Method::Mult).threads(0).t_max(100).tolerance(1e-6).run(&b);
        assert!(report.converged);
        assert!(report.relres < 1e-6);
        assert!(report.history.len() < 100, "stopped after {} cycles", report.history.len());
    }

    #[test]
    fn async_multadd_through_builder() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let report = Solver::new(&s).method(Method::Multadd).threads(4).t_max(40).run(&b);
        assert!(report.relres < 1e-2, "relres {}", report.relres);
        assert!(report.grid_corrections.iter().all(|&c| c == 40));
    }

    #[test]
    fn trace_collection_matches_counters() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 4);
        let report =
            Solver::new(&s).method(Method::Multadd).threads(4).t_max(10).with_trace().run(&b);
        let trace = report.trace.expect("with_trace attaches a trace");
        assert_eq!(trace.grid_corrections(), report.grid_corrections);
        assert!(!trace.residual_history.is_empty());
    }

    #[test]
    fn threaded_mult_through_builder() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 5);
        let report = Solver::new(&s).method(Method::Mult).threads(4).t_max(20).run(&b);
        assert!(report.relres < 1e-5, "relres {}", report.relres);
    }

    #[test]
    fn try_run_validates_inputs() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 6);

        let short = vec![1.0; s.n() - 1];
        assert!(matches!(
            Solver::new(&s).try_run(&short),
            Err(SolveError::RhsLength { got, .. }) if got == s.n() - 1
        ));

        let mut poisoned = b.clone();
        poisoned[3] = f64::NAN;
        assert_eq!(
            Solver::new(&s).try_run(&poisoned).err(),
            Some(SolveError::NonFiniteRhs { index: 3 })
        );

        assert!(matches!(
            Solver::new(&s).tolerance(-1.0).try_run(&b),
            Err(SolveError::InvalidOptions(_))
        ));
        assert!(matches!(Solver::new(&s).t_max(0).try_run(&b), Err(SolveError::InvalidOptions(_))));

        let plan = asyncmg_threads::FaultPlan::new(1)
            .with(asyncmg_threads::Fault::Crash { team: 0, at_round: 0 });
        assert!(matches!(
            Solver::new(&s).sync(true).fault_plan(&plan).try_run(&b),
            Err(SolveError::InvalidOptions(_))
        ));

        let bad = RecoveryOptions { damping: -1.0, ..Default::default() };
        assert!(matches!(
            Solver::new(&s).recovery(bad).try_run(&b),
            Err(SolveError::InvalidOptions(_))
        ));
    }

    #[test]
    fn try_run_solves_valid_input() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 7);
        let report = Solver::new(&s)
            .method(Method::Multadd)
            .threads(4)
            .t_max(500)
            .tolerance(1e-6)
            .timeout(Duration::from_secs(60))
            .try_run(&b)
            .expect("valid configuration");
        assert!(report.converged);
        assert_eq!(report.outcome, SolveOutcome::Converged);
        assert!(report.faults.is_empty());
    }

    #[test]
    fn fault_plan_through_builder_degrades_report() {
        use asyncmg_threads::{Corruption, Fault, FaultPlan};
        let s = setup_n(6);
        let b = random_rhs(s.n(), 8);
        let plan = FaultPlan::new(9).with(Fault::CorruptWrite {
            grid: 0,
            at_round: 1,
            kind: Corruption::Nan,
        });
        let report = Solver::new(&s)
            .method(Method::Multadd)
            .threads(4)
            .t_max(20)
            .recovery(RecoveryOptions::defended())
            .fault_plan(&plan)
            .run(&b);
        assert_eq!(report.outcome, SolveOutcome::Degraded);
        assert!(!report.faults.is_empty());
        assert!(report.relres.is_finite());
    }

    #[test]
    fn model_options_validate_ranges() {
        use crate::models::ModelOptions;
        assert!(ModelOptions::default().validate().is_ok());
        assert!(ModelOptions { alpha: 0.0, ..Default::default() }.validate().is_err());
        assert!(ModelOptions { alpha: f64::NAN, ..Default::default() }.validate().is_err());
        assert!(ModelOptions { updates_per_grid: 0, ..Default::default() }.validate().is_err());
    }
}
