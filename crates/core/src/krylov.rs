//! Preconditioned conjugate gradients.
//!
//! Section II.B notes that BPX "is typically used as a preconditioner"
//! because, as an additive solver, it over-corrects and diverges. This
//! module provides the CG solver that realises that use: any of the
//! multigrid operators of this crate (one multiplicative V-cycle, one BPX
//! application, one Multadd application) can serve as the SPD
//! preconditioner `B ≈ A⁻¹`.

use crate::additive::{grid_correction, AdditiveMethod};
use crate::mult::mult_vcycle;
use crate::setup::MgSetup;
use crate::workspace::Workspace;
use asyncmg_sparse::{vecops, Csr};
use asyncmg_telemetry::{NoopProbe, Probe};
use std::time::Instant;

/// An SPD preconditioner application `z = B r`.
pub trait Preconditioner {
    /// Applies the preconditioner.
    fn apply(&mut self, r: &[f64], z: &mut [f64]);
}

/// No preconditioning (`B = I`).
pub struct IdentityPrec;

impl Preconditioner for IdentityPrec {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioning.
pub struct JacobiPrec {
    inv_diag: Vec<f64>,
}

impl JacobiPrec {
    /// Builds from the matrix diagonal.
    pub fn new(a: &Csr) -> Self {
        JacobiPrec {
            inv_diag: a.diag().iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect(),
        }
    }
}

impl Preconditioner for JacobiPrec {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = self.inv_diag[i] * r[i];
        }
    }
}

/// One multiplicative V(1,1)-cycle as a preconditioner.
///
/// With a symmetric smoother (Jacobi variants) the V(1,1)-cycle operator is
/// SPD, as required by CG.
pub struct VCyclePrec<'a> {
    setup: &'a MgSetup,
    scratch: Workspace,
}

impl<'a> VCyclePrec<'a> {
    /// Builds the preconditioner.
    pub fn new(setup: &'a MgSetup) -> Self {
        VCyclePrec { setup, scratch: Workspace::new(setup) }
    }
}

impl Preconditioner for VCyclePrec<'_> {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        self.scratch.r[0].copy_from_slice(r);
        mult_vcycle(self.setup, z, &mut self.scratch);
    }
}

/// One application of an additive method (BPX or Multadd) as a
/// preconditioner: `z = Σ_k P_k Λ_k P_kᵀ r`.
pub struct AdditivePrec<'a> {
    setup: &'a MgSetup,
    method: AdditiveMethod,
    scratch: Workspace,
    corr: Vec<f64>,
}

impl<'a> AdditivePrec<'a> {
    /// Builds the preconditioner for `method`.
    pub fn new(setup: &'a MgSetup, method: AdditiveMethod) -> Self {
        AdditivePrec { setup, method, scratch: Workspace::new(setup), corr: vec![0.0; setup.n()] }
    }
}

impl Preconditioner for AdditivePrec<'_> {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.setup.n_levels() {
            grid_correction(self.setup, self.method, k, r, &mut self.corr, &mut self.scratch);
            vecops::axpy(1.0, &self.corr, z);
        }
    }
}

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The approximation.
    pub x: Vec<f64>,
    /// Relative residual per iteration (recurrence residual).
    pub history: Vec<f64>,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Preconditioned conjugate gradients for SPD `A`, from `x = 0`, until
/// `‖r‖₂/‖b‖₂ < tol` or `max_iter` iterations.
pub fn pcg<P: Preconditioner>(
    a: &Csr,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    prec: &mut P,
) -> CgResult {
    pcg_probed(a, b, tol, max_iter, prec, &NoopProbe)
}

/// [`pcg`] with telemetry: the recurrence residual of every iteration is
/// sampled into `probe`.
pub fn pcg_probed<P: Preconditioner, Pr: Probe + ?Sized>(
    a: &Csr,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    prec: &mut P,
    probe: &Pr,
) -> CgResult {
    let n = a.nrows();
    let nb = vecops::norm2(b).max(1e-300);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    prec.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut history = Vec::new();
    let mut converged = false;
    let epoch = Instant::now();
    for _ in 0..max_iter {
        a.spmv(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Indefinite preconditioned operator (e.g. a divergent additive
            // method used as B): stop rather than produce garbage.
            break;
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        let rel = vecops::norm2(&r) / nb;
        history.push(rel);
        if probe.enabled() {
            probe.residual_sample(epoch.elapsed().as_nanos() as u64, rel);
        }
        if rel < tol {
            converged = true;
            break;
        }
        prec.apply(&r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    CgResult { x, history, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

    fn setup_n(n: usize) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    #[test]
    fn plain_cg_converges_slowly() {
        let s = setup_n(8);
        let b = random_rhs(s.n(), 1);
        let res = pcg(s.a(0), &b, 1e-8, 500, &mut IdentityPrec);
        assert!(res.converged, "CG failed: {:?}", res.history.last());
        assert!(res.history.len() > 20, "unexpectedly fast: {}", res.history.len());
    }

    #[test]
    fn jacobi_prec_converges() {
        let s = setup_n(8);
        let b = random_rhs(s.n(), 2);
        let mut prec = JacobiPrec::new(s.a(0));
        let res = pcg(s.a(0), &b, 1e-8, 500, &mut prec);
        assert!(res.converged);
    }

    #[test]
    fn vcycle_prec_is_much_faster_than_plain_cg() {
        let s = setup_n(8);
        let b = random_rhs(s.n(), 3);
        let plain = pcg(s.a(0), &b, 1e-8, 500, &mut IdentityPrec);
        let mut prec = VCyclePrec::new(&s);
        let mg = pcg(s.a(0), &b, 1e-8, 500, &mut prec);
        assert!(mg.converged);
        assert!(
            mg.history.len() * 2 <= plain.history.len(),
            "V-cycle PCG {} its vs plain {} its",
            mg.history.len(),
            plain.history.len()
        );
        assert!(mg.history.len() <= 15, "{} iterations", mg.history.len());
    }

    #[test]
    fn bpx_preconditioner_makes_cg_converge() {
        // The paper's point: BPX diverges as a solver but works as a
        // preconditioner.
        let s = setup_n(8);
        let b = random_rhs(s.n(), 4);
        let solver = crate::solver::Solver::new(&s)
            .method(crate::solver::Method::Bpx)
            .threads(0)
            .t_max(20)
            .run(&b);
        assert!(solver.relres > 1.0, "BPX-as-solver should over-correct");
        let mut prec = AdditivePrec::new(&s, AdditiveMethod::Bpx);
        let res = pcg(s.a(0), &b, 1e-8, 200, &mut prec);
        assert!(res.converged, "BPX-PCG failed");
        assert!(res.history.len() <= 60, "{} iterations", res.history.len());
    }

    #[test]
    fn multadd_preconditioner_converges_fast() {
        let s = setup_n(8);
        let b = random_rhs(s.n(), 5);
        let mut prec = AdditivePrec::new(&s, AdditiveMethod::Multadd);
        let res = pcg(s.a(0), &b, 1e-8, 100, &mut prec);
        assert!(res.converged);
        assert!(res.history.len() <= 20, "{} iterations", res.history.len());
    }

    #[test]
    fn solution_matches_direct_solve() {
        let s = setup_n(6);
        let xs = random_rhs(s.n(), 6);
        let mut b = vec![0.0; s.n()];
        s.a(0).spmv(&xs, &mut b);
        let mut prec = VCyclePrec::new(&s);
        let res = pcg(s.a(0), &b, 1e-12, 200, &mut prec);
        assert!(res.converged);
        for (g, e) in res.x.iter().zip(&xs) {
            assert!((g - e).abs() < 1e-8, "{g} vs {e}");
        }
    }
}
