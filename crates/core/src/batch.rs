//! Batched multi-RHS multiplicative V-cycles.
//!
//! The solver service coalesces same-matrix requests into one blocked solve:
//! `nrhs` right-hand sides advance through the hierarchy together, with every
//! kernel (SpMM, blocked smoothing, per-column coarse solves) amortising the
//! matrix traversal across the columns.
//!
//! The whole module is built around one guarantee: **column `c` of a batched
//! solve is bit-identical to a solo [`solve_mult_probed`] of that column**.
//! Every blocked kernel keeps per-column accumulators in the exact single-RHS
//! accumulation order (see `dot4` in `asyncmg-sparse`), per-column stopping
//! is tracked independently (a column that converges is snapshotted at the
//! cycle where its solo run would have stopped, while the block keeps
//! cycling for the rest), and the residual norms are computed per column with
//! the same `vecops::norm2` the solo driver uses.
//!
//! [`solve_mult_probed`]: crate::mult::solve_mult_probed

use crate::setup::{CoarseSolve, MgSetup};
use asyncmg_sparse::vecops;

/// Per-column solve parameters of one batched request.
#[derive(Clone, Copy, Debug)]
pub struct BatchSpec {
    /// Early-stopping tolerance on the relative residual (`None` runs the
    /// column for its full `t_max` cycles).
    pub tol: Option<f64>,
    /// Cycle budget for this column (must be ≥ 1).
    pub t_max: usize,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec { tol: None, t_max: 50 }
    }
}

/// The result of one batched solve: `nrhs` columns, column-major.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Solutions, column `c` at `[c·n, (c+1)·n)`.
    pub x: Vec<f64>,
    /// Final relative residual per column (at that column's stopping cycle).
    pub relres: Vec<f64>,
    /// Cycles each column actually ran before freezing.
    pub cycles: Vec<usize>,
    /// Per-column relative-residual history (one entry per cycle run).
    pub history: Vec<Vec<f64>>,
}

impl BatchResult {
    /// Relative residual above which a column counts as diverged (far worse
    /// than the zero initial guess, whose relative residual is exactly 1).
    pub const DIVERGED_RELRES: f64 = 1e3;

    /// Columns whose solve failed numerically — a non-finite solution entry,
    /// a non-finite final residual, or clear divergence
    /// ([`BatchResult::DIVERGED_RELRES`]). The solver service splits these
    /// out of their batch and retries them solo down the degradation ladder
    /// so one poisoned right-hand side cannot fail its batch-mates.
    pub fn sick_columns(&self) -> Vec<usize> {
        let nrhs = self.relres.len();
        let n = self.x.len().checked_div(nrhs).unwrap_or(0);
        (0..nrhs)
            .filter(|&c| {
                !self.relres[c].is_finite()
                    || self.relres[c] >= Self::DIVERGED_RELRES
                    || self.x[c * n..(c + 1) * n].iter().any(|v| !v.is_finite())
            })
            .collect()
    }
}

/// Pre-sized per-level blocked work vectors: the multi-RHS analogue of
/// [`Workspace`](crate::workspace::Workspace), every buffer `nrhs` columns
/// wide. Owned and reused by the solver service across batches.
pub struct BlockWorkspace {
    nrhs: usize,
    /// Level sizes this workspace was built for (to detect setup changes).
    sizes: Vec<usize>,
    r: Vec<Vec<f64>>,
    e: Vec<Vec<f64>>,
    buf: Vec<Vec<f64>>,
    /// Fine-grid blocked residual of the outer solve loop.
    res: Vec<f64>,
}

impl BlockWorkspace {
    /// Allocates blocked buffers for `nrhs` columns over `setup`'s levels.
    pub fn new(setup: &MgSetup, nrhs: usize) -> Self {
        let sizes = setup.hierarchy.level_sizes();
        let n = sizes[0];
        BlockWorkspace {
            nrhs,
            r: sizes.iter().map(|&m| vec![0.0; m * nrhs]).collect(),
            e: sizes.iter().map(|&m| vec![0.0; m * nrhs]).collect(),
            buf: sizes.iter().map(|&m| vec![0.0; m * nrhs]).collect(),
            res: vec![0.0; n * nrhs],
            sizes,
        }
    }

    /// The number of columns this workspace holds.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Ensures the workspace covers `setup` with at least `nrhs` columns,
    /// reallocating only when the shape actually changed.
    pub fn ensure(&mut self, setup: &MgSetup, nrhs: usize) {
        if self.nrhs != nrhs || self.sizes != setup.hierarchy.level_sizes() {
            *self = BlockWorkspace::new(setup, nrhs);
        }
    }
}

/// One blocked multiplicative V-cycle over `nrhs` columns: updates the
/// column-major block `x` in place given the current blocked fine-grid
/// residual in `scratch.r[0]`. Mirrors `mult_vcycle` step for step; each
/// column's arithmetic is bit-identical to the single-RHS cycle.
pub fn mult_vcycle_block(
    setup: &MgSetup,
    nrhs: usize,
    x: &mut [f64],
    scratch: &mut BlockWorkspace,
) {
    debug_assert_eq!(scratch.nrhs, nrhs);
    let ell = setup.n_levels() - 1;
    // Downward sweep: pre-smooth and restrict.
    for k in 0..ell {
        let (r_head, r_tail) = scratch.r.split_at_mut(k + 1);
        let rk = &r_head[k];
        let ek = &mut scratch.e[k];
        let buf = &mut scratch.buf[k];
        setup.smoothers[k].apply_zero_multi(setup.a(k), nrhs, rk, ek);
        for _ in 1..setup.opts.n_pre {
            setup.smoothers[k].relax_multi(setup.a(k), nrhs, rk, ek, buf);
        }
        // r_{k+1} = Rᵀ (r_k − A_k e_k), column by column in one SpMM.
        setup.a(k).spmv_block(nrhs, ek, buf);
        for i in 0..buf.len() {
            buf[i] = rk[i] - buf[i];
        }
        setup.r(k).spmv_block(nrhs, buf, &mut r_tail[0]);
    }
    // Coarsest solve: e_ℓ = A_ℓ⁻¹ r_ℓ, per column (the dense LU forward/back
    // substitution is already a per-column operation).
    let m = setup.a(ell).nrows();
    match (setup.opts.coarse, &setup.hierarchy.coarse_lu) {
        (CoarseSolve::Exact, Some(lu)) => {
            for c in 0..nrhs {
                lu.solve(
                    &scratch.r[ell][c * m..(c + 1) * m],
                    &mut scratch.e[ell][c * m..(c + 1) * m],
                );
            }
        }
        _ => {
            let sweeps = match setup.opts.coarse {
                CoarseSolve::Smooth { sweeps } => sweeps,
                CoarseSolve::Exact => 2,
            };
            setup.smoothers[ell].apply_zero_multi(
                setup.a(ell),
                nrhs,
                &scratch.r[ell],
                &mut scratch.e[ell],
            );
            for _ in 1..sweeps {
                let (r, e, buf) = (&scratch.r[ell], &mut scratch.e[ell], &mut scratch.buf[ell]);
                setup.smoothers[ell].relax_multi(setup.a(ell), nrhs, r, e, buf);
            }
        }
    }
    // Upward sweep: prolongate and post-smooth.
    for k in (0..ell).rev() {
        let (e_head, e_tail) = scratch.e.split_at_mut(k + 1);
        let ek = &mut e_head[k];
        setup.p(k).spmv_block(nrhs, &e_tail[0], &mut scratch.buf[k]);
        for i in 0..ek.len() {
            ek[i] += scratch.buf[k][i];
        }
        for _ in 0..setup.opts.n_post.max(1) {
            setup.smoothers[k].relax_multi(
                setup.a(k),
                nrhs,
                &scratch.r[k],
                ek,
                &mut scratch.buf[k],
            );
        }
    }
    vecops::axpy(1.0, &scratch.e[0], x);
}

/// Runs batched multiplicative V(1,1)-cycles from `x = 0` over the
/// column-major block `b` (`specs.len()` columns), reusing `scratch`.
///
/// Columns stop independently: once column `c` meets its tolerance or
/// exhausts its `t_max`, its solution is snapshotted at that cycle — exactly
/// where a solo [`solve_mult_probed`](crate::mult::solve_mult_probed) of that
/// column would have stopped — while the remaining columns keep cycling.
pub fn solve_mult_batch_with(
    setup: &MgSetup,
    b: &[f64],
    specs: &[BatchSpec],
    scratch: &mut BlockWorkspace,
) -> BatchResult {
    let n = setup.n();
    let nrhs = specs.len();
    assert_eq!(b.len(), n * nrhs, "b must hold one column of length n per spec");
    assert!(specs.iter().all(|s| s.t_max >= 1), "every column needs t_max >= 1");
    scratch.ensure(setup, nrhs);
    let nb: Vec<f64> = (0..nrhs).map(|c| vecops::norm2(&b[c * n..(c + 1) * n])).collect();
    let mut x = vec![0.0; n * nrhs];
    let mut out = vec![0.0; n * nrhs];
    let mut relres = vec![f64::INFINITY; nrhs];
    let mut cycles = vec![0usize; nrhs];
    let mut history: Vec<Vec<f64>> = vec![Vec::new(); nrhs];
    let mut done = vec![false; nrhs];
    let t_limit = specs.iter().map(|s| s.t_max).max().unwrap_or(0);
    for cycle in 0..t_limit {
        setup.a(0).residual_block(nrhs, b, &x, &mut scratch.r[0]);
        mult_vcycle_block(setup, nrhs, &mut x, scratch);
        setup.a(0).residual_block(nrhs, b, &x, &mut scratch.res);
        let mut all_done = true;
        for c in 0..nrhs {
            if done[c] {
                continue;
            }
            let rn = vecops::norm2(&scratch.res[c * n..(c + 1) * n]);
            let rel = if nb[c] > 0.0 { rn / nb[c] } else { rn };
            history[c].push(rel);
            let converged = specs[c].tol.is_some_and(|t| rel < t);
            if converged || cycle + 1 == specs[c].t_max {
                relres[c] = rel;
                cycles[c] = cycle + 1;
                out[c * n..(c + 1) * n].copy_from_slice(&x[c * n..(c + 1) * n]);
                done[c] = true;
            } else {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
    }
    BatchResult { x: out, relres, cycles, history }
}

/// [`solve_mult_batch_with`] with a freshly allocated workspace.
pub fn solve_mult_batch(setup: &MgSetup, b: &[f64], specs: &[BatchSpec]) -> BatchResult {
    let mut scratch = BlockWorkspace::new(setup, specs.len());
    solve_mult_batch_with(setup, b, specs, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::solve_mult_probed;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
    use asyncmg_smoothers::SmootherKind;
    use asyncmg_telemetry::NoopProbe;

    fn setup_n(n: usize, opts: MgOptions) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, opts)
    }

    fn block_rhs(n: usize, nrhs: usize, seed0: u64) -> Vec<f64> {
        let mut b = Vec::with_capacity(n * nrhs);
        for c in 0..nrhs {
            b.extend(random_rhs(n, seed0 + c as u64));
        }
        b
    }

    #[test]
    fn batch_matches_solo_bitwise_fixed_cycles() {
        for kind in
            [SmootherKind::WJacobi { omega: 0.9 }, SmootherKind::L1Jacobi, SmootherKind::HybridJgs]
        {
            let s = setup_n(6, MgOptions { smoother: kind, ..Default::default() });
            let n = s.n();
            let nrhs = 3;
            let b = block_rhs(n, nrhs, 40);
            let specs = vec![BatchSpec { tol: None, t_max: 8 }; nrhs];
            let batch = solve_mult_batch(&s, &b, &specs);
            for c in 0..nrhs {
                let solo = solve_mult_probed(&s, &b[c * n..(c + 1) * n], 8, None, &NoopProbe);
                assert_eq!(batch.cycles[c], 8);
                for i in 0..n {
                    assert_eq!(
                        batch.x[c * n + i].to_bits(),
                        solo.x[i].to_bits(),
                        "{} col {c} row {i}",
                        kind.name()
                    );
                }
                assert_eq!(batch.history[c].len(), solo.history.len());
                for (h1, h2) in batch.history[c].iter().zip(&solo.history) {
                    assert_eq!(h1.to_bits(), h2.to_bits());
                }
            }
        }
    }

    #[test]
    fn batch_matches_solo_bitwise_with_per_column_stopping() {
        let s = setup_n(7, MgOptions::default());
        let n = s.n();
        // Heterogeneous tolerances and budgets: columns freeze at different
        // cycles while the block keeps going.
        let specs = [
            BatchSpec { tol: Some(1e-3), t_max: 30 },
            BatchSpec { tol: Some(1e-9), t_max: 30 },
            BatchSpec { tol: None, t_max: 5 },
        ];
        let b = block_rhs(n, specs.len(), 77);
        let batch = solve_mult_batch(&s, &b, &specs);
        assert!(batch.cycles[0] < batch.cycles[1], "loose tol must freeze earlier");
        for (c, spec) in specs.iter().enumerate() {
            let solo =
                solve_mult_probed(&s, &b[c * n..(c + 1) * n], spec.t_max, spec.tol, &NoopProbe);
            assert_eq!(batch.cycles[c], solo.history.len(), "col {c} cycle count");
            assert_eq!(batch.relres[c].to_bits(), solo.final_relres().to_bits(), "col {c}");
            for i in 0..n {
                assert_eq!(batch.x[c * n + i].to_bits(), solo.x[i].to_bits(), "col {c} row {i}");
            }
        }
    }

    #[test]
    fn single_column_batch_equals_solo() {
        let s = setup_n(6, MgOptions::default());
        let n = s.n();
        let b = random_rhs(n, 5);
        let batch = solve_mult_batch(&s, &b, &[BatchSpec { tol: Some(1e-8), t_max: 40 }]);
        let solo = solve_mult_probed(&s, &b, 40, Some(1e-8), &NoopProbe);
        for i in 0..n {
            assert_eq!(batch.x[i].to_bits(), solo.x[i].to_bits(), "row {i}");
        }
        assert!(batch.relres[0] < 1e-8);
    }

    #[test]
    fn sick_columns_flags_nonfinite_and_diverged() {
        let healthy = BatchResult {
            x: vec![1.0, 2.0, 3.0, 4.0],
            relres: vec![1e-8, 0.5],
            cycles: vec![3, 3],
            history: vec![vec![1e-8], vec![0.5]],
        };
        assert!(healthy.sick_columns().is_empty());
        let sick = BatchResult {
            x: vec![1.0, f64::NAN, 3.0, 4.0, 5.0, 6.0],
            relres: vec![1e-8, f64::INFINITY, 1e9],
            cycles: vec![3, 3, 3],
            history: vec![Vec::new(); 3],
        };
        // Column 0 has a NaN entry, column 1 a non-finite residual, column 2
        // a diverged residual.
        assert_eq!(sick.sick_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn workspace_ensure_reallocates_only_on_shape_change() {
        let s = setup_n(5, MgOptions::default());
        let mut ws = BlockWorkspace::new(&s, 2);
        let ptr = ws.r[0].as_ptr();
        ws.ensure(&s, 2);
        assert_eq!(ws.r[0].as_ptr(), ptr, "same shape must not reallocate");
        ws.ensure(&s, 4);
        assert_eq!(ws.nrhs(), 4);
    }
}
