//! Resilient solve sessions: checkpoint/rollback, retry with backoff, and
//! an automatic degradation ladder.
//!
//! The asynchronous runtime of this crate can already *survive* faults —
//! guards, quarantine, the watchdog ([`asynchronous`](crate::asynchronous))
//! — but a survived fault usually costs convergence: the solve ends
//! [`Degraded`](SolveOutcome::Degraded) or [`Faulted`](SolveOutcome::Faulted)
//! above tolerance. This module adds the session layer that turns those
//! structured failures into eventual success:
//!
//! * [`CheckpointStore`] — best-known-iterate snapshots, fed by the
//!   watchdog at a configurable cadence (and at quarantine events) through
//!   a [`CheckpointHook`], and by the
//!   session at every attempt end. Retries warm-start from the best
//!   checkpoint instead of from zero (rollback-to-best-known).
//! * [`RetryPolicy`] — bounded attempts, exponential backoff between them,
//!   and an overall deadline whose remainder is split evenly across the
//!   attempts still available (each asynchronous attempt gets the slice as
//!   its watchdog `max_wall`).
//! * [`Rung`] — the degradation ladder: fully asynchronous atomic-write →
//!   asynchronous lock-write → semi-asynchronous → synchronous
//!   multiplicative V-cycles → V-cycle-preconditioned CG
//!   ([`krylov`](crate::krylov)). Each failed attempt escalates one rung;
//!   asynchronous rungs retried after a fault failure run defended with
//!   progressively tightened damping.
//!
//! Every time-based decision of the session — backoff sleeps, the deadline,
//! checkpoint timestamps — goes through the session's
//! [`Clock`], so a test can drive the whole retry
//! schedule with a [`VirtualClock`](asyncmg_threads::VirtualClock) without
//! sleeping wall-clock time. A session seeded with
//! [`Solver::session_seed`](crate::Solver::session_seed) replays
//! bit-identically: attempt `a` runs under `VirtualSched::new(mix(seed, a))`
//! with count-based stopping, and the session itself computes the exact
//! relative residual that drives every convergence and escalation decision.

use crate::additive::AdditiveMethod;
use crate::asynchronous::{
    solve_async_hooked, AsyncOptions, CheckpointHook, RecoveryOptions, SolveOutcome, StopCriterion,
    WriteMode,
};
use crate::krylov::{pcg_probed, VCyclePrec};
use crate::mult::solve_mult_probed;
use crate::setup::MgSetup;
use crate::solver::{SolveError, Solver};
use asyncmg_sparse::vecops;
use asyncmg_telemetry::{
    AttemptRecord, FaultKind, FaultRecord, NoopProbe, Probe, ResidualSample, SolveTrace,
    TelemetryProbe,
};
use asyncmg_threads::{Clock, OsClock, Sched, VirtualSched};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One snapshot of the solve state: the iterate, its exact relative
/// residual, and where in the session it was taken.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The snapshotted iterate.
    pub x: Vec<f64>,
    /// Exact (or monitor-observed) relative residual of `x`.
    pub relres: f64,
    /// The session attempt that produced it.
    pub attempt: u32,
    /// Session-clock nanoseconds at which it was taken.
    pub t_ns: u64,
}

/// Keeps the best checkpoint seen so far (lowest finite relative residual),
/// plus taken/restored counters.
///
/// Shared between the session loop and the watchdog's
/// [`CheckpointHook`], so offers are
/// thread-safe; the best-so-far policy means rollback always goes to the
/// best known state, never to an older or worse one.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    best: Mutex<Option<Checkpoint>>,
    taken: AtomicUsize,
    restored: AtomicUsize,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Offers a snapshot; it becomes the best checkpoint iff its residual
    /// is finite and strictly better than the current best. Returns whether
    /// it was kept.
    pub fn offer(&self, x: &[f64], relres: f64, attempt: u32, t_ns: u64) -> bool {
        self.taken.fetch_add(1, Ordering::Relaxed);
        if !relres.is_finite() {
            return false;
        }
        let mut best = self.best.lock().unwrap();
        let better = best.as_ref().is_none_or(|c| relres < c.relres);
        if better {
            *best = Some(Checkpoint { x: x.to_vec(), relres, attempt, t_ns });
        }
        better
    }

    /// The best checkpoint so far, if any.
    pub fn best(&self) -> Option<Checkpoint> {
        self.best.lock().unwrap().clone()
    }

    /// Records that a retry warm-started from the best checkpoint.
    pub fn mark_restored(&self) {
        self.restored.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot for reports.
    pub fn stats(&self) -> CheckpointStats {
        let best = self.best.lock().unwrap();
        CheckpointStats {
            taken: self.taken.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            best_relres: best.as_ref().map(|c| c.relres),
            best_attempt: best.as_ref().map(|c| c.attempt),
        }
    }
}

/// Checkpoint activity of one session.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CheckpointStats {
    /// Snapshots offered to the store (watchdog cadence + quarantine +
    /// attempt ends).
    pub taken: usize,
    /// Retries that warm-started from the best checkpoint.
    pub restored: usize,
    /// Relative residual of the best checkpoint, if any was kept.
    pub best_relres: Option<f64>,
    /// Attempt that produced the best checkpoint.
    pub best_attempt: Option<u32>,
}

/// One rung of the degradation ladder, fastest-and-most-fragile first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// A sharded message-passing solve over this many shard workers,
    /// executed through the session's [`ShardRungDriver`]. Not part of the
    /// default ladder; `asyncmg-shard`'s `sharded_ladder` prefixes a
    /// halving sequence (S → S/2 → … → 1) onto [`Rung::LADDER`], so each
    /// escalation retries with fewer shards, warm-started from the best
    /// hub-assembled checkpoint.
    Sharded {
        /// Shard-worker count for this rung (the hub adds one more rank).
        shards: u32,
    },
    /// Fully asynchronous additive solve, atomic shared writes.
    AsyncAtomic,
    /// Fully asynchronous additive solve, lock shared writes.
    AsyncLock,
    /// Semi-asynchronous: concurrent grids with a global barrier per cycle
    /// (fault injection is dropped — the synchronous driver's barriers
    /// cannot survive a crashed team).
    SemiAsync,
    /// The sequential multiplicative V(1,1)-cycle baseline.
    SyncMult,
    /// Last resort: V-cycle-preconditioned conjugate gradients.
    Pcg,
}

impl Rung {
    /// The default full ladder, in escalation order.
    pub const LADDER: [Rung; 5] =
        [Rung::AsyncAtomic, Rung::AsyncLock, Rung::SemiAsync, Rung::SyncMult, Rung::Pcg];

    /// Stable lowercase name (used in the trace JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            Rung::Sharded { .. } => "sharded",
            Rung::AsyncAtomic => "async_atomic",
            Rung::AsyncLock => "async_lock",
            Rung::SemiAsync => "semi_async",
            Rung::SyncMult => "sync_mult",
            Rung::Pcg => "pcg",
        }
    }

    /// Whether this rung runs the asynchronous threaded backend (the only
    /// rungs fault plans and checkpoint hooks apply to).
    pub fn is_async(self) -> bool {
        matches!(self, Rung::AsyncAtomic | Rung::AsyncLock)
    }
}

/// What a resilient session is driving toward.
///
/// Tolerance-free requests (`tol: None` at the service layer) still need a
/// rescue path when their solve faults: [`SessionGoal::Budget`] runs the
/// same ladder but declares an attempt successful as soon as it finishes
/// *cleanly* — no fault, a finite residual — rather than requiring a target
/// residual. The ladder then exists purely to survive faults, not to
/// sharpen the answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionGoal {
    /// Reach a relative residual at or below this tolerance.
    Tolerance(f64),
    /// No tolerance: succeed on the first attempt that runs its budget to
    /// completion without faulting and leaves a finite residual.
    Budget,
}

impl SessionGoal {
    /// Whether an attempt with exact relative residual `relres` and
    /// structured outcome `outcome` satisfies this goal.
    fn met(self, relres: f64, outcome: SolveOutcome) -> bool {
        match self {
            SessionGoal::Tolerance(tol) => relres.is_finite() && relres <= tol,
            SessionGoal::Budget => {
                relres.is_finite()
                    && matches!(outcome, SolveOutcome::Converged | SolveOutcome::MaxIterations)
            }
        }
    }

    /// The residual target used to derive per-attempt shifted tolerances
    /// (budget goals run every rung to its full budget).
    fn tol(self) -> f64 {
        match self {
            SessionGoal::Tolerance(tol) => tol,
            SessionGoal::Budget => 0.0,
        }
    }
}

/// Retry budget of a resilient session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Hard cap on attempts (≥ 1).
    pub max_attempts: u32,
    /// Base backoff slept (through the session clock) before retry `a`,
    /// scaled by `2^(a-1)`.
    pub backoff: Duration,
    /// Overall wall-clock deadline for the session. Before each attempt the
    /// remaining budget is split evenly over the attempts still allowed,
    /// and an asynchronous attempt gets that slice as its watchdog
    /// `max_wall`. `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 6, backoff: Duration::from_millis(2), deadline: None }
    }
}

impl RetryPolicy {
    /// Validates field ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be at least 1".into());
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return Err("retry deadline must be non-zero".into());
        }
        Ok(())
    }
}

/// Why a session escalated past an attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscalationReason {
    /// The attempt ended [`SolveOutcome::Faulted`] (non-finite iterate or
    /// a hard failure).
    Faulted,
    /// The attempt ended [`SolveOutcome::Degraded`] above tolerance.
    Degraded,
    /// The attempt's watchdog budget expired (timeout in the fault log).
    Stalled,
    /// The attempt finished cleanly but above tolerance.
    AboveTolerance,
}

impl EscalationReason {
    /// Stable lowercase name (used in the trace JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            EscalationReason::Faulted => "faulted",
            EscalationReason::Degraded => "degraded",
            EscalationReason::Stalled => "stalled",
            EscalationReason::AboveTolerance => "above_tolerance",
        }
    }
}

/// What one attempt of a session did.
#[derive(Clone, Debug)]
pub struct AttemptReport {
    /// Attempt number (0-based).
    pub index: u32,
    /// The ladder rung it ran on.
    pub rung: Rung,
    /// Exact relative residual of the session iterate after the attempt.
    pub relres: f64,
    /// The attempt's structured outcome (session-level: an attempt whose
    /// exact residual meets the tolerance is `Converged` even if the
    /// backend reported degradation).
    pub outcome: SolveOutcome,
    /// Mean corrections per grid (asynchronous rungs), cycles (`SyncMult`)
    /// or iterations (`Pcg`).
    pub corrections: f64,
    /// Wall-clock duration of the attempt.
    pub elapsed: Duration,
    /// The attempt's fault log (injected faults and recovery actions).
    pub faults: Vec<FaultRecord>,
    /// Whether the attempt warm-started from a checkpoint.
    pub warm_start: bool,
    /// Why the session escalated past this attempt (`None` for the
    /// converging or final attempt).
    pub escalation: Option<EscalationReason>,
    /// The derived scheduler seed, for seeded (deterministic) sessions.
    pub sched_seed: Option<u64>,
}

/// The outcome of a resilient session: the final iterate plus the full
/// per-attempt history.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The best iterate the session produced.
    pub x: Vec<f64>,
    /// Its exact relative residual.
    pub relres: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Structured session outcome.
    pub outcome: SolveOutcome,
    /// Every attempt, in order, with escalation reasons.
    pub attempts: Vec<AttemptReport>,
    /// Checkpoint activity.
    pub checkpoints: CheckpointStats,
    /// Session duration on the session clock (virtual-clock sessions
    /// report virtual time).
    pub elapsed: Duration,
    /// Whether the session stopped because [`RetryPolicy::deadline`]
    /// expired before the attempts were exhausted.
    pub deadline_exhausted: bool,
    /// Merged telemetry across all attempts, when
    /// [`Solver::with_trace`](crate::Solver::with_trace) was set (attempt
    /// timelines are shifted onto the session clock).
    pub trace: Option<SolveTrace>,
}

impl SessionReport {
    /// The escalation path: `(attempt index, reason)` for every attempt the
    /// session moved past.
    pub fn escalations(&self) -> Vec<(u32, EscalationReason)> {
        self.attempts.iter().filter_map(|a| a.escalation.map(|e| (a.index, e))).collect()
    }

    /// The rung the final attempt ran on.
    pub fn final_rung(&self) -> Option<Rung> {
        self.attempts.last().map(|a| a.rung)
    }
}

/// A configuration failure detected before any session work starts.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// Resilient sessions need a target: set [`Solver::tolerance`](crate::Solver::tolerance).
    NoTolerance,
    /// The ladder contains a [`Rung::Sharded`] rung but no
    /// [`ShardRungDriver`] was installed
    /// ([`Solver::shard_driver`](crate::Solver::shard_driver)).
    MissingShardDriver,
    /// The [`RetryPolicy`] is out of range.
    InvalidRetry(String),
    /// The underlying solver configuration or right-hand side is invalid.
    Solve(SolveError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoTolerance => {
                write!(f, "resilient sessions need a tolerance to retry toward")
            }
            SessionError::MissingShardDriver => {
                write!(f, "the ladder has a sharded rung but no shard driver is installed")
            }
            SessionError::InvalidRetry(msg) => write!(f, "invalid retry policy: {msg}"),
            SessionError::Solve(e) => write!(f, "invalid session configuration: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

/// Derives attempt `a`'s scheduler seed from the session seed (splitmix64
/// finalizer, so consecutive attempts get decorrelated interleavings).
pub(crate) fn mix(seed: u64, attempt: u32) -> u64 {
    let mut z = seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One sharded-rung request, handed to the session's [`ShardRungDriver`]:
/// solve `A·dx = b` (the session's shifted system) to `tolerance`.
pub struct ShardAttempt<'a> {
    /// The hierarchy the session runs on.
    pub setup: &'a MgSetup,
    /// Right-hand side of the shifted system (`r0 = b − A·x0`).
    pub b: &'a [f64],
    /// Shard-worker count of the rung.
    pub shards: u32,
    /// Epoch budget per shard (the session's `t_max`).
    pub t_max: usize,
    /// Target relative residual on the shifted system.
    pub tolerance: f64,
    /// Derived attempt seed for seeded sessions: `Some` means the driver
    /// must run the fully virtual deterministic stack (seeded scheduler,
    /// seeded transport, virtual clock) so the attempt replays
    /// bit-identically. `None` means production transports and the OS
    /// clock.
    pub seed: Option<u64>,
}

/// What a [`ShardRungDriver`] produced for one [`ShardAttempt`].
pub struct ShardAttemptOutcome {
    /// The assembled approximation `dx`.
    pub x: Vec<f64>,
    /// Structured outcome of the sharded solve.
    pub outcome: SolveOutcome,
    /// Coarse-correction cycles the hub performed.
    pub corrections: f64,
    /// Wall-clock duration of the attempt.
    pub elapsed: Duration,
    /// The attempt's fault log (crashes, deaths, adoptions, guard trips).
    pub faults: Vec<FaultRecord>,
}

/// Executes [`Rung::Sharded`] rungs for a resilient session. Implemented by
/// `asyncmg-shard` (the core crate cannot depend on it); installed with
/// [`Solver::shard_driver`](crate::Solver::shard_driver).
pub trait ShardRungDriver: Sync {
    /// Runs one sharded attempt.
    fn run(&self, attempt: &ShardAttempt<'_>) -> ShardAttemptOutcome;
}

/// What one rung execution produced (on the shifted system `A·dx = r0`).
struct RungRun {
    dx: Vec<f64>,
    outcome: SolveOutcome,
    corrections: f64,
    elapsed: Duration,
    faults: Vec<FaultRecord>,
}

/// Stable lowercase outcome name (used in the trace JSON schema).
fn outcome_name(outcome: SolveOutcome) -> &'static str {
    match outcome {
        SolveOutcome::Converged => "converged",
        SolveOutcome::MaxIterations => "max_iterations",
        SolveOutcome::Degraded => "degraded",
        SolveOutcome::Faulted => "faulted",
    }
}

/// Executes one ladder rung on the shifted system `A·dx = r0` to relative
/// residual `attempt_tol` (so the unshifted iterate `x0 + dx` meets the
/// session tolerance).
// `AsyncOptions` is `#[non_exhaustive]`, so fields are set on a default
// rather than via a struct literal.
#[allow(clippy::too_many_arguments, clippy::field_reassign_with_default)]
fn run_rung(
    solver: &Solver<'_>,
    rung: Rung,
    r0: &[f64],
    attempt_tol: f64,
    seed: Option<u64>,
    slice: Option<Duration>,
    hook: Option<&CheckpointHook<'_>>,
    fault_failures: u32,
    probe: &dyn Probe,
) -> RungRun {
    let setup = solver.setup;
    match rung {
        Rung::Sharded { shards } => {
            // Validated by `run_session` before the loop starts.
            let driver = solver.shard_driver.expect("sharded rung without a driver");
            let attempt = ShardAttempt {
                setup,
                b: r0,
                shards,
                t_max: solver.t_max,
                tolerance: attempt_tol,
                seed,
            };
            let out = driver.run(&attempt);
            RungRun {
                dx: out.x,
                outcome: out.outcome,
                corrections: out.corrections,
                elapsed: out.elapsed,
                faults: out.faults,
            }
        }
        Rung::AsyncAtomic | Rung::AsyncLock | Rung::SemiAsync => {
            let deterministic = seed.is_some();
            let mut recovery = solver.recovery;
            if fault_failures > 0 {
                // Retrying after a fault failure: arm the defensive posture
                // (unless the caller already configured one) and tighten
                // the damping one notch per extra failure.
                if !recovery.any_enabled() {
                    recovery = RecoveryOptions::defended();
                }
                recovery.damping =
                    (recovery.damping * 0.5f64.powi(fault_failures as i32 - 1)).max(0.25);
            }
            if deterministic {
                // Wall-clock heuristics fire nondeterministically under the
                // serialised virtual scheduler; seeded sessions rely on the
                // exact session-level residual check instead.
                recovery.max_wall = None;
                recovery.max_stall = None;
                recovery.rollback_factor = None;
            } else if let Some(slice) = slice {
                recovery.max_wall = Some(recovery.max_wall.map_or(slice, |w| w.min(slice)));
            }
            let criterion = if deterministic {
                // Count-based stopping: the tolerance monitor samples
                // wall-clock time and would break bit-identical replay. The
                // session computes the exact residual itself afterwards.
                StopCriterion::One
            } else {
                StopCriterion::Tolerance { relres: attempt_tol, check_every: solver.check_every }
            };
            // `AsyncOptions` is `#[non_exhaustive]`, so fields are set on a
            // default rather than via a struct literal.
            let mut opts = AsyncOptions::default();
            opts.method = solver.method.additive().unwrap_or(AdditiveMethod::Multadd);
            opts.res_comp = solver.res_comp;
            opts.write = match rung {
                Rung::AsyncAtomic => WriteMode::Atomic,
                Rung::AsyncLock => WriteMode::Lock,
                _ => solver.write,
            };
            opts.criterion = criterion;
            opts.t_max = solver.t_max;
            opts.n_threads = solver.threads.max(1);
            opts.sync = rung == Rung::SemiAsync;
            opts.recovery = recovery;
            let plan = if rung.is_async() { solver.plan } else { None };
            let vs;
            let sched: Option<&dyn Sched> = match seed {
                Some(s) => {
                    vs = VirtualSched::new(s);
                    Some(&vs)
                }
                None => None,
            };
            let hook = hook.filter(|_| rung.is_async() && !deterministic);
            let res = solve_async_hooked(setup, r0, &opts, probe, sched, plan, None, hook);
            RungRun {
                dx: res.x,
                outcome: res.outcome,
                corrections: res.corrects_mean,
                elapsed: res.elapsed,
                faults: res.faults,
            }
        }
        Rung::SyncMult => {
            let start = std::time::Instant::now();
            let res = solve_mult_probed(setup, r0, solver.t_max, Some(attempt_tol), probe);
            let relres = res.final_relres();
            let outcome = if !relres.is_finite() {
                SolveOutcome::Faulted
            } else if relres < attempt_tol {
                SolveOutcome::Converged
            } else {
                SolveOutcome::MaxIterations
            };
            RungRun {
                corrections: res.history.len() as f64,
                dx: res.x,
                outcome,
                elapsed: start.elapsed(),
                faults: Vec::new(),
            }
        }
        Rung::Pcg => {
            let start = std::time::Instant::now();
            let mut prec = VCyclePrec::new(setup);
            let iters = solver.t_max.max(100);
            let res = pcg_probed(setup.a(0), r0, attempt_tol, iters, &mut prec, probe);
            let outcome = if res.x.iter().any(|v| !v.is_finite()) {
                SolveOutcome::Faulted
            } else if res.converged {
                SolveOutcome::Converged
            } else {
                SolveOutcome::MaxIterations
            };
            RungRun {
                corrections: res.history.len() as f64,
                dx: res.x,
                outcome,
                elapsed: start.elapsed(),
                faults: Vec::new(),
            }
        }
    }
}

/// Runs the resilient session loop for [`Solver::try_resilient`](crate::Solver::try_resilient).
pub(crate) fn run_session(solver: &Solver<'_>, b: &[f64]) -> Result<SessionReport, SessionError> {
    let tol = solver.tolerance.ok_or(SessionError::NoTolerance)?;
    run_session_goal(solver, b, SessionGoal::Tolerance(tol))
}

/// Runs the resilient session loop toward an explicit [`SessionGoal`] (the
/// entry point behind [`Solver::try_fallback`](crate::Solver::try_fallback)).
pub(crate) fn run_session_goal(
    solver: &Solver<'_>,
    b: &[f64],
    goal: SessionGoal,
) -> Result<SessionReport, SessionError> {
    let tol = goal.tol();
    solver.retry.validate().map_err(SessionError::InvalidRetry)?;
    solver.validate(b)?;
    let ladder: &[Rung] = if solver.ladder.is_empty() { &Rung::LADDER } else { solver.ladder };
    if ladder.iter().any(|r| matches!(r, Rung::Sharded { .. })) && solver.shard_driver.is_none() {
        return Err(SessionError::MissingShardDriver);
    }
    let policy = solver.retry;
    let setup = solver.setup;
    let n = setup.n();
    let a0 = setup.a(0);
    let os_clock;
    let clock: &dyn Clock = match solver.clock {
        Some(c) => c,
        None => {
            os_clock = OsClock::new();
            &os_clock
        }
    };
    let t0 = clock.now_ns();
    let now = || clock.now_ns().saturating_sub(t0);
    let norm_b = vecops::norm2(b).max(1e-300);
    let store = CheckpointStore::new();

    let mut trace = solver.collect_trace.then(SolveTrace::default);
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut x = vec![0.0; n];
    let mut relres = f64::INFINITY;
    let mut deadline_exhausted = false;
    let mut converged = false;
    let mut rung_idx = 0usize;
    let mut fault_failures = 0u32;

    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            // Exponential backoff through the session clock (a virtual
            // clock advances instead of sleeping).
            clock.sleep(policy.backoff * 2u32.saturating_pow(attempt - 1));
        }
        let elapsed = Duration::from_nanos(now());
        let mut slice = None;
        if let Some(deadline) = policy.deadline {
            if elapsed >= deadline {
                deadline_exhausted = true;
                break;
            }
            // Split the remaining budget evenly over the attempts left.
            slice = Some((deadline - elapsed) / (policy.max_attempts - attempt));
        }
        let start_ns = now();
        let rung = ladder[rung_idx.min(ladder.len() - 1)];
        let seed = solver.session_seed.map(|s| mix(s, attempt));

        // Warm start: roll forward from the best checkpoint when it beats
        // the zero guess (whose relative residual is exactly 1).
        let best = store.best().filter(|c| c.relres < 1.0);
        let warm_start = best.is_some();
        let (x0, restored_relres) = match best {
            Some(c) => {
                store.mark_restored();
                (c.x, c.relres)
            }
            None => (vec![0.0; n], 1.0),
        };
        // Shifted system: solve A·dx = r0 = b − A·x0, then x = x0 + dx.
        let mut r0 = vec![0.0; n];
        if warm_start {
            a0.spmv(&x0, &mut r0);
            for i in 0..n {
                r0[i] = b[i] - r0[i];
            }
        } else {
            r0.copy_from_slice(b);
        }
        let norm_r0 = vecops::norm2(&r0).max(1e-300);
        if matches!(goal, SessionGoal::Tolerance(_)) && norm_r0 / norm_b <= tol {
            // The restored checkpoint already meets the tolerance.
            x = x0;
            relres = norm_r0 / norm_b;
            converged = true;
            attempts.push(AttemptReport {
                index: attempt,
                rung,
                relres,
                outcome: SolveOutcome::Converged,
                corrections: 0.0,
                elapsed: Duration::ZERO,
                faults: Vec::new(),
                warm_start,
                escalation: None,
                sched_seed: seed,
            });
            break;
        }
        // The shifted tolerance that makes the unshifted iterate meet the
        // session target: ‖r0 − A·dx‖/‖b‖ ≤ tol ⇔ shifted relres ≤ this.
        let attempt_tol = tol * norm_b / norm_r0;

        let mut tp = solver
            .collect_trace
            // One ring per worker plus the watchdog's own (index
            // `n_threads`) for its checkpoint phases.
            .then(|| TelemetryProbe::with_threads(solver.threads.max(1) + 1));
        let hook = CheckpointHook { store: &store, cadence: solver.checkpoint_every, attempt };
        let run = {
            let probe: &dyn Probe = match (&tp, solver.probe) {
                (Some(p), _) => p,
                (None, Some(p)) => p,
                (None, None) => &NoopProbe,
            };
            if warm_start && probe.enabled() {
                probe.checkpoint(0, attempt, restored_relres, true);
            }
            let run = run_rung(
                solver,
                rung,
                &r0,
                attempt_tol,
                seed,
                slice,
                Some(&hook),
                fault_failures,
                probe,
            );
            // End-of-attempt checkpoint: deterministic (unlike the
            // watchdog-cadence ones), so seeded sessions snapshot too.
            let mut xa = x0;
            for i in 0..n {
                xa[i] += run.dx[i];
            }
            let mut ax = vec![0.0; n];
            a0.spmv(&xa, &mut ax);
            let mut sum = 0.0;
            for i in 0..n {
                let v = b[i] - ax[i];
                sum += v * v;
            }
            let rel = sum.sqrt() / norm_b;
            store.offer(&xa, rel, attempt, now());
            if probe.enabled() {
                probe.checkpoint(run.elapsed.as_nanos() as u64, attempt, rel, false);
            }
            (run, xa, rel)
        };
        let (run, xa, rel) = run;

        let attempt_converged = goal.met(rel, run.outcome);
        let escalation = if attempt_converged {
            None
        } else {
            Some(match run.outcome {
                SolveOutcome::Faulted
                    if run.faults.iter().any(|f| matches!(f.kind, FaultKind::Timeout)) =>
                {
                    EscalationReason::Stalled
                }
                SolveOutcome::Faulted => EscalationReason::Faulted,
                SolveOutcome::Degraded => EscalationReason::Degraded,
                _ => EscalationReason::AboveTolerance,
            })
        };
        // Budget goals keep the attempt's own outcome (`MaxIterations` is a
        // clean finish, not a convergence claim).
        let outcome = if attempt_converged && matches!(goal, SessionGoal::Tolerance(_)) {
            SolveOutcome::Converged
        } else {
            run.outcome
        };

        if let (Some(trace), Some(tp)) = (trace.as_mut(), tp.as_mut()) {
            trace.absorb(tp.take_trace(), start_ns);
            trace.residual_history.push(ResidualSample { t_ns: now(), relres: rel });
            trace.residual_history.sort_by_key(|s| s.t_ns);
        }
        if let Some(trace) = trace.as_mut() {
            trace.attempts.push(AttemptRecord {
                index: attempt,
                rung: rung.name().into(),
                start_ns,
                elapsed_ns: run.elapsed.as_nanos() as u64,
                relres: rel,
                outcome: outcome_name(outcome).into(),
                escalation: escalation.map(|e| e.name().into()),
            });
        }
        attempts.push(AttemptReport {
            index: attempt,
            rung,
            relres: rel,
            outcome,
            corrections: run.corrections,
            elapsed: run.elapsed,
            faults: run.faults,
            warm_start,
            escalation,
            sched_seed: seed,
        });

        if rel.is_finite() && rel < relres {
            x = xa;
            relres = rel;
        }
        if attempt_converged {
            converged = true;
            break;
        }
        if matches!(outcome, SolveOutcome::Faulted | SolveOutcome::Degraded) {
            fault_failures += 1;
        }
        rung_idx = (rung_idx + 1).min(ladder.len().saturating_sub(1));
    }

    // The session's answer is the best known state, checkpoint included.
    if let Some(c) = store.best() {
        if c.relres < relres {
            x = c.x;
            relres = c.relres;
        }
    }
    let outcome = if converged {
        match goal {
            SessionGoal::Tolerance(_) => SolveOutcome::Converged,
            // The goal-meeting attempt's own outcome (clean `MaxIterations`
            // stays visible to the caller).
            SessionGoal::Budget => attempts.last().map_or(SolveOutcome::Converged, |a| a.outcome),
        }
    } else if !relres.is_finite() {
        SolveOutcome::Faulted
    } else if attempts.iter().any(|a| !a.faults.is_empty()) {
        SolveOutcome::Degraded
    } else {
        SolveOutcome::MaxIterations
    };
    if let Some(trace) = trace.as_mut() {
        trace.checkpoints.sort_by_key(|c| c.t_ns);
    }
    Ok(SessionReport {
        x,
        relres,
        converged,
        outcome,
        checkpoints: store.stats(),
        attempts,
        elapsed: Duration::from_nanos(now()),
        deadline_exhausted,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{MgOptions, MgSetup};
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

    fn setup_n(n: usize) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    #[test]
    fn checkpoint_store_keeps_the_best() {
        let store = CheckpointStore::new();
        assert!(store.best().is_none());
        assert!(store.offer(&[1.0], 0.5, 0, 10));
        assert!(!store.offer(&[2.0], 0.9, 0, 20)); // worse: rejected
        assert!(!store.offer(&[3.0], f64::NAN, 1, 30)); // non-finite: rejected
        assert!(store.offer(&[4.0], 0.1, 1, 40));
        let best = store.best().unwrap();
        assert_eq!(best.x, vec![4.0]);
        assert_eq!(best.attempt, 1);
        store.mark_restored();
        let stats = store.stats();
        assert_eq!(
            stats,
            CheckpointStats {
                taken: 4,
                restored: 1,
                best_relres: Some(0.1),
                best_attempt: Some(1),
            }
        );
    }

    #[test]
    fn retry_policy_validates() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy { max_attempts: 0, ..Default::default() }.validate().is_err());
        assert!(RetryPolicy { deadline: Some(Duration::ZERO), ..Default::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn ladder_names_are_stable() {
        let names: Vec<_> = Rung::LADDER.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["async_atomic", "async_lock", "semi_async", "sync_mult", "pcg"]);
        assert!(Rung::AsyncAtomic.is_async());
        assert!(Rung::AsyncLock.is_async());
        assert!(!Rung::SemiAsync.is_async());
        assert_eq!(Rung::Sharded { shards: 4 }.name(), "sharded");
        assert!(!Rung::Sharded { shards: 4 }.is_async());
    }

    #[test]
    fn sharded_ladder_without_a_driver_is_rejected() {
        let s = setup_n(4);
        let b = random_rhs(s.n(), 14);
        let ladder = [Rung::Sharded { shards: 2 }, Rung::Pcg];
        let err =
            crate::Solver::new(&s).tolerance(1e-8).ladder(&ladder).try_resilient(&b).unwrap_err();
        assert_eq!(err, SessionError::MissingShardDriver);
        assert!(err.to_string().contains("shard driver"));
    }

    #[test]
    fn mix_decorrelates_attempts() {
        assert_eq!(mix(42, 0), mix(42, 0));
        assert_ne!(mix(42, 0), mix(42, 1));
        assert_ne!(mix(42, 0), mix(43, 0));
    }

    #[test]
    fn session_errors_display_and_chain() {
        let e = SessionError::NoTolerance;
        assert!(e.to_string().contains("tolerance"));
        let e = SessionError::Solve(SolveError::NonFiniteRhs { index: 3 });
        assert!(e.to_string().contains("entry 3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SessionError::NoTolerance).is_none());
    }

    #[test]
    fn clean_session_converges_on_first_attempt() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 11);
        let report = crate::Solver::new(&s).threads(2).t_max(500).tolerance(1e-8).resilient(&b);
        assert!(report.converged, "relres {}", report.relres);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.final_rung(), Some(Rung::AsyncAtomic));
        assert!(report.escalations().is_empty());
        assert!(report.relres <= 1e-8);
    }

    #[test]
    fn seeded_session_is_deterministic() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 12);
        let run = |seed| {
            crate::Solver::new(&s)
                .threads(3)
                .t_max(30)
                .tolerance(1e-6)
                .session_seed(seed)
                .resilient(&b)
        };
        let a = run(7);
        let c = run(7);
        assert_eq!(a.relres.to_bits(), c.relres.to_bits());
        assert_eq!(a.x.len(), c.x.len());
        for (u, v) in a.x.iter().zip(&c.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(a.attempts.len(), c.attempts.len());
    }

    #[test]
    fn budget_goal_succeeds_without_a_tolerance() {
        let s = setup_n(5);
        let b = random_rhs(s.n(), 21);
        // No tolerance: `try_resilient` refuses, `try_fallback` runs a
        // budget-goal session and succeeds on the first clean attempt.
        let solver = crate::Solver::new(&s).threads(2).t_max(10).session_seed(3);
        assert_eq!(solver.try_resilient(&b).unwrap_err(), SessionError::NoTolerance);
        let report = solver.try_fallback(&b).unwrap();
        assert!(report.converged, "clean budget run must satisfy the goal");
        assert_eq!(report.attempts.len(), 1);
        assert!(report.relres.is_finite());
        // A clean full-budget finish is not a convergence claim.
        assert!(matches!(report.outcome, SolveOutcome::Converged | SolveOutcome::MaxIterations));
    }

    #[test]
    fn budget_goal_is_deterministic_when_seeded() {
        let s = setup_n(5);
        let b = random_rhs(s.n(), 22);
        let run =
            || crate::Solver::new(&s).threads(3).t_max(8).session_seed(9).try_fallback(&b).unwrap();
        let a = run();
        let c = run();
        assert_eq!(a.relres.to_bits(), c.relres.to_bits());
        for (u, v) in a.x.iter().zip(&c.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn ladder_reaches_pcg_when_budget_is_tiny() {
        // One correction per grid cannot reach 1e-10: the ladder must walk
        // all the way down and PCG (capped at max(t_max,100) iterations)
        // finishes the job.
        let s = setup_n(6);
        let b = random_rhs(s.n(), 13);
        let report = crate::Solver::new(&s)
            .threads(2)
            .t_max(1)
            .tolerance(1e-10)
            .session_seed(5)
            .resilient(&b);
        assert!(report.converged, "relres {}", report.relres);
        assert_eq!(report.final_rung(), Some(Rung::Pcg));
        assert!(report.attempts.len() >= 5);
        assert!(report.escalations().iter().all(|(_, r)| *r == EscalationReason::AboveTolerance));
        // Warm starts kicked in after the first checkpoint.
        assert!(report.checkpoints.restored >= 1);
        assert!(report.attempts.last().unwrap().warm_start);
    }
}
