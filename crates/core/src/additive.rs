//! Additive multigrid corrections and the synchronous additive solvers
//! (BPX, Multadd, AFACx — Section II.B of the paper).
//!
//! Each additive method is characterised by the fine-grid correction its
//! grid `k` contributes:
//!
//! * **BPX** (Eq. 1): `P_k⁰ Λ_k (P_k⁰)ᵀ r` with plain interpolants,
//! * **Multadd** (Eq. 2): `P̄_k⁰ Λ_k (P̄_k⁰)ᵀ r` with *smoothed* interpolants
//!   and the symmetrized smoother `Λ_k = M̄_k⁻¹`,
//! * **AFACx** (Algorithm 2): a two-grid smoothing process with the modified
//!   right-hand side `r_k − A_k P e_{k+1}` that avoids over-correction.
//!
//! [`grid_correction`] computes one grid's correction from a fine-grid
//! residual; it is the building block shared by the synchronous solver here,
//! the simulation models, and the thread-team implementation.

use crate::setup::{CoarseSolve, MgSetup};
use crate::workspace::Workspace;
use asyncmg_sparse::vecops;
use asyncmg_telemetry::Probe;
use std::time::Instant;

/// The additive methods of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdditiveMethod {
    /// Additive variant of the multiplicative method (smoothed interpolants).
    Multadd,
    /// Asynchronous fast adaptive composite grid method with smoothing.
    Afacx,
    /// The classical BPX preconditioner (diverges as a solver; kept for
    /// study and tests).
    Bpx,
}

impl AdditiveMethod {
    /// Whether this method restricts/prolongates with the smoothed
    /// interpolants `P̄`.
    pub fn uses_smoothed_interpolants(self) -> bool {
        matches!(self, AdditiveMethod::Multadd)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AdditiveMethod::Multadd => "Multadd",
            AdditiveMethod::Afacx => "AFACx",
            AdditiveMethod::Bpx => "BPX",
        }
    }
}

/// Computes grid `k`'s additive correction from the fine-grid residual `r`,
/// writing it into `out` (fine-grid length). `scratch` is reused across
/// calls; the restricted residual lives in `scratch.r`, the correction in
/// `scratch.e`.
pub fn grid_correction(
    setup: &MgSetup,
    method: AdditiveMethod,
    k: usize,
    r: &[f64],
    out: &mut [f64],
    scratch: &mut Workspace,
) {
    let ell = setup.n_levels() - 1;
    debug_assert!(k <= ell);
    // Restrict the fine-grid residual down to level k.
    scratch.r[0].copy_from_slice(r);
    for j in 0..k {
        let (head, tail) = scratch.r.split_at_mut(j + 1);
        let restrict =
            if method.uses_smoothed_interpolants() { setup.r_bar(j) } else { setup.r(j) };
        restrict.spmv(&head[j], &mut tail[0]);
    }

    match method {
        AdditiveMethod::Multadd | AdditiveMethod::Bpx => {
            if k == ell {
                coarse_apply(
                    setup,
                    setup.opts.coarse,
                    &scratch.r[k],
                    &mut scratch.e[k],
                    &mut scratch.buf[k],
                );
            } else if method == AdditiveMethod::Multadd {
                // Λ_k = symmetrized smoother (paper Section II.B.1).
                let (ck, ek, bk) = (&scratch.r[k], &mut scratch.e[k], &mut scratch.buf[k]);
                setup.smoothers[k].multadd_lambda_op(setup.op(k), ck, ek, bk);
            } else {
                // BPX: one plain smoother application.
                setup.smoothers[k].apply_zero_op(setup.op(k), &scratch.r[k], &mut scratch.e[k]);
            }
        }
        AdditiveMethod::Afacx => {
            if k == ell {
                coarse_apply(
                    setup,
                    setup.opts.afacx_coarse,
                    &scratch.r[k],
                    &mut scratch.e[k],
                    &mut scratch.buf[k],
                );
            } else {
                // Step 1: e_{k+1} by smoothing A_{k+1} e = r_{k+1} from zero,
                // where r_{k+1} is the residual restricted one level further
                // (with the *plain* interpolant).
                {
                    let (head, tail) = scratch.r.split_at_mut(k + 1);
                    setup.r(k).spmv(&head[k], &mut tail[0]);
                }
                smooth_zero_sweeps(
                    setup,
                    k + 1,
                    setup.opts.afacx_s2,
                    &scratch.r[k + 1],
                    &mut scratch.e[k + 1],
                    &mut scratch.buf[k + 1],
                );
                // Step 2 (modified rhs form, Algorithm 2 lines 8–9):
                // g = r_k − A_k P e_{k+1}; e_k = smooth-from-zero on g.
                let (e_head, e_tail) = scratch.e.split_at_mut(k + 1);
                setup.p(k).spmv(&e_tail[0], &mut scratch.buf2[k]);
                setup.op(k).spmv(&scratch.buf2[k], &mut scratch.buf[k]);
                for i in 0..scratch.buf[k].len() {
                    scratch.buf[k][i] = scratch.r[k][i] - scratch.buf[k][i];
                }
                let g = std::mem::take(&mut scratch.buf[k]);
                smooth_zero_sweeps(
                    setup,
                    k,
                    setup.opts.afacx_s1,
                    &g,
                    &mut e_head[k],
                    &mut scratch.buf2[k],
                );
                scratch.buf[k] = g;
            }
        }
    }

    // Prolongate the correction back to the fine grid.
    for j in (0..k).rev() {
        let (head, tail) = scratch.e.split_at_mut(j + 1);
        let prolong = if method.uses_smoothed_interpolants() { setup.p_bar(j) } else { setup.p(j) };
        prolong.spmv(&tail[0], &mut head[j]);
    }
    out.copy_from_slice(&scratch.e[0]);
}

/// Applies the coarse treatment (`A_ℓ⁻¹` or smoothing sweeps).
fn coarse_apply(setup: &MgSetup, coarse: CoarseSolve, r: &[f64], e: &mut [f64], buf: &mut [f64]) {
    let ell = setup.n_levels() - 1;
    match coarse {
        CoarseSolve::Exact => match &setup.hierarchy.coarse_lu {
            Some(lu) => lu.solve(r, e),
            None => {
                // Singular coarsest operator: fall back to smoothing.
                smooth_zero_sweeps_inner(setup, ell, 2, r, e, buf);
            }
        },
        CoarseSolve::Smooth { sweeps } => {
            smooth_zero_sweeps_inner(setup, ell, sweeps, r, e, buf);
        }
    }
}

/// `e = (sweeps of the level-k smoother from zero guess on A_k e = r)`.
fn smooth_zero_sweeps(
    setup: &MgSetup,
    k: usize,
    sweeps: usize,
    r: &[f64],
    e: &mut [f64],
    buf: &mut [f64],
) {
    smooth_zero_sweeps_inner(setup, k, sweeps, r, e, buf);
}

fn smooth_zero_sweeps_inner(
    setup: &MgSetup,
    k: usize,
    sweeps: usize,
    r: &[f64],
    e: &mut [f64],
    buf: &mut [f64],
) {
    setup.smoothers[k].apply_zero_op(setup.op(k), r, e);
    for _ in 1..sweeps {
        setup.smoothers[k].relax_op(setup.op(k), r, e, buf);
    }
}

/// Result of a synchronous additive solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The final approximation.
    pub x: Vec<f64>,
    /// Relative residual 2-norm after each cycle.
    pub history: Vec<f64>,
}

impl SolveResult {
    /// Final relative residual.
    pub fn final_relres(&self) -> f64 {
        *self.history.last().unwrap_or(&1.0)
    }
}

/// Runs up to `t_max` synchronous additive V-cycles starting from `x = 0`:
/// each cycle computes `r = b − A x` once, every grid contributes its
/// correction from the *same* residual, and the corrections are summed.
/// Each cycle reports one correction event per grid and one residual sample
/// to `probe`, and the run ends as soon as the relative residual drops below
/// `tol` (when given).
pub fn solve_additive_probed<P: Probe + ?Sized>(
    setup: &MgSetup,
    method: AdditiveMethod,
    b: &[f64],
    t_max: usize,
    tol: Option<f64>,
    probe: &P,
) -> SolveResult {
    let n = setup.n();
    let nb = vecops::norm2(b);
    let mut x = vec![0.0; n];
    // All per-cycle temporaries are pre-sized here; the loop below performs
    // no heap allocation. The fine-grid residual and correction are taken
    // out of the workspace so they can be borrowed alongside it.
    let mut scratch = Workspace::new(setup);
    let mut r = std::mem::take(&mut scratch.res);
    let mut corr = std::mem::take(&mut scratch.corr);
    let mut history = Vec::with_capacity(t_max);
    let epoch = Instant::now();
    for cycle in 0..t_max {
        setup.op(0).residual(b, &x, &mut r);
        for k in 0..setup.n_levels() {
            grid_correction(setup, method, k, &r, &mut corr, &mut scratch);
            vecops::axpy(1.0, &corr, &mut x);
            if probe.enabled() {
                let t_ns = epoch.elapsed().as_nanos() as u64;
                probe.correction(0, k, cycle, t_ns, f64::NAN);
            }
        }
        setup.op(0).residual(b, &x, &mut r);
        let rel = if nb > 0.0 { vecops::norm2(&r) / nb } else { vecops::norm2(&r) };
        history.push(rel);
        if probe.enabled() {
            probe.residual_sample(epoch.elapsed().as_nanos() as u64, rel);
        }
        if tol.is_some_and(|t| rel < t) {
            break;
        }
    }
    SolveResult { x, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use crate::solver::{Method, SolveReport, Solver};
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
    use asyncmg_smoothers::SmootherKind;

    fn setup(n: usize, opts: MgOptions) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, opts)
    }

    fn run_additive(s: &MgSetup, method: Method, b: &[f64], t_max: usize) -> SolveReport {
        Solver::new(s).method(method).threads(0).t_max(t_max).run(b)
    }

    #[test]
    fn multadd_converges() {
        let s = setup(8, MgOptions::default());
        let b = random_rhs(s.n(), 3);
        let res = run_additive(&s, Method::Multadd, &b, 30);
        assert!(res.relres < 1e-6, "Multadd relres {} after 30 cycles", res.relres);
    }

    #[test]
    fn afacx_converges() {
        let s = setup(8, MgOptions::default());
        let b = random_rhs(s.n(), 3);
        let res = run_additive(&s, Method::Afacx, &b, 60);
        assert!(res.relres < 1e-5, "AFACx relres {}", res.relres);
    }

    #[test]
    fn bpx_overcorrects_as_a_solver() {
        // Section II.B: plain BPX used as a solver over-corrects and
        // diverges (or stagnates) — exactly why Multadd/AFACx exist.
        let s = setup(8, MgOptions::default());
        let b = random_rhs(s.n(), 3);
        let res = run_additive(&s, Method::Bpx, &b, 20);
        let multadd = run_additive(&s, Method::Multadd, &b, 20);
        assert!(
            res.relres > 10.0 * multadd.relres,
            "BPX {} vs Multadd {}",
            res.relres,
            multadd.relres
        );
    }

    #[test]
    fn multadd_with_all_smoothers_converges() {
        for kind in [
            SmootherKind::WJacobi { omega: 0.9 },
            SmootherKind::L1Jacobi,
            SmootherKind::HybridJgs,
            SmootherKind::AsyncGs,
        ] {
            let s = setup(6, MgOptions { smoother: kind, ..Default::default() });
            let b = random_rhs(s.n(), 5);
            let res = run_additive(&s, Method::Multadd, &b, 40);
            assert!(res.relres < 1e-5, "{}: {}", kind.name(), res.relres);
        }
    }

    #[test]
    fn corrections_restricted_consistently() {
        // Grid 0 correction for Multadd is Λ₀ r (no interpolation at all).
        let s = setup(6, MgOptions::default());
        let b = random_rhs(s.n(), 1);
        let mut scratch = Workspace::new(&s);
        let mut out = vec![0.0; s.n()];
        grid_correction(&s, AdditiveMethod::Multadd, 0, &b, &mut out, &mut scratch);
        let mut expect = vec![0.0; s.n()];
        let mut buf = vec![0.0; s.n()];
        s.smoothers[0].multadd_lambda(s.a(0), &b, &mut expect, &mut buf);
        for i in 0..s.n() {
            assert!((out[i] - expect[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn coarsest_grid_correction_solves_restricted_system() {
        let s = setup(6, MgOptions::default());
        let ell = s.n_levels() - 1;
        let b = random_rhs(s.n(), 2);
        let mut scratch = Workspace::new(&s);
        let mut out = vec![0.0; s.n()];
        grid_correction(&s, AdditiveMethod::Multadd, ell, &b, &mut out, &mut scratch);
        // The correction must be nonzero and fine-grid sized.
        assert!(vecops::norm2(&out) > 0.0);
    }

    #[test]
    fn history_is_recorded_per_cycle() {
        let s = setup(5, MgOptions::default());
        let b = random_rhs(s.n(), 4);
        let res = run_additive(&s, Method::Multadd, &b, 7);
        assert_eq!(res.history.len(), 7);
        // Broadly decreasing.
        assert!(res.history.last().unwrap() < res.history.first().unwrap());
    }
}
