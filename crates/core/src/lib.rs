//! Asynchronous multigrid methods — a Rust reproduction of
//! Wolfson-Pou & Chow, *Asynchronous Multigrid Methods*, IPDPS 2019.
//!
//! The crate offers four layers:
//!
//! * [`setup`] — [`setup::MgSetup`] bundles an AMG hierarchy (from
//!   `asyncmg-amg`) with smoothed interpolants and per-level smoothers,
//! * sequential solvers — [`mult::solve_mult`] (the classical V(1,1)-cycle,
//!   Algorithm 1) and [`additive::solve_additive`] (BPX, Multadd, AFACx,
//!   Section II),
//! * [`models`] — sequential simulations of the semi-async and full-async
//!   models (Section III, Equations 6, 7 and 10),
//! * [`asynchronous`] / [`parallel_mult`] — the shared-memory thread-team
//!   implementations (Section IV, Algorithm 5): global-res / local-res,
//!   lock-write / atomic-write, the residual-based `r-Multadd`, both stop
//!   criteria, and the synchronous threaded baselines.
//!
//! # Quick start
//!
//! ```
//! use asyncmg_amg::{build_hierarchy, AmgOptions};
//! use asyncmg_core::additive::AdditiveMethod;
//! use asyncmg_core::asynchronous::{solve_async, AsyncOptions};
//! use asyncmg_core::setup::{MgOptions, MgSetup};
//! use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
//!
//! let a = laplacian_7pt(8, 8, 8);
//! let b = random_rhs(a.nrows(), 0);
//! let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());
//! let result = solve_async(
//!     &setup,
//!     &b,
//!     &AsyncOptions { method: AdditiveMethod::Multadd, t_max: 40, n_threads: 4, ..Default::default() },
//! );
//! assert!(result.relres < 1e-2);
//! ```

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]


pub mod additive;
pub mod asynchronous;
pub mod krylov;
pub mod models;
pub mod mult;
pub mod parallel_mult;
pub mod setup;

pub use additive::{grid_correction, solve_additive, AdditiveMethod, CorrectionScratch, SolveResult};
pub use krylov::{pcg, AdditivePrec, CgResult, IdentityPrec, JacobiPrec, Preconditioner, VCyclePrec};
pub use asynchronous::{solve_async, AsyncOptions, AsyncResult, ResComp, StopCriterion, WriteMode};
pub use models::{simulate, simulate_mean, ModelKind, ModelOptions, ModelResult};
pub use mult::{mult_vcycle, solve_mult, MultScratch};
pub use parallel_mult::solve_mult_threaded;
pub use setup::{CoarseSolve, MgOptions, MgSetup};
