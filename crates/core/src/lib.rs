//! Asynchronous multigrid methods — a Rust reproduction of
//! Wolfson-Pou & Chow, *Asynchronous Multigrid Methods*, IPDPS 2019.
//!
//! The crate offers four layers:
//!
//! * [`setup`] — [`setup::MgSetup`] bundles an AMG hierarchy (from
//!   `asyncmg-amg`) with smoothed interpolants and per-level smoothers,
//! * sequential solvers — [`mult::solve_mult_probed`] (the classical
//!   V(1,1)-cycle, Algorithm 1), [`additive::solve_additive_probed`] (BPX,
//!   Multadd, AFACx, Section II) and the batched multi-RHS driver
//!   [`batch::solve_mult_batch`], all cycling allocation-free out of
//!   pre-sized workspaces,
//! * [`models`] — sequential simulations of the semi-async and full-async
//!   models (Section III, Equations 6, 7 and 10),
//! * [`asynchronous`] / [`parallel_mult`] — the shared-memory thread-team
//!   implementations (Section IV, Algorithm 5): global-res / local-res,
//!   lock-write / atomic-write, the residual-based `r-Multadd`, both stop
//!   criteria, and the synchronous threaded baselines,
//! * [`solver`] — the unified [`Solver`] builder that dispatches to any of
//!   the above, with tolerance-based stopping and telemetry
//!   (`asyncmg-telemetry`) on every backend.
//!
//! # Quick start
//!
//! ```
//! use asyncmg_amg::{build_hierarchy, AmgOptions};
//! use asyncmg_core::{Method, MgOptions, MgSetup, Solver};
//! use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
//!
//! let a = laplacian_7pt(8, 8, 8);
//! let b = random_rhs(a.nrows(), 0);
//! let setup = MgSetup::new(build_hierarchy(a, &AmgOptions::default()), MgOptions::default());
//! // Asynchronous Multadd on 4 threads until the relative residual is
//! // below 1e-8 (with up to 1000 corrections per grid as a cap), with a
//! // full telemetry trace.
//! let report = Solver::new(&setup)
//!     .method(Method::Multadd)
//!     .threads(4)
//!     .t_max(1000)
//!     .tolerance(1e-8)
//!     .with_trace()
//!     .run(&b);
//! // `converged` is schedule-independent: the monitor publishes its
//! // tolerance stop with release/acquire ordering and the report falls
//! // back to the exact post-run residual, so no monitor timing can flip
//! // it.
//! assert!(report.converged);
//! let trace = report.trace.as_ref().unwrap();
//! assert_eq!(trace.grid_corrections(), report.grid_corrections);
//! ```

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod additive;
pub mod asynchronous;
pub mod batch;
pub mod error;
pub mod krylov;
pub mod models;
pub mod mult;
pub mod parallel_mult;
pub mod resilience;
pub mod setup;
pub mod solver;
pub mod workspace;

pub use additive::{grid_correction, solve_additive_probed, AdditiveMethod, SolveResult};
pub use asynchronous::{
    solve_async_clocked, solve_async_faulted, solve_async_probed, solve_async_sched, AsyncOptions,
    AsyncResult, CheckpointHook, RecoveryOptions, ResComp, SolveOutcome, StopCriterion, WriteMode,
};
pub use batch::{
    mult_vcycle_block, solve_mult_batch, solve_mult_batch_with, BatchResult, BatchSpec,
    BlockWorkspace,
};
pub use error::Error;
pub use krylov::{
    pcg, pcg_probed, AdditivePrec, CgResult, IdentityPrec, JacobiPrec, Preconditioner, VCyclePrec,
};
pub use models::{simulate, simulate_mean, ModelKind, ModelOptions, ModelResult};
pub use mult::{coarse_correction, mult_vcycle, solve_mult_probed};
pub use parallel_mult::{solve_mult_threaded_probed, solve_mult_threaded_sched};
pub use resilience::{
    AttemptReport, Checkpoint, CheckpointStats, CheckpointStore, EscalationReason, RetryPolicy,
    Rung, SessionError, SessionGoal, SessionReport, ShardAttempt, ShardAttemptOutcome,
    ShardRungDriver,
};
pub use setup::{CoarseSolve, MgOptions, MgSetup};
pub use solver::{Method, SolveError, SolveReport, Solver, SolverConfig};
pub use workspace::Workspace;

// Re-exported so downstream users can name probes, fault plans and the
// wrapped error types without depending on the lower crates directly.
pub use asyncmg_amg::BuildError;
pub use asyncmg_sparse::CsrError;
pub use asyncmg_telemetry::{
    FaultKind, FaultRecord, NoopProbe, Phase, Probe, SolveTrace, TelemetryProbe,
};
pub use asyncmg_threads::{Clock, Corruption, Fault, FaultPlan, OsClock, VirtualClock};
