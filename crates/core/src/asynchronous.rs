//! Shared-memory asynchronous (and synchronous-threaded) additive multigrid
//! — the paper's Section IV, Algorithm 5.
//!
//! Threads are partitioned into per-grid teams (work-proportional, Fig. 3).
//! Each team repeatedly computes its grid's correction and adds it to the
//! shared solution `x`, synchronising **only within the team**. The fine-grid
//! residual is obtained either by
//!
//! * **local-res** — the team recomputes `r = b − A x` itself from a private
//!   snapshot of `x`, or
//! * **global-res** — a shared residual vector is updated in a non-blocking
//!   global loop where every thread owns a static share of the rows, or
//! * **residual-based** (`r-Multadd`) — the shared residual is updated
//!   incrementally as `r ← r − A e` after each correction (Equation 10).
//!
//! Races on the shared vectors are handled with the paper's two options:
//! **lock-write** (a mutex held by the team master around a team-parallel
//! exclusive write) and **atomic-write** (element-wise atomic fetch-add).
//!
//! # Fault injection and recovery
//!
//! The runtime optionally runs *defended*: a seeded
//! [`FaultPlan`] injects stragglers, permanent
//! team crashes, and corrupted or dropped correction writes, while
//! [`RecoveryOptions`] arms the countermeasures — non-finite/magnitude
//! guards on corrections with per-level additive damping and quarantine
//! (Murray & Weinzierl 2019), a watchdog generalising the tolerance
//! monitor (per-level stall detection from the correction-counter
//! heartbeats, divergence rollback to the last known-good iterate, and a
//! hard wall-clock budget), and a structured [`SolveOutcome`] with the
//! fault log attached so a faulted solve reports instead of hanging.
//! When neither a plan nor recovery is configured, none of the extra
//! barriers or checks run and the solver is bit-identical to the
//! undefended runtime.

use crate::additive::AdditiveMethod;
use crate::resilience::CheckpointStore;
use crate::setup::{CoarseSolve, MgSetup};
use asyncmg_smoothers::{async_gs_sweep, LevelSmoother, SmootherKind};
use asyncmg_sparse::{vecops, AtomicF64Vec, Csr};
use asyncmg_telemetry::{FaultKind, FaultRecord, Phase, Probe};
use asyncmg_threads::{
    run_teams_sched, Clock, FaultPlan, GridTeamLayout, OsClock, OsSched, RacyVec, Sched,
    SchedPoint, SpinLock, TeamCtx,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the fine-grid residual is computed (Section IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResComp {
    /// Each team recomputes its own full residual (more work, fresher data).
    Local,
    /// A shared residual updated by a non-blocking global loop.
    Global,
    /// `r-Multadd` (Equation 10): the shared residual is updated
    /// incrementally as `r ← r − A e` after each correction instead of being
    /// recomputed from `x`.
    ResidualBased,
}

/// How racy writes to shared vectors are performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteMode {
    /// Team master holds a lock while the team writes (lock-write).
    Lock,
    /// Element-wise atomic fetch-add (atomic-write).
    Atomic,
}

/// Convergence-detection criterion (Section V).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopCriterion {
    /// Each grid stops after exactly `t_max` own corrections.
    One,
    /// A master thread raises a stop flag once *all* grids have done at
    /// least `t_max` corrections; grids keep correcting until they see it.
    Two,
    /// Stop once the global relative residual drops below `relres`, with
    /// `t_max` corrections per grid as a hard cap. In asynchronous runs a
    /// monitor thread samples the racy shared iterate every `check_every`
    /// and raises the stop flag; synchronous runs check at cycle ends.
    Tolerance {
        /// Target relative residual 2-norm.
        relres: f64,
        /// Monitor sampling period (asynchronous executions only).
        check_every: Duration,
    },
}

impl StopCriterion {
    /// Tolerance stopping with the default 100 µs monitor period.
    pub fn tolerance(relres: f64) -> Self {
        StopCriterion::Tolerance { relres, check_every: Duration::from_micros(100) }
    }
}

/// Detection-and-recovery configuration for the asynchronous runtime.
///
/// Everything defaults to *off*: a default-constructed value adds no
/// barriers, no guards and no watchdog, so the solver behaves (and
/// interleaves) exactly as without a recovery layer. Arm individual
/// defences by assigning fields, or start from [`RecoveryOptions::defended`].
///
/// Marked `#[non_exhaustive]`: construct with [`RecoveryOptions::default`]
/// and assign the fields you need.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct RecoveryOptions {
    /// Guard correction writes: a correction containing a non-finite entry
    /// or one larger than [`RecoveryOptions::max_correction`] is suppressed
    /// (never reaches the shared iterate) and counts a *strike* against its
    /// grid.
    pub guard_corrections: bool,
    /// Quarantine a grid once it accumulates this many strikes: its
    /// corrections stop being applied for the rest of the solve
    /// (0 = never quarantine).
    pub quarantine_after: usize,
    /// Additive damping applied to a struck grid's subsequent corrections
    /// (Murray & Weinzierl 2019): corrections are scaled by this factor
    /// once a grid has at least one strike. 1.0 disables damping.
    pub damping: f64,
    /// Magnitude bound for the guard: any correction entry with absolute
    /// value above this is treated like a non-finite one.
    pub max_correction: f64,
    /// Hard wall-clock budget for the whole solve. The watchdog raises the
    /// stop flag and the result reports [`SolveOutcome::Faulted`] when it
    /// is exceeded. `None` = unbounded.
    pub max_wall: Option<Duration>,
    /// Per-grid stall window: a grid whose correction counter does not
    /// advance within this duration (and is not finished) is quarantined
    /// by the watchdog. `None` = no stall detection.
    pub max_stall: Option<Duration>,
    /// Divergence rollback: when the monitored relative residual exceeds
    /// this factor times the best observed so far (or goes non-finite),
    /// the shared iterate is restored from the last known-good snapshot.
    /// Ignored for [`ResComp::ResidualBased`], whose incremental residual
    /// cannot survive an iterate rewrite. `None` = no rollback.
    pub rollback_factor: Option<f64>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            guard_corrections: false,
            quarantine_after: 0,
            damping: 1.0,
            max_correction: 1e12,
            max_wall: None,
            max_stall: None,
            rollback_factor: None,
        }
    }
}

impl RecoveryOptions {
    /// The full defensive posture: guards with quarantine after 3 strikes
    /// and 0.5 damping, and a 60 s wall-clock budget. Stall detection and
    /// rollback stay opt-in (they are wall-clock heuristics that can
    /// misfire under heavily serialised test schedulers).
    pub fn defended() -> Self {
        RecoveryOptions {
            guard_corrections: true,
            quarantine_after: 3,
            damping: 0.5,
            max_correction: 1e8,
            max_wall: Some(Duration::from_secs(60)),
            ..Default::default()
        }
    }

    /// Whether any defence is armed.
    pub fn any_enabled(&self) -> bool {
        self.guard_corrections
            || self.max_wall.is_some()
            || self.max_stall.is_some()
            || self.rollback_factor.is_some()
    }

    /// Whether the watchdog thread is needed.
    fn needs_watchdog(&self) -> bool {
        self.max_wall.is_some() || self.max_stall.is_some() || self.rollback_factor.is_some()
    }

    /// Validates field ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        // NaN must fail every range check, so the comparisons are written
        // to reject incomparable values.
        if self.damping.is_nan() || self.damping <= 0.0 || self.damping > 1.0 {
            return Err(format!("recovery damping {} out of (0, 1]", self.damping));
        }
        if self.max_correction.is_nan() || self.max_correction <= 0.0 {
            return Err(format!("recovery max_correction {} not positive", self.max_correction));
        }
        if let Some(f) = self.rollback_factor {
            if f.is_nan() || f <= 1.0 {
                return Err(format!("recovery rollback_factor {f} must exceed 1"));
            }
        }
        Ok(())
    }
}

/// How a threaded solve ended.
///
/// Ordered by severity: a fault-free tolerance stop is `Converged`; a run
/// that only exhausted its correction budget is `MaxIterations`; any run
/// whose fault log is non-empty but which still produced a finite iterate
/// is `Degraded`; a timed-out or non-finite run is `Faulted`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The tolerance criterion was met (and nothing went wrong).
    Converged,
    /// The correction budget ran out before any tolerance was met
    /// (count-based criteria always end here when fault-free).
    MaxIterations,
    /// Faults were injected or recovery actions taken, but the solve still
    /// produced a finite iterate; consult the fault log.
    Degraded,
    /// The solve timed out or its final residual is non-finite.
    Faulted,
}

impl SolveOutcome {
    /// `true` for the two non-pathological endings.
    pub fn is_ok(self) -> bool {
        matches!(self, SolveOutcome::Converged | SolveOutcome::MaxIterations)
    }
}

/// Options for the threaded solver.
///
/// Marked `#[non_exhaustive]`: construct with [`AsyncOptions::default`] and
/// assign the fields you need.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct AsyncOptions {
    /// Additive method (Multadd or AFACx; BPX is supported but diverges).
    pub method: AdditiveMethod,
    /// Residual computation flavour (including the residual-based
    /// `r-Multadd`).
    pub res_comp: ResComp,
    /// Shared-write flavour.
    pub write: WriteMode,
    /// Stop criterion.
    pub criterion: StopCriterion,
    /// Corrections per grid ("V-cycles").
    pub t_max: usize,
    /// Total threads.
    pub n_threads: usize,
    /// Execute synchronously: grids still correct concurrently, but every
    /// cycle ends with a global barrier and a global residual SpMV (the
    /// paper's "sync Multadd"/"sync AFACx").
    pub sync: bool,
    /// Detection-and-recovery configuration (all off by default).
    pub recovery: RecoveryOptions,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            method: AdditiveMethod::Multadd,
            res_comp: ResComp::Local,
            write: WriteMode::Lock,
            criterion: StopCriterion::One,
            t_max: 20,
            n_threads: 4,
            sync: false,
            recovery: RecoveryOptions::default(),
        }
    }
}

impl AsyncOptions {
    /// Validates field ranges, returning a description of the first
    /// violation. The panicking entry points only assert the basics; use
    /// this (or `Solver::try_run`) for untrusted configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_threads == 0 {
            return Err("n_threads must be positive".into());
        }
        if self.t_max == 0 {
            return Err("t_max must be positive".into());
        }
        if let StopCriterion::Tolerance { relres, check_every } = self.criterion {
            if !(relres.is_finite() && relres > 0.0) {
                return Err(format!("tolerance {relres} must be finite and positive"));
            }
            if check_every.is_zero() {
                return Err("tolerance check_every must be non-zero".into());
            }
        }
        self.recovery.validate()
    }
}

/// Outcome of a threaded solve.
#[derive(Clone, Debug)]
pub struct AsyncResult {
    /// The final approximation.
    pub x: Vec<f64>,
    /// Final relative residual 2-norm (recomputed exactly after the run).
    pub relres: f64,
    /// Corrections performed by each grid.
    pub grid_corrections: Vec<usize>,
    /// Mean corrections per grid (the paper's "Corrects" column).
    pub corrects_mean: f64,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// How the solve ended (structured, never by hanging).
    pub outcome: SolveOutcome,
    /// Injected faults and recovery actions, in time order (empty for
    /// fault-free solves).
    pub faults: Vec<FaultRecord>,
    /// Whether a tolerance stop was actually observed (the monitor or a
    /// synchronous cycle-end check saw the residual below target and
    /// raised the stop flag). Unlike comparing the racy final `relres`
    /// against the target, this flag is published with release/acquire
    /// ordering and is therefore schedule-independent.
    pub stopped_on_tolerance: bool,
}

/// Per-grid thread-shared workspace.
struct GridData {
    /// Grid (level) index.
    k: usize,
    /// Restricted residuals per level `1..=k` (`c[0]` is the team's
    /// `r_local`). `c[j]` has level-`j` length.
    c: Vec<RacyVec>,
    /// Corrections per level `0..=k`.
    e: Vec<RacyVec>,
    /// Level-`k` buffer.
    buf: RacyVec,
    /// Second level-`k` buffer.
    buf2: RacyVec,
    /// AFACx: level-`k+1` restricted residual and correction.
    c1: Option<RacyVec>,
    e1: Option<RacyVec>,
    /// Sweep-start snapshots for multi-sweep smoothing (V(s₁/s₂,0)) at
    /// levels `k` and `k+1`.
    snap: RacyVec,
    snap1: Option<RacyVec>,
    /// Async-GS iterates at levels `k` and `k+1`.
    gs_k: AtomicF64Vec,
    gs_k1: Option<AtomicF64Vec>,
    /// Smoothers with block counts equal to the team size.
    sm_k: LevelSmoother,
    sm_k1: Option<LevelSmoother>,
}

impl GridData {
    fn new(setup: &MgSetup, k: usize, team_size: usize) -> Self {
        let sizes = setup.hierarchy.level_sizes();
        let ell = setup.n_levels() - 1;
        let nk = sizes[k];
        let nk1 = if k < ell { sizes[k + 1] } else { 0 };
        let is_async_gs = setup.opts.smoother == SmootherKind::AsyncGs;
        GridData {
            k,
            c: (0..=k).map(|j| RacyVec::zeros(sizes[j])).collect(),
            e: (0..=k).map(|j| RacyVec::zeros(sizes[j])).collect(),
            buf: RacyVec::zeros(nk),
            buf2: RacyVec::zeros(nk),
            c1: (k < ell).then(|| RacyVec::zeros(nk1)),
            e1: (k < ell).then(|| RacyVec::zeros(nk1)),
            snap: RacyVec::zeros(nk),
            snap1: (k < ell).then(|| RacyVec::zeros(nk1)),
            gs_k: AtomicF64Vec::zeros(if is_async_gs { nk } else { 0 }),
            gs_k1: (k < ell && is_async_gs).then(|| AtomicF64Vec::zeros(nk1)),
            sm_k: LevelSmoother::with_diag(
                setup.a(k),
                &setup.hierarchy.levels[k].diag,
                setup.opts.smoother,
                team_size,
            ),
            sm_k1: (k < ell).then(|| {
                LevelSmoother::with_diag(
                    setup.a(k + 1),
                    &setup.hierarchy.levels[k + 1].diag,
                    setup.opts.smoother,
                    team_size,
                )
            }),
        }
    }
}

/// Per-team thread-shared workspace.
struct TeamData {
    grids: Vec<GridData>,
    x_local: RacyVec,
    r_local: RacyVec,
    delta: RacyVec,
    /// Team-coherent copy of the global stop flag (Criterion 2): the master
    /// samples `Shared::stop` once per round and publishes it here, so every
    /// team member takes the same break decision. Reading the global flag
    /// directly would let two members of one team observe different values
    /// (the store lands between their loads) — one would break while the
    /// other waits at the next team barrier forever.
    stop_local: AtomicBool,
    /// Team-coherent guard verdict for the current write (same pattern as
    /// `stop_local`: published by the master, separated by a barrier).
    verdict: AtomicBool,
    /// Team-coherent quarantine snapshot for the grid about to correct
    /// (the global flag is set asynchronously by the watchdog, so members
    /// reading it directly could disagree and tear the barrier protocol).
    skip_local: AtomicBool,
}

/// The shared state of one solve.
struct Shared<'a, P: Probe + ?Sized> {
    setup: &'a MgSetup,
    b: &'a [f64],
    x: AtomicF64Vec,
    r_glob: AtomicF64Vec,
    x_lock: SpinLock,
    r_lock: SpinLock,
    stop: AtomicBool,
    counters: Vec<AtomicUsize>,
    opts: AsyncOptions,
    probe: &'a P,
    /// The clock every time-based decision reads ([`OsClock`] by default;
    /// a [`VirtualClock`](asyncmg_threads::VirtualClock) makes watchdog
    /// timeout paths deterministic and sleep-free in tests).
    clock: &'a dyn Clock,
    /// `clock.now_ns()` at solve start (probe timestamps are relative).
    start_ns: u64,
    /// Monitor-thread checkpoint hook of the resilience session layer.
    hook: Option<&'a CheckpointHook<'a>>,
    /// `‖b‖₂`, with zero replaced by 1 so relative residuals stay defined.
    norm_b: f64,
    /// The fault plan, when injecting.
    plan: Option<&'a FaultPlan>,
    /// `plan.is_some() || recovery armed` — gates every extra barrier and
    /// check so undefended runs interleave bit-identically to the
    /// pre-recovery runtime.
    defended: bool,
    /// Per-level quarantine flags (set by the guard or the watchdog, only
    /// ever read team-coherently through `TeamData::skip_local`).
    quarantined: Vec<AtomicBool>,
    /// Per-level flags for grids whose team crashed and left.
    dead: Vec<AtomicBool>,
    /// Per-level guard strike counters.
    strikes: Vec<AtomicUsize>,
    /// The fault log (cold path: faults are rare by construction).
    faults: Mutex<Vec<FaultRecord>>,
    /// Raised by the watchdog when the wall-clock budget is exhausted.
    timed_out: AtomicBool,
    /// Raised (release) by whoever observes the tolerance met and stops
    /// the solve; read (acquire) after the join. This is the
    /// schedule-independent "did we converge" signal.
    tol_stopped: AtomicBool,
}

impl<P: Probe + ?Sized> Shared<'_, P> {
    /// Nanoseconds since the solve epoch (for probe timestamps and the
    /// watchdog's budget/stall arithmetic — all through the clock, so a
    /// virtual clock controls every timeout path).
    #[inline]
    fn now_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Appends to the fault log and notifies the probe.
    fn record_fault(&self, kind: FaultKind) {
        let t_ns = self.now_ns();
        self.faults.lock().unwrap().push(FaultRecord { t_ns, kind });
        self.probe.fault(t_ns, kind);
    }

    /// Quarantines level `k` (idempotent), logging the transition.
    fn quarantine(&self, k: usize) {
        if !self.quarantined[k].swap(true, Ordering::AcqRel) {
            self.record_fault(FaultKind::Quarantined { grid: k as u32 });
        }
    }
}

/// Solves `A x = b` with the threaded additive solver. Every correction,
/// timed phase and monitor residual sample is reported to `probe`. With
/// [`NoopProbe`](asyncmg_telemetry::NoopProbe) the hooks compile to nothing.
pub fn solve_async_probed<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
) -> AsyncResult {
    solve_async_impl(setup, b, opts, probe, None, None, None, None)
}

/// [`solve_async_probed`] under an explicit [`Sched`].
///
/// With [`OsSched`] this is exactly the production solver. With a
/// [`VirtualSched`](asyncmg_threads::VirtualSched) the whole solve — every
/// barrier, racy read/write, lock acquisition and end-of-correction yield —
/// is serialized through the scheduler's seeded PRNG, making the
/// interleaving (and hence the floating-point result and the telemetry
/// event content) a deterministic function of the seed.
///
/// Determinism caveat: the asynchronous `StopCriterion::Tolerance` monitor
/// runs on a free thread outside the scheduler and samples wall-clock time;
/// use `StopCriterion::One`/`Two` for reproducible runs.
pub fn solve_async_sched<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
    sched: &dyn Sched,
) -> AsyncResult {
    solve_async_impl(setup, b, opts, probe, Some(sched), None, None, None)
}

/// The fully general entry point: [`solve_async_sched`] plus an optional
/// seeded [`FaultPlan`] injecting stragglers, team crashes, and corrupted
/// or dropped correction writes, with `opts.recovery` arming the
/// countermeasures.
///
/// Fault decisions are pure functions of the plan's seed and the injection
/// site, so under a `VirtualSched` the whole faulted solve — injection,
/// detection and recovery included — replays deterministically from
/// `(plan seed, schedule seed)`. Fault injection requires asynchronous
/// execution (`!opts.sync`): a crashed team would deadlock the global
/// barriers of the synchronous driver.
pub fn solve_async_faulted<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
    sched: Option<&dyn Sched>,
    plan: Option<&FaultPlan>,
) -> AsyncResult {
    solve_async_impl(setup, b, opts, probe, sched, plan, None, None)
}

/// [`solve_async_faulted`] with an explicit [`Clock`].
///
/// Every time-based decision of the solve — the watchdog's `max_wall`
/// budget, the `max_stall` windows, the sleeps between watchdog polls, and
/// all probe timestamps — reads this clock. With the default
/// ([`OsClock`]) the behaviour is exactly [`solve_async_faulted`]; with a
/// [`VirtualClock`](asyncmg_threads::VirtualClock) the watchdog burns no
/// wall-clock time and a timeout test expires its budget deterministically
/// in microseconds (see `docs/robustness.md`).
pub fn solve_async_clocked<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
    sched: Option<&dyn Sched>,
    plan: Option<&FaultPlan>,
    clock: Option<&dyn Clock>,
) -> AsyncResult {
    solve_async_impl(setup, b, opts, probe, sched, plan, clock, None)
}

/// The monitor-thread checkpoint hook a resilience session installs: at
/// `cadence` (and immediately after any quarantine event) the watchdog
/// snapshots the shared iterate into `store` together with the relative
/// residual it just computed.
pub struct CheckpointHook<'a> {
    /// Where snapshots accumulate (the session keeps the best across
    /// attempts).
    pub store: &'a CheckpointStore,
    /// Minimum spacing between cadence-driven snapshots.
    pub cadence: Duration,
    /// The session attempt this solve is, for trace attribution.
    pub attempt: u32,
}

/// [`solve_async_clocked`] with a [`CheckpointHook`]: the resilience
/// session's internal entry point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_async_hooked<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
    sched: Option<&dyn Sched>,
    plan: Option<&FaultPlan>,
    clock: Option<&dyn Clock>,
    hook: Option<&CheckpointHook<'_>>,
) -> AsyncResult {
    solve_async_impl(setup, b, opts, probe, sched, plan, clock, hook)
}

#[allow(clippy::too_many_arguments)]
fn solve_async_impl<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    opts: &AsyncOptions,
    probe: &P,
    sched: Option<&dyn Sched>,
    plan: Option<&FaultPlan>,
    clock: Option<&dyn Clock>,
    hook: Option<&CheckpointHook<'_>>,
) -> AsyncResult {
    let n = setup.n();
    assert_eq!(b.len(), n);
    assert!(opts.n_threads > 0 && opts.t_max > 0);
    if let Err(msg) = opts.recovery.validate() {
        panic!("invalid RecoveryOptions: {msg}");
    }
    let plan = plan.filter(|p| !p.is_empty());
    assert!(
        plan.is_none() || !opts.sync,
        "fault injection requires asynchronous execution (a crashed team would deadlock the \
         synchronous driver's global barriers)"
    );
    let work = setup.work_estimates(opts.method.uses_smoothed_interpolants());
    let layout = GridTeamLayout::build(&work, opts.n_threads);
    // The production scheduler is built here (team sizes are only known
    // once the layout is) unless the caller supplied one.
    let os_sched;
    let sched: &dyn Sched = match sched {
        Some(s) => s,
        None => {
            os_sched = OsSched::for_teams(&layout.sizes);
            &os_sched
        }
    };

    let teams: Vec<TeamData> = layout
        .teams
        .iter()
        .zip(&layout.sizes)
        .map(|(grids, &size)| TeamData {
            grids: grids.iter().map(|&k| GridData::new(setup, k, size)).collect(),
            x_local: RacyVec::zeros(n),
            r_local: RacyVec::zeros(n),
            delta: RacyVec::zeros(n),
            stop_local: AtomicBool::new(false),
            verdict: AtomicBool::new(false),
            skip_local: AtomicBool::new(false),
        })
        .collect();

    // The production clock is built here unless the caller supplied one
    // (virtual clocks make the watchdog's timeout paths deterministic).
    let os_clock;
    let clock: &dyn Clock = match clock {
        Some(c) => c,
        None => {
            os_clock = OsClock::new();
            &os_clock
        }
    };
    let nb = vecops::norm2(b);
    let n_levels = setup.n_levels();
    let shared = Shared {
        setup,
        b,
        x: AtomicF64Vec::zeros(n),
        r_glob: AtomicF64Vec::from_slice(b),
        x_lock: SpinLock::new(),
        r_lock: SpinLock::new(),
        stop: AtomicBool::new(false),
        counters: (0..n_levels).map(|_| AtomicUsize::new(0)).collect(),
        opts: *opts,
        probe,
        clock,
        start_ns: clock.now_ns(),
        hook,
        norm_b: if nb > 0.0 { nb } else { 1.0 },
        plan,
        defended: plan.is_some() || opts.recovery.any_enabled(),
        quarantined: (0..n_levels).map(|_| AtomicBool::new(false)).collect(),
        dead: (0..n_levels).map(|_| AtomicBool::new(false)).collect(),
        strikes: (0..n_levels).map(|_| AtomicUsize::new(0)).collect(),
        faults: Mutex::new(Vec::new()),
        timed_out: AtomicBool::new(false),
        tol_stopped: AtomicBool::new(false),
    };

    let tol = match opts.criterion {
        StopCriterion::Tolerance { relres, check_every } if !opts.sync => {
            Some((relres, check_every))
        }
        _ => None,
    };
    let start = Instant::now();
    if tol.is_some() || (!opts.sync && (opts.recovery.needs_watchdog() || hook.is_some())) {
        // Asynchronous tolerance stopping and the recovery defences need an
        // observer: the worker threads never compute a global residual. The
        // watchdog samples the racy shared iterate, checks the wall-clock
        // budget and per-level heartbeats, and raises the stop flag.
        let done = AtomicBool::new(false);
        let period = tol.map_or(Duration::from_millis(1), |(_, every)| every);
        std::thread::scope(|s| {
            s.spawn(|| watchdog_loop(&shared, tol.map(|(t, _)| t), period, &done));
            run_teams_sched(&layout.sizes, sched, |ctx| {
                team_worker(&shared, &teams[ctx.team_id], &ctx);
            });
            done.store(true, Ordering::Release);
        });
    } else {
        run_teams_sched(&layout.sizes, sched, |ctx| {
            team_worker(&shared, &teams[ctx.team_id], &ctx);
        });
    }
    let elapsed = start.elapsed();

    let x = shared.x.to_vec();
    let mut r = vec![0.0; n];
    setup.op(0).residual(b, &x, &mut r);
    let relres = if nb > 0.0 { vecops::norm2(&r) / nb } else { vecops::norm2(&r) };
    if probe.enabled() {
        // Close the residual trace with the exact post-run value, so every
        // instrumented solve has at least one sample.
        probe.residual_sample(shared.now_ns(), relres);
    }
    let grid_corrections: Vec<usize> =
        shared.counters.iter().map(|c| c.load(Ordering::Acquire)).collect();
    let corrects_mean =
        grid_corrections.iter().sum::<usize>() as f64 / grid_corrections.len() as f64;
    let faults = shared.faults.into_inner().unwrap();
    let stopped_on_tolerance = shared.tol_stopped.load(Ordering::Acquire);
    let hit_tol = match opts.criterion {
        StopCriterion::Tolerance { relres: t, .. } => stopped_on_tolerance || relres < t,
        _ => false,
    };
    let outcome = if shared.timed_out.load(Ordering::Acquire) || !relres.is_finite() {
        SolveOutcome::Faulted
    } else if !faults.is_empty() {
        SolveOutcome::Degraded
    } else if hit_tol {
        SolveOutcome::Converged
    } else {
        SolveOutcome::MaxIterations
    };
    AsyncResult {
        x,
        relres,
        grid_corrections,
        corrects_mean,
        elapsed,
        outcome,
        faults,
        stopped_on_tolerance,
    }
}

/// The watchdog (a generalisation of the tolerance monitor): periodically
/// computes the relative residual from the racy shared iterate (atomic
/// reads, no locks — the workers never wait on it), raises the stop flag
/// once it is below `tol`, and — when recovery is armed — enforces the
/// wall-clock budget, quarantines stalled grids via the correction-counter
/// heartbeats, and rolls a diverging iterate back to the last known-good
/// snapshot.
fn watchdog_loop<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    tol: Option<f64>,
    check_every: Duration,
    done: &AtomicBool,
) {
    let a0 = shared.setup.a(0);
    let n = shared.setup.n();
    let rec = shared.opts.recovery;
    // Rollback never composes with the residual-based flavour: rewriting
    // `x` would break its incremental `r = b − A x` invariant.
    let rollback = rec.rollback_factor.filter(|_| shared.opts.res_comp != ResComp::ResidualBased);
    let want_res = tol.is_some() || rollback.is_some();
    let n_levels = shared.counters.len();
    let mut last_counts = vec![0usize; n_levels];
    // All budget/stall/cadence arithmetic is in clock nanoseconds relative
    // to the solve epoch: under an `OsClock` this is the pre-abstraction
    // wall-clock behaviour, under a `VirtualClock` every timeout path is
    // deterministic and sleep-free.
    let mut last_change = vec![shared.now_ns(); n_levels];
    let mut best = f64::INFINITY;
    let mut good: Vec<f64> = Vec::new();
    let mut ckpt_buf: Vec<f64> = Vec::new();
    let mut last_ckpt_ns: Option<u64> = None;
    let mut last_quarantined = 0usize;
    loop {
        // Sleep in short slices so a finished run does not leave the
        // watchdog sleeping out a long check interval.
        let mut slept = Duration::ZERO;
        while slept < check_every {
            if done.load(Ordering::Acquire) {
                return;
            }
            let slice = (check_every - slept).min(Duration::from_millis(1));
            shared.clock.sleep(slice);
            slept += slice;
        }
        if done.load(Ordering::Acquire) {
            return;
        }
        let now_ns = shared.now_ns();
        // Hard wall-clock budget: stop the solve and report Faulted. The
        // workers check the (team-republished) stop flag once per round, so
        // any live team leaves within one round of corrections.
        if let Some(max_wall) = rec.max_wall {
            if now_ns >= max_wall.as_nanos() as u64 {
                shared.record_fault(FaultKind::Timeout);
                shared.timed_out.store(true, Ordering::Release);
                shared.stop.store(true, Ordering::Release);
                return;
            }
        }
        // Per-level stall detection: the correction counters are the
        // heartbeats. A level that is neither finished nor advancing gets
        // quarantined so the survivors stop waiting for its contribution.
        if let Some(max_stall) = rec.max_stall {
            let stall_ns = max_stall.as_nanos() as u64;
            for k in 0..n_levels {
                let c = shared.counters[k].load(Ordering::Acquire);
                if c != last_counts[k] {
                    last_counts[k] = c;
                    last_change[k] = now_ns;
                } else if c < shared.opts.t_max
                    && !shared.quarantined[k].load(Ordering::Acquire)
                    && !shared.dead[k].load(Ordering::Acquire)
                    && now_ns.saturating_sub(last_change[k]) >= stall_ns
                {
                    shared.record_fault(FaultKind::Stalled { grid: k as u32 });
                    shared.quarantine(k);
                }
            }
        }
        // Checkpoint cadence: a session hook asks for a snapshot every
        // `cadence` — and immediately after a quarantine event, so the last
        // healthy state before degradation is preserved.
        let ckpt_due = shared.hook.is_some_and(|h| {
            let quarantined =
                shared.quarantined.iter().filter(|q| q.load(Ordering::Acquire)).count();
            quarantined != last_quarantined
                || last_ckpt_ns
                    .is_none_or(|t| now_ns.saturating_sub(t) >= h.cadence.as_nanos() as u64)
        });
        if !want_res && !ckpt_due {
            continue;
        }
        let mut sum = 0.0;
        for i in 0..n {
            let v = shared.b[i] - a0.row_dot_atomic(i, &shared.x);
            sum += v * v;
        }
        let relres = sum.sqrt() / shared.norm_b;
        shared.probe.residual_sample(shared.now_ns(), relres);
        if let Some(hook) = shared.hook.filter(|_| ckpt_due) {
            last_ckpt_ns = Some(now_ns);
            last_quarantined =
                shared.quarantined.iter().filter(|q| q.load(Ordering::Acquire)).count();
            if relres.is_finite() {
                let t0 = shared.now_ns();
                ckpt_buf.resize(n, 0.0);
                shared.x.snapshot(&mut ckpt_buf);
                hook.store.offer(&ckpt_buf, relres, hook.attempt, t0);
                if shared.probe.enabled() {
                    let t1 = shared.now_ns();
                    // The monitor records on its own ring, one past the
                    // last worker rank (probes sized for workers only drop
                    // the event safely).
                    shared.probe.phase(
                        shared.opts.n_threads,
                        0,
                        Phase::Checkpoint,
                        t0,
                        t1.saturating_sub(t0),
                    );
                    shared.probe.checkpoint(t0, hook.attempt, relres, false);
                }
            }
        }
        if let Some(factor) = rollback {
            if relres.is_finite() && relres <= best {
                best = relres;
                good.resize(n, 0.0);
                shared.x.snapshot(&mut good);
            } else if !good.is_empty() && (!relres.is_finite() || relres > factor * best) {
                // Divergence (or poison): restore the last known-good
                // iterate. Concurrent corrections keep landing on top of
                // the restored values, which is exactly the additive
                // model's tolerance for perturbed iterates.
                shared.x.store_rows(0..n, &good);
                shared.record_fault(FaultKind::Rollback);
            }
        }
        if tol.is_some_and(|t| relres < t) {
            shared.tol_stopped.store(true, Ordering::Release);
            shared.stop.store(true, Ordering::Release);
            return;
        }
    }
}

/// The per-thread procedure (Algorithm 5, generalised to teams that own
/// several grids and to the synchronous execution mode).
fn team_worker<P: Probe + ?Sized>(shared: &Shared<'_, P>, team: &TeamData, ctx: &TeamCtx<'_>) {
    let setup = shared.setup;
    let opts = &shared.opts;
    let n = setup.n();
    // Initialise local residual to b.
    unsafe {
        let chunk = ctx.chunk(n);
        team.r_local.slice_mut(chunk.clone()).copy_from_slice(&shared.b[chunk]);
    }
    ctx.barrier();
    if opts.sync {
        ctx.global_barrier();
    }

    // Per-worker loop-iteration counter. Every member of a team sees the
    // same value at the same loop point, so fault decisions keyed to
    // (site, round) are team-coherent by construction.
    let mut round: u64 = 0;
    loop {
        // Injected permanent crash: every member computes the same verdict
        // (a pure function of team and round), so the whole team leaves
        // together without tearing any barrier.
        if let Some(plan) = shared.plan {
            if plan.team_crashed(ctx.team_id, round) {
                if ctx.is_team_master() {
                    shared.record_fault(FaultKind::TeamCrash { team: ctx.team_id as u32 });
                    for grid in &team.grids {
                        shared.dead[grid.k].store(true, Ordering::Release);
                    }
                }
                break;
            }
        }
        let mut team_done = true;
        for grid in &team.grids {
            // Criterion 1 (and the Tolerance cap): a grid past t_max stops
            // correcting. The counter is only incremented by this team
            // between barriers, so all team threads read a consistent value
            // here.
            let count = shared.counters[grid.k].load(Ordering::Acquire);
            let capped =
                matches!(opts.criterion, StopCriterion::One | StopCriterion::Tolerance { .. });
            if capped && !opts.sync && count >= opts.t_max {
                continue;
            }
            // Quarantine check. The flag is set asynchronously (guard or
            // watchdog), so the master publishes a team-coherent snapshot
            // the same way the stop flag is republished.
            if shared.defended {
                if ctx.is_team_master() {
                    team.skip_local.store(
                        shared.quarantined[grid.k].load(Ordering::Acquire),
                        Ordering::Release,
                    );
                }
                ctx.barrier();
                if team.skip_local.load(Ordering::Acquire) {
                    continue;
                }
            }
            team_done = false;
            correction_phase(shared, team, grid, ctx);
            let wrote = write_x_phase(shared, team, grid, ctx, round);
            residual_phase(shared, team, grid, ctx, wrote);
            if ctx.is_team_master() {
                shared.counters[grid.k].fetch_add(1, Ordering::AcqRel);
                if shared.probe.enabled() {
                    // Local-res teams just refreshed r_local; its norm is the
                    // cheaply available local view of convergence. Other
                    // flavours report NaN rather than pay for a norm.
                    let local_res = if opts.res_comp == ResComp::Local && !opts.sync {
                        let r = unsafe { team.r_local.as_slice() };
                        vecops::norm2(r) / shared.norm_b
                    } else {
                        f64::NAN
                    };
                    shared.probe.correction(
                        ctx.global_rank,
                        grid.k,
                        count,
                        shared.now_ns(),
                        local_res,
                    );
                }
            }
            ctx.barrier();
            if !opts.sync {
                // Let other teams run between corrections. On machines with
                // fewer cores than threads this keeps per-grid progress
                // roughly balanced, which Section VII identifies as
                // necessary for grid-size-independent convergence (the
                // paper's 272 threads on 68 KNL cores interleave the same
                // way). Under a virtual scheduler this is a preemption
                // point.
                ctx.sched_point(SchedPoint::Yield);
            }
        }

        // Injected straggling: burn extra scheduling decisions, delaying
        // only this worker. Purely per-worker (no shared state), so no
        // team coherence is needed; under a virtual scheduler each yield
        // is one descheduling.
        if let Some(plan) = shared.plan {
            let steps = plan.stall_steps(ctx.global_rank, round);
            if steps > 0 {
                if round == 0 || plan.stall_steps(ctx.global_rank, round - 1) == 0 {
                    shared.record_fault(FaultKind::Straggler {
                        worker: ctx.global_rank as u32,
                        steps,
                    });
                }
                for _ in 0..steps {
                    ctx.sched_point(SchedPoint::Yield);
                }
            }
        }
        round += 1;

        match (opts.sync, opts.criterion) {
            (true, criterion) => {
                // Synchronous execution: one global cycle done; global
                // residual SpMV, then everyone proceeds to the next cycle.
                ctx.global_barrier();
                for i in ctx.global_chunk(n) {
                    let v = shared.b[i] - setup.a(0).row_dot_atomic(i, &shared.x);
                    shared.r_glob.store(i, v);
                }
                ctx.global_barrier();
                {
                    let chunk = ctx.chunk(n);
                    let dst = unsafe { team.r_local.slice_mut(chunk.clone()) };
                    for (off, i) in chunk.enumerate() {
                        dst[off] = shared.r_glob.load(i);
                    }
                }
                ctx.barrier();
                // The residual is already up to date here, so tolerance
                // checking (and trace sampling) is a norm away. Every
                // thread takes this branch or none — the decision depends
                // only on shared state.
                let tol = match criterion {
                    StopCriterion::Tolerance { relres, .. } => Some(relres),
                    _ => None,
                };
                if tol.is_some() || shared.probe.enabled() {
                    if ctx.is_global_master() {
                        let mut sum = 0.0;
                        for i in 0..n {
                            let v = shared.r_glob.load(i);
                            sum += v * v;
                        }
                        let relres = sum.sqrt() / shared.norm_b;
                        shared.probe.residual_sample(shared.now_ns(), relres);
                        if tol.is_some_and(|t| relres < t) {
                            shared.tol_stopped.store(true, Ordering::Release);
                            shared.stop.store(true, Ordering::Release);
                        }
                    }
                    ctx.global_barrier();
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                let cycles = shared.counters[team.grids[0].k].load(Ordering::Acquire);
                if cycles >= opts.t_max {
                    break;
                }
            }
            (false, StopCriterion::One) => {
                if team_done {
                    break;
                }
                // Criterion 1 has no stop flag of its own, but a defended
                // run must still honour the watchdog's timeout stop. The
                // republish-then-barrier dance keeps the break team-
                // coherent; undefended runs skip it entirely (no extra
                // barrier, bit-identical schedules).
                if shared.defended {
                    if ctx.is_team_master() {
                        team.stop_local
                            .store(shared.stop.load(Ordering::Acquire), Ordering::Release);
                    }
                    ctx.barrier();
                    if team.stop_local.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
            (false, StopCriterion::Tolerance { .. }) => {
                // The monitor raises the global flag; t_max caps each grid
                // (so `team_done` also terminates the team). The flag is
                // republished team-coherently, as for Criterion 2.
                if ctx.is_team_master() {
                    team.stop_local.store(shared.stop.load(Ordering::Acquire), Ordering::Release);
                }
                ctx.barrier();
                if team.stop_local.load(Ordering::Acquire) || team_done {
                    break;
                }
            }
            (false, StopCriterion::Two) => {
                if ctx.is_global_master() {
                    // Quarantined and crashed grids never reach t_max;
                    // counting them as done keeps the survivors from
                    // spinning forever on a level that will never advance.
                    let all_done = shared.counters.iter().enumerate().all(|(k, c)| {
                        c.load(Ordering::Acquire) >= opts.t_max
                            || (shared.defended
                                && (shared.quarantined[k].load(Ordering::Acquire)
                                    || shared.dead[k].load(Ordering::Acquire)))
                    });
                    if all_done {
                        shared.stop.store(true, Ordering::Release);
                    }
                }
                // Publish a team-coherent snapshot of the flag (see
                // `TeamData::stop_local`).
                if ctx.is_team_master() {
                    team.stop_local.store(shared.stop.load(Ordering::Acquire), Ordering::Release);
                }
                ctx.barrier();
                if team.stop_local.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

/// Restrict the team-local residual to level `k`, compute the correction
/// `e_k`, and prolongate it back to `e_0` (team-parallel, team barriers).
fn correction_phase<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    team: &TeamData,
    grid: &GridData,
    ctx: &TeamCtx<'_>,
) {
    let setup = shared.setup;
    let opts = &shared.opts;
    let k = grid.k;
    let ell = setup.n_levels() - 1;
    let smoothed = opts.method.uses_smoothed_interpolants();
    // Phase timing by the team master only: it participates in every team
    // barrier, so its wall time spans the team-parallel phase.
    let timing = shared.probe.enabled() && ctx.is_team_master();
    let mut t0 = if timing { shared.now_ns() } else { 0 };

    // Downward: c_{j+1} = R_j c_j (c_0 = r_local).
    for j in 0..k {
        let restrict: &Csr = if smoothed { setup.r_bar(j) } else { setup.r(j) };
        let src = unsafe {
            if j == 0 {
                team.r_local.as_slice()
            } else {
                grid.c[j].as_slice()
            }
        };
        let rows = ctx.chunk(restrict.nrows());
        let dst = unsafe { grid.c[j + 1].slice_mut(rows.clone()) };
        for (off, i) in rows.enumerate() {
            dst[off] = restrict.row_dot(i, src);
        }
        ctx.barrier();
    }
    let c_k: &[f64] = unsafe {
        if k == 0 {
            team.r_local.as_slice()
        } else {
            grid.c[k].as_slice()
        }
    };
    if timing && k > 0 {
        let now = shared.now_ns();
        shared.probe.phase(ctx.global_rank, k, Phase::Restrict, t0, now - t0);
        t0 = now;
    }

    // Level-k correction.
    match opts.method {
        AdditiveMethod::Multadd | AdditiveMethod::Bpx => {
            if k == ell {
                team_coarse_solve(shared, grid, c_k, ctx, setup.opts.coarse);
            } else if opts.method == AdditiveMethod::Multadd {
                team_multadd_lambda(shared, grid, c_k, ctx);
            } else {
                team_smooth_zero(shared, grid, c_k, Level::K, ctx, 1);
            }
        }
        AdditiveMethod::Afacx => {
            if k == ell {
                team_coarse_solve(shared, grid, c_k, ctx, setup.opts.afacx_coarse);
            } else {
                // c1 = R_k c_k (plain restriction).
                let restrict = setup.r(k);
                let rows = ctx.chunk(restrict.nrows());
                {
                    let dst = unsafe { grid.c1.as_ref().unwrap().slice_mut(rows.clone()) };
                    for (off, i) in rows.enumerate() {
                        dst[off] = restrict.row_dot(i, c_k);
                    }
                }
                ctx.barrier();
                // e1 = smooth(A_{k+1}, c1) from zero.
                let c1 = unsafe { grid.c1.as_ref().unwrap().as_slice() };
                team_smooth_zero(shared, grid, c1, Level::K1, ctx, setup.opts.afacx_s2);
                // buf2 = P_k e1 ; buf = c_k − A_k buf2.
                let e1 = unsafe { grid.e1.as_ref().unwrap().as_slice() };
                let p = setup.p(k);
                let rows = ctx.chunk(p.nrows());
                {
                    let dst = unsafe { grid.buf2.slice_mut(rows.clone()) };
                    for (off, i) in rows.clone().enumerate() {
                        dst[off] = p.row_dot(i, e1);
                    }
                }
                ctx.barrier();
                let buf2 = unsafe { grid.buf2.as_slice() };
                let a_k = setup.a(k);
                let rows = ctx.chunk(a_k.nrows());
                {
                    let dst = unsafe { grid.buf.slice_mut(rows.clone()) };
                    for (off, i) in rows.clone().enumerate() {
                        dst[off] = c_k[i] - a_k.row_dot(i, buf2);
                    }
                }
                ctx.barrier();
                let g = unsafe { grid.buf.as_slice() };
                team_smooth_zero(shared, grid, g, Level::K, ctx, setup.opts.afacx_s1);
            }
        }
    }
    if timing {
        let now = shared.now_ns();
        shared.probe.phase(ctx.global_rank, k, Phase::Smooth, t0, now - t0);
        t0 = now;
    }

    // Upward: e_j = P_j e_{j+1}.
    for j in (0..k).rev() {
        let prolong: &Csr = if smoothed { setup.p_bar(j) } else { setup.p(j) };
        let src = unsafe { grid.e[j + 1].as_slice() };
        let rows = ctx.chunk(prolong.nrows());
        let dst = unsafe { grid.e[j].slice_mut(rows.clone()) };
        for (off, i) in rows.enumerate() {
            dst[off] = prolong.row_dot(i, src);
        }
        ctx.barrier();
    }
    if timing && k > 0 {
        let now = shared.now_ns();
        shared.probe.phase(ctx.global_rank, k, Phase::Prolong, t0, now - t0);
    }
}

/// Which level a smoothing call targets.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Level {
    K,
    K1,
}

/// `e = Λ c` for the symmetrized Multadd smoother (Jacobi variants) or one
/// block-GS application (hybrid/async), team-parallel.
fn team_multadd_lambda<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    grid: &GridData,
    c: &[f64],
    ctx: &TeamCtx<'_>,
) {
    let setup = shared.setup;
    let a = setup.a(grid.k);
    let sm = &grid.sm_k;
    match sm.kind() {
        SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi => {
            let w = sm.weights();
            let nk = a.nrows();
            // e = W c.
            let rows = ctx.chunk(nk);
            {
                let dst = unsafe { grid.e[grid.k].slice_mut(rows.clone()) };
                for (off, i) in rows.clone().enumerate() {
                    dst[off] = w[i] * c[i];
                }
            }
            ctx.barrier();
            // buf = A e.
            let e = unsafe { grid.e[grid.k].as_slice() };
            let rows = ctx.chunk(nk);
            {
                let dst = unsafe { grid.buf.slice_mut(rows.clone()) };
                for (off, i) in rows.clone().enumerate() {
                    dst[off] = a.row_dot(i, e);
                }
            }
            ctx.barrier();
            // e_i = w_i (2 m_ii e_i − buf_i): own rows only.
            let rows = ctx.chunk(nk);
            {
                let buf = unsafe { grid.buf.as_slice() };
                let dst = unsafe { grid.e[grid.k].slice_mut(rows.clone()) };
                for (off, i) in rows.clone().enumerate() {
                    dst[off] = w[i] * (2.0 * sm.m_diagonal(i) * dst[off] - buf[i]);
                }
            }
            ctx.barrier();
        }
        SmootherKind::HybridJgs | SmootherKind::AsyncGs => {
            team_smooth_zero(shared, grid, c, Level::K, ctx, 1);
        }
    }
}

/// Team-parallel smoothing from a zero initial guess: `sweeps` relaxations
/// on `A e = c` at level `k` or `k+1` (the `s₁`/`s₂` of an AFACx
/// V(s₁/s₂,0)-cycle).
fn team_smooth_zero<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    grid: &GridData,
    c: &[f64],
    level: Level,
    ctx: &TeamCtx<'_>,
    sweeps: usize,
) {
    let setup = shared.setup;
    let (a, sm, e, snap) = match level {
        Level::K => (setup.a(grid.k), &grid.sm_k, &grid.e[grid.k], &grid.snap),
        Level::K1 => (
            setup.a(grid.k + 1),
            grid.sm_k1.as_ref().unwrap(),
            grid.e1.as_ref().unwrap(),
            grid.snap1.as_ref().unwrap(),
        ),
    };
    let nk = a.nrows();
    match sm.kind() {
        SmootherKind::WJacobi { .. } | SmootherKind::L1Jacobi | SmootherKind::HybridJgs => {
            let range = block_or_chunk(sm, ctx, nk);
            {
                let dst = unsafe { e.slice_mut(range.clone()) };
                sm.apply_zero_range(a, c, dst, range.clone());
            }
            ctx.barrier();
            for _ in 1..sweeps {
                // Snapshot the iterate, then relax each block against it.
                {
                    let es = unsafe { e.as_slice() };
                    let chunk = ctx.chunk(nk);
                    let dst = unsafe { snap.slice_mut(chunk.clone()) };
                    for (off, i) in chunk.enumerate() {
                        dst[off] = es[i];
                    }
                }
                ctx.barrier();
                {
                    let old = unsafe { snap.as_slice() };
                    let dst = unsafe { e.slice_mut(range.clone()) };
                    sm.relax_range(a, c, dst, old, range.clone());
                }
                ctx.barrier();
            }
        }
        SmootherKind::AsyncGs => {
            // The shared iterate is only allocated for the async-GS
            // smoother.
            let gs = match level {
                Level::K => &grid.gs_k,
                Level::K1 => grid.gs_k1.as_ref().unwrap(),
            };
            // Zero the shared iterate, sweep asynchronously (no barrier
            // between threads during the sweeps), then copy back.
            let chunk = ctx.chunk(nk);
            for i in chunk.clone() {
                gs.store(i, 0.0);
            }
            ctx.barrier();
            let block = block_or_chunk(sm, ctx, nk);
            for _ in 0..sweeps {
                async_gs_sweep(a, c, gs, sm.weights(), block.clone());
            }
            ctx.barrier();
            let chunk = ctx.chunk(nk);
            let dst = unsafe { e.slice_mut(chunk.clone()) };
            for (off, i) in chunk.enumerate() {
                dst[off] = gs.load(i);
            }
            ctx.barrier();
        }
    }
}

/// The rank's smoother block if the smoother is blocked with the team size,
/// else the rank's plain chunk.
fn block_or_chunk(sm: &LevelSmoother, ctx: &TeamCtx<'_>, n: usize) -> std::ops::Range<usize> {
    if ctx.rank < sm.blocks().len() {
        sm.blocks()[ctx.rank].clone()
    } else {
        // More threads than blocks (tiny level): idle range.
        let _ = n;
        0..0
    }
}

/// Coarse solve by the team master (dense LU), or smoothing sweeps.
fn team_coarse_solve<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    grid: &GridData,
    c: &[f64],
    ctx: &TeamCtx<'_>,
    coarse: CoarseSolve,
) {
    let setup = shared.setup;
    match (coarse, &setup.hierarchy.coarse_lu) {
        (CoarseSolve::Exact, Some(lu)) => {
            if ctx.is_team_master() {
                let dst = unsafe { grid.e[grid.k].slice_mut(0..lu.dim()) };
                lu.solve(c, dst);
            }
            ctx.barrier();
        }
        (CoarseSolve::Smooth { sweeps }, _) => {
            team_smooth_zero(shared, grid, c, Level::K, ctx, sweeps);
        }
        (CoarseSolve::Exact, None) => {
            // Singular coarsest operator: fall back to smoothing.
            team_smooth_zero(shared, grid, c, Level::K, ctx, 2);
        }
    }
}

/// `x += e_0`, with lock-write or atomic-write.
///
/// This is the fault site for write corruption/drops and the recovery site
/// for the correction guard: a defended run may corrupt `e_0`, suppress it
/// (dropped, or guard-rejected with a strike), or scale it by the damping
/// factor before it reaches the shared iterate. Returns whether the write
/// was applied — residual bookkeeping must skip updates for suppressed
/// writes.
fn write_x_phase<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    team: &TeamData,
    grid: &GridData,
    ctx: &TeamCtx<'_>,
    round: u64,
) -> bool {
    let n = shared.setup.n();
    let rec = &shared.opts.recovery;
    // Injected faults on this round's write. Decisions are pure functions
    // of (grid, round): every team member computes the same verdict.
    if let Some(plan) = shared.plan {
        if plan.drops_write(grid.k, round) {
            if ctx.is_team_master() {
                shared.record_fault(FaultKind::WriteDropped { grid: grid.k as u32 });
            }
            return false;
        }
        if let Some(kind) = plan.corruption(grid.k, round) {
            // The master mangles one entry of its own chunk, then a
            // barrier publishes the corruption before anyone (guard or
            // write loop) reads e_0.
            if ctx.is_team_master() {
                let chunk = ctx.chunk(n);
                if !chunk.is_empty() {
                    let dst = unsafe { grid.e[0].slice_mut(chunk.start..chunk.start + 1) };
                    dst[0] = plan.corrupt_value(kind, dst[0], grid.k, round);
                }
                shared.record_fault(FaultKind::WriteCorrupted { grid: grid.k as u32 });
            }
            ctx.barrier();
        }
    }
    // Correction guard: the master scans the (now stable) correction and
    // publishes a team-coherent verdict. A rejected correction never
    // reaches `x`; repeated rejections damp and eventually quarantine the
    // grid.
    let mut scale = 1.0;
    if shared.defended && rec.guard_corrections {
        if ctx.is_team_master() {
            let e0 = unsafe { grid.e[0].as_slice() };
            let bad = e0.iter().any(|&v| !v.is_finite() || v.abs() > rec.max_correction);
            team.verdict.store(bad, Ordering::Release);
            if bad {
                shared.record_fault(FaultKind::GuardTripped { grid: grid.k as u32 });
                let strikes = shared.strikes[grid.k].fetch_add(1, Ordering::AcqRel) + 1;
                if rec.quarantine_after > 0 && strikes >= rec.quarantine_after {
                    shared.quarantine(grid.k);
                } else if rec.damping < 1.0 && strikes == 1 {
                    shared.record_fault(FaultKind::Damped { grid: grid.k as u32 });
                }
            }
        }
        ctx.barrier();
        if team.verdict.load(Ordering::Acquire) {
            return false;
        }
        if rec.damping < 1.0 && shared.strikes[grid.k].load(Ordering::Acquire) > 0 {
            scale = rec.damping;
        }
    }
    if scale != 1.0 {
        // Additive damping: scale the rows this member is about to write
        // (chunk-disjoint, so no barrier needed before the write below).
        let chunk = ctx.chunk(n);
        let dst = unsafe { grid.e[0].slice_mut(chunk.clone()) };
        for v in dst.iter_mut() {
            *v *= scale;
        }
    }
    let e0 = unsafe { grid.e[0].as_slice() };
    let timing = shared.probe.enabled() && ctx.is_team_master();
    let t0 = if timing { shared.now_ns() } else { 0 };
    match shared.opts.write {
        WriteMode::Lock => {
            if ctx.is_team_master() {
                // Acquired by the master, released by the master after the
                // team's write barrier — the explicit lock/unlock pair of
                // SpinLock fits this asymmetric protocol. Routed through
                // the scheduler so a virtual schedule can suspend the
                // holder without livelocking waiters.
                ctx.lock(&shared.x_lock);
            }
            ctx.barrier();
            shared.x.add_rows_exclusive(ctx.chunk(n), e0);
            ctx.barrier();
            if ctx.is_team_master() {
                ctx.unlock(&shared.x_lock);
            }
        }
        WriteMode::Atomic => {
            ctx.sched_point(SchedPoint::RacyWrite);
            shared.x.add_rows_atomic(ctx.chunk(n), e0);
            ctx.barrier();
        }
    }
    if timing {
        let now = shared.now_ns();
        shared.probe.phase(ctx.global_rank, grid.k, Phase::SharedWrite, t0, now - t0);
    }
    true
}

/// Refresh the team-local residual (Algorithm 5 lines 11–19, plus the
/// residual-based variant).
fn residual_phase<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    team: &TeamData,
    grid: &GridData,
    ctx: &TeamCtx<'_>,
    wrote: bool,
) {
    let setup = shared.setup;
    let opts = &shared.opts;
    let n = setup.n();
    let a0 = setup.a(0);
    if opts.sync {
        // The synchronous driver recomputes the residual globally at the end
        // of the cycle; nothing to do per grid.
        return;
    }
    let timing = shared.probe.enabled() && ctx.is_team_master();
    let t0 = if timing { shared.now_ns() } else { 0 };
    residual_phase_inner(shared, team, grid, ctx, n, a0, wrote);
    if timing {
        let now = shared.now_ns();
        shared.probe.phase(ctx.global_rank, grid.k, Phase::ResidualUpdate, t0, now - t0);
    }
}

fn residual_phase_inner<P: Probe + ?Sized>(
    shared: &Shared<'_, P>,
    team: &TeamData,
    grid: &GridData,
    ctx: &TeamCtx<'_>,
    n: usize,
    a0: &Csr,
    wrote: bool,
) {
    let opts = &shared.opts;
    if opts.res_comp == ResComp::ResidualBased {
        // A suppressed write (dropped or guard-rejected) never changed x,
        // so the incremental update must be skipped too — applying it
        // would break the `r = b − A x` invariant permanently. The team
        // still refreshes r_local from the shared residual below.
        if wrote {
            // delta = A e_0 (team-parallel), then r_glob −= delta.
            let e0 = unsafe { grid.e[0].as_slice() };
            let chunk = ctx.chunk(n);
            {
                let dst = unsafe { team.delta.slice_mut(chunk.clone()) };
                for (off, i) in chunk.clone().enumerate() {
                    dst[off] = a0.row_dot(i, e0);
                }
            }
            ctx.barrier();
            let delta = unsafe { team.delta.as_slice() };
            match opts.write {
                WriteMode::Lock => {
                    if ctx.is_team_master() {
                        ctx.lock(&shared.r_lock);
                    }
                    ctx.barrier();
                    let chunk = ctx.chunk(n);
                    for i in chunk {
                        shared.r_glob.store(i, shared.r_glob.load(i) - delta[i]);
                    }
                    ctx.barrier();
                    if ctx.is_team_master() {
                        ctx.unlock(&shared.r_lock);
                    }
                }
                WriteMode::Atomic => {
                    ctx.sched_point(SchedPoint::RacyWrite);
                    let chunk = ctx.chunk(n);
                    for i in chunk {
                        shared.r_glob.fetch_add(i, -delta[i]);
                    }
                    ctx.barrier();
                }
            }
        }
        ctx.sched_point(SchedPoint::RacyRead);
        let chunk = ctx.chunk(n);
        let dst = unsafe { team.r_local.slice_mut(chunk.clone()) };
        for (off, i) in chunk.enumerate() {
            dst[off] = shared.r_glob.load(i);
        }
        ctx.barrier();
        return;
    }
    match opts.res_comp {
        ResComp::Local => {
            // Snapshot x, then recompute the residual locally. The snapshot
            // reads the racy shared iterate: a delay-injecting scheduler
            // deschedules the reader here so the snapshot it then takes is
            // up to δ decisions stale (the paper's delayed-read model).
            ctx.sched_point(SchedPoint::RacyRead);
            let chunk = ctx.chunk(n);
            {
                let dst = unsafe { team.x_local.slice_mut(chunk.clone()) };
                for (off, i) in chunk.enumerate() {
                    dst[off] = shared.x.load(i);
                }
            }
            ctx.barrier();
            let x_local = unsafe { team.x_local.as_slice() };
            let chunk = ctx.chunk(n);
            let dst = unsafe { team.r_local.slice_mut(chunk.clone()) };
            for (off, i) in chunk.enumerate() {
                dst[off] = shared.b[i] - a0.row_dot(i, x_local);
            }
            ctx.barrier();
        }
        ResComp::Global => {
            // Non-blocking global update of the rows this thread owns
            // globally (the "No Wait GlobalParfor" of Algorithm 5), reading
            // the racy shared x.
            ctx.sched_point(SchedPoint::RacyRead);
            for i in ctx.global_chunk(n) {
                let v = shared.b[i] - a0.row_dot_atomic(i, &shared.x);
                shared.r_glob.store(i, v);
            }
            // Read the shared residual into local memory.
            ctx.sched_point(SchedPoint::RacyRead);
            let chunk = ctx.chunk(n);
            let dst = unsafe { team.r_local.slice_mut(chunk.clone()) };
            for (off, i) in chunk.enumerate() {
                dst[off] = shared.r_glob.load(i);
            }
            ctx.barrier();
        }
        ResComp::ResidualBased => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
    use asyncmg_telemetry::NoopProbe;

    fn setup_n(n: usize) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    /// Test shorthand for the probed entry point with no probe.
    fn solve_async(setup: &MgSetup, b: &[f64], opts: &AsyncOptions) -> AsyncResult {
        solve_async_probed(setup, b, opts, &NoopProbe)
    }

    #[test]
    fn sync_multadd_matches_sequential_additive() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let seq = crate::additive::solve_additive_probed(
            &s,
            AdditiveMethod::Multadd,
            &b,
            8,
            None,
            &NoopProbe,
        );
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions { sync: true, t_max: 8, n_threads: 4, ..Default::default() },
        );
        eprintln!("seq {} par {}", seq.final_relres(), par.relres);
        assert!(
            (par.relres - seq.final_relres()).abs() < 1e-9 * seq.final_relres().max(1e-20),
            "threaded sync {} vs sequential {}",
            par.relres,
            seq.final_relres()
        );
    }

    #[test]
    fn async_local_res_converges() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par =
            solve_async(&s, &b, &AsyncOptions { t_max: 40, n_threads: 4, ..Default::default() });
        assert!(par.relres < 1e-2, "relres {}", par.relres);
        assert!(par.grid_corrections.iter().all(|&c| c == 40));
        assert_eq!(par.corrects_mean, 40.0);
    }

    #[test]
    fn async_global_res_converges_single_thread() {
        // With one thread the global residual is fully refreshed at every
        // correction, so global-res must converge deterministically; this
        // pins down the code path without scheduler sensitivity.
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                res_comp: ResComp::Global,
                t_max: 40,
                n_threads: 1,
                ..Default::default()
            },
        );
        assert!(par.relres < 1e-2, "global-res relres {}", par.relres);
    }

    #[test]
    fn async_global_res_oversubscribed_shows_documented_degradation() {
        // Section IV/VI: with delayed grids, global-res residual components
        // go stale and the method converges slowly or diverges (the paper's
        // † entries). On an oversubscribed machine both outcomes occur; we
        // only require the run to terminate and report a finite residual.
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                res_comp: ResComp::Global,
                t_max: 20,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(par.relres.is_finite());
        assert!(par.grid_corrections.iter().all(|&c| c == 20));
    }

    #[test]
    fn async_atomic_write_converges() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                write: WriteMode::Atomic,
                t_max: 40,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(par.relres < 1e-2, "atomic-write relres {}", par.relres);
    }

    #[test]
    fn r_multadd_residual_based_converges() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                res_comp: ResComp::ResidualBased,
                write: WriteMode::Atomic,
                t_max: 40,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(par.relres < 1e-2, "r-Multadd relres {}", par.relres);
    }

    #[test]
    fn criterion_two_overshoots_t_max() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                criterion: StopCriterion::Two,
                t_max: 10,
                n_threads: 4,
                ..Default::default()
            },
        );
        // Every grid does at least t_max corrections; some may do more
        // (Table I's Corrects ≥ V-cycles).
        assert!(par.grid_corrections.iter().all(|&c| c >= 10), "{:?}", par.grid_corrections);
        assert!(par.relres < 1e-2);
    }

    #[test]
    fn async_afacx_converges() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                method: AdditiveMethod::Afacx,
                t_max: 40,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(par.relres < 1e-2, "AFACx relres {}", par.relres);
    }

    #[test]
    fn sync_afacx_matches_sequential() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 7);
        let seq = crate::additive::solve_additive_probed(
            &s,
            AdditiveMethod::Afacx,
            &b,
            6,
            None,
            &NoopProbe,
        );
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                method: AdditiveMethod::Afacx,
                sync: true,
                t_max: 6,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(
            (par.relres - seq.final_relres()).abs() < 1e-9 * seq.final_relres().max(1e-20),
            "threaded sync AFACx {} vs sequential {}",
            par.relres,
            seq.final_relres()
        );
    }

    #[test]
    fn async_with_async_gs_smoother_converges() {
        use asyncmg_smoothers::SmootherKind;
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s =
            MgSetup::new(h, MgOptions { smoother: SmootherKind::AsyncGs, ..Default::default() });
        let b = random_rhs(s.n(), 3);
        let par =
            solve_async(&s, &b, &AsyncOptions { t_max: 40, n_threads: 4, ..Default::default() });
        assert!(par.relres < 1e-2, "async GS relres {}", par.relres);
    }

    #[test]
    fn async_with_hybrid_jgs_converges() {
        use asyncmg_smoothers::SmootherKind;
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s =
            MgSetup::new(h, MgOptions { smoother: SmootherKind::HybridJgs, ..Default::default() });
        let b = random_rhs(s.n(), 3);
        let par =
            solve_async(&s, &b, &AsyncOptions { t_max: 40, n_threads: 4, ..Default::default() });
        assert!(par.relres < 1e-2, "hybrid JGS relres {}", par.relres);
    }

    #[test]
    fn more_threads_than_grids_is_fine() {
        let s = setup_n(5);
        let b = random_rhs(s.n(), 1);
        let par =
            solve_async(&s, &b, &AsyncOptions { t_max: 10, n_threads: 8, ..Default::default() });
        assert!(par.relres < 1e-1);
    }

    #[test]
    fn fewer_threads_than_grids_is_fine() {
        let a = laplacian_7pt(10, 10, 10);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s = MgSetup::new(h, MgOptions::default());
        assert!(s.n_levels() >= 2);
        let b = random_rhs(s.n(), 1);
        let par =
            solve_async(&s, &b, &AsyncOptions { t_max: 10, n_threads: 1, ..Default::default() });
        assert!(par.relres < 1e-1, "relres {}", par.relres);
        assert!(par.grid_corrections.iter().all(|&c| c == 10));
    }

    #[test]
    fn threaded_mult_matches_sequential_for_jacobi() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let seq = crate::mult::solve_mult_probed(&s, &b, 5, None, &NoopProbe);
        let par = crate::parallel_mult::solve_mult_threaded_probed(&s, &b, 4, 5, None, &NoopProbe);
        assert!(
            (par.relres - seq.final_relres()).abs() < 1e-10 * seq.final_relres().max(1e-20),
            "threaded {} vs sequential {}",
            par.relres,
            seq.final_relres()
        );
    }

    #[test]
    fn threaded_mult_converges_with_hybrid_jgs() {
        use asyncmg_smoothers::SmootherKind;
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s =
            MgSetup::new(h, MgOptions { smoother: SmootherKind::HybridJgs, ..Default::default() });
        let b = random_rhs(s.n(), 3);
        let par = crate::parallel_mult::solve_mult_threaded_probed(&s, &b, 4, 20, None, &NoopProbe);
        assert!(par.relres < 1e-7, "relres {}", par.relres);
    }

    #[test]
    fn sync_afacx_multi_sweep_matches_sequential() {
        // V(2/2,0)-AFACx: threaded sync execution equals the sequential
        // solver, validating the multi-sweep team smoothing.
        use crate::setup::CoarseSolve;
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s = MgSetup::new(
            h,
            MgOptions {
                afacx_s1: 2,
                afacx_s2: 2,
                afacx_coarse: CoarseSolve::Smooth { sweeps: 2 },
                ..Default::default()
            },
        );
        let b = random_rhs(s.n(), 5);
        let seq = crate::additive::solve_additive_probed(
            &s,
            AdditiveMethod::Afacx,
            &b,
            6,
            None,
            &NoopProbe,
        );
        let par = solve_async(
            &s,
            &b,
            &AsyncOptions {
                method: AdditiveMethod::Afacx,
                sync: true,
                t_max: 6,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(
            (par.relres - seq.final_relres()).abs() < 1e-9 * seq.final_relres().max(1e-20),
            "threaded {} vs sequential {}",
            par.relres,
            seq.final_relres()
        );
    }

    #[test]
    fn afacx_more_sweeps_converge_faster() {
        use crate::setup::CoarseSolve;
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let b_opts = |s1, s2| MgOptions {
            afacx_s1: s1,
            afacx_s2: s2,
            afacx_coarse: CoarseSolve::Smooth { sweeps: s1 },
            ..Default::default()
        };
        let s1 = MgSetup::new(h.clone(), b_opts(1, 1));
        let s2 = MgSetup::new(h, b_opts(3, 3));
        let b = random_rhs(s1.n(), 8);
        let r1 = crate::additive::solve_additive_probed(
            &s1,
            AdditiveMethod::Afacx,
            &b,
            15,
            None,
            &NoopProbe,
        );
        let r2 = crate::additive::solve_additive_probed(
            &s2,
            AdditiveMethod::Afacx,
            &b,
            15,
            None,
            &NoopProbe,
        );
        assert!(
            r2.final_relres() < r1.final_relres(),
            "V(3/3,0) {} should beat V(1/1,0) {}",
            r2.final_relres(),
            r1.final_relres()
        );
    }

    // ---- fault injection and recovery -----------------------------------

    use asyncmg_threads::{Corruption, Fault, FaultPlan, VirtualSched};

    fn faulted(
        s: &MgSetup,
        b: &[f64],
        opts: &AsyncOptions,
        plan: &FaultPlan,
        sched_seed: u64,
    ) -> AsyncResult {
        let sched = VirtualSched::new(sched_seed);
        solve_async_faulted(s, b, opts, &NoopProbe, Some(&sched), Some(plan))
    }

    #[test]
    fn defended_fault_free_run_is_clean() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let opts = AsyncOptions {
            t_max: 30,
            n_threads: 4,
            recovery: RecoveryOptions::defended(),
            ..Default::default()
        };
        let res = solve_async_probed(&s, &b, &opts, &NoopProbe);
        assert!(res.faults.is_empty(), "no faults injected, none should be logged");
        assert_eq!(res.outcome, SolveOutcome::MaxIterations);
        assert!(res.outcome.is_ok());
        assert!(res.relres < 1e-2, "relres {}", res.relres);
    }

    #[test]
    fn unguarded_nan_corruption_faults_the_solve() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(1).with(Fault::CorruptWrite {
            grid: 0,
            at_round: 2,
            kind: Corruption::Nan,
        });
        let opts = AsyncOptions { t_max: 10, n_threads: 4, ..Default::default() };
        let res = faulted(&s, &b, &opts, &plan, 11);
        assert_eq!(res.outcome, SolveOutcome::Faulted, "NaN must poison the unguarded iterate");
        assert!(!res.relres.is_finite());
        assert!(res.faults.iter().any(|f| matches!(f.kind, FaultKind::WriteCorrupted { grid: 0 })));
    }

    #[test]
    fn guarded_corruption_is_suppressed_and_degrades() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(2).with(Fault::CorruptWrite {
            grid: 1,
            at_round: 1,
            kind: Corruption::Inf,
        });
        let opts = AsyncOptions {
            t_max: 20,
            n_threads: 4,
            recovery: RecoveryOptions::defended(),
            ..Default::default()
        };
        let res = faulted(&s, &b, &opts, &plan, 12);
        assert_eq!(res.outcome, SolveOutcome::Degraded);
        assert!(res.relres.is_finite() && res.relres < 1e-1, "relres {}", res.relres);
        assert!(res.x.iter().all(|v| v.is_finite()));
        assert!(res.faults.iter().any(|f| matches!(f.kind, FaultKind::GuardTripped { grid: 1 })));
    }

    #[test]
    fn crashed_team_degrades_but_rest_of_hierarchy_converges() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(3).with(Fault::Crash { team: 1, at_round: 0 });
        let opts = AsyncOptions {
            t_max: 30,
            n_threads: 4,
            recovery: RecoveryOptions::defended(),
            ..Default::default()
        };
        let res = faulted(&s, &b, &opts, &plan, 13);
        assert_eq!(res.outcome, SolveOutcome::Degraded);
        assert!(res.faults.iter().any(|f| matches!(f.kind, FaultKind::TeamCrash { team: 1 })));
        // The crashed team did no corrections; the surviving grids finished
        // their budget and still reduced the residual.
        assert!(res.grid_corrections.contains(&0), "{:?}", res.grid_corrections);
        assert!(res.grid_corrections.contains(&30), "{:?}", res.grid_corrections);
        assert!(res.relres.is_finite() && res.relres < 1e-1, "relres {}", res.relres);
    }

    #[test]
    fn dropped_writes_are_logged_and_solve_survives() {
        let s = setup_n(6);
        let ell = s.n_levels() - 1;
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(4).with(Fault::DropWrite { grid: ell, prob: 1.0 });
        let opts = AsyncOptions {
            t_max: 20,
            n_threads: 4,
            recovery: RecoveryOptions::defended(),
            ..Default::default()
        };
        let res = faulted(&s, &b, &opts, &plan, 14);
        assert_eq!(res.outcome, SolveOutcome::Degraded);
        let drops = res
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::WriteDropped { grid } if grid as usize == ell))
            .count();
        assert_eq!(drops, 20, "every round of the coarsest grid drops");
        assert!(res.relres.is_finite() && res.relres < 1e-1, "relres {}", res.relres);
    }

    #[test]
    fn repeated_corruption_quarantines_the_grid() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        // NaN (unlike a bit-flip, which can land back in range) trips the
        // guard on every hit, so four hits exceed the 3-strike quarantine
        // threshold deterministically.
        let mut plan = FaultPlan::new(5);
        for round in 1..=4 {
            plan =
                plan.with(Fault::CorruptWrite { grid: 1, at_round: round, kind: Corruption::Nan });
        }
        let opts = AsyncOptions {
            t_max: 20,
            n_threads: 4,
            recovery: RecoveryOptions::defended(), // quarantine_after: 3
            ..Default::default()
        };
        let res = faulted(&s, &b, &opts, &plan, 15);
        assert_eq!(res.outcome, SolveOutcome::Degraded);
        assert!(res.faults.iter().any(|f| matches!(f.kind, FaultKind::Quarantined { grid: 1 })));
        assert!(res.relres.is_finite(), "quarantine must keep the iterate clean");
    }

    #[test]
    fn wall_clock_timeout_reports_faulted() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let opts = AsyncOptions {
            t_max: 200_000,
            n_threads: 4,
            recovery: RecoveryOptions { max_wall: Some(Duration::ZERO), ..Default::default() },
            ..Default::default()
        };
        let res = solve_async_probed(&s, &b, &opts, &NoopProbe);
        assert_eq!(res.outcome, SolveOutcome::Faulted);
        assert!(res.faults.iter().any(|f| matches!(f.kind, FaultKind::Timeout)));
        assert!(
            res.grid_corrections.iter().all(|&c| c < 200_000),
            "timeout must cut the budget short: {:?}",
            res.grid_corrections
        );
    }

    #[test]
    fn straggler_injection_is_logged_and_harmless() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(6).with(Fault::Straggler {
            worker: 0,
            from_round: 2,
            rounds: 3,
            steps: 7,
        });
        let opts = AsyncOptions { t_max: 20, n_threads: 4, ..Default::default() };
        let res = faulted(&s, &b, &opts, &plan, 16);
        assert_eq!(res.outcome, SolveOutcome::Degraded);
        assert!(res
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Straggler { worker: 0, steps: 7 })));
        assert!(res.relres < 1e-1, "a slow worker must not break convergence: {}", res.relres);
        assert!(res.grid_corrections.iter().all(|&c| c == 20), "{:?}", res.grid_corrections);
    }

    #[test]
    fn faulted_replay_is_deterministic_under_virtual_sched() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let plan = FaultPlan::new(7)
            .with(Fault::Crash { team: 2, at_round: 3 })
            .with(Fault::CorruptWrite { grid: 0, at_round: 2, kind: Corruption::BitFlip });
        let opts = AsyncOptions {
            t_max: 15,
            n_threads: 4,
            recovery: RecoveryOptions::defended(),
            ..Default::default()
        };
        let r1 = faulted(&s, &b, &opts, &plan, 17);
        let r2 = faulted(&s, &b, &opts, &plan, 17);
        assert_eq!(r1.outcome, r2.outcome);
        assert_eq!(r1.relres.to_bits(), r2.relres.to_bits(), "bit-identical replay");
        assert_eq!(r1.grid_corrections, r2.grid_corrections);
        let kinds = |r: &AsyncResult| r.faults.iter().map(|f| f.kind).collect::<Vec<_>>();
        assert_eq!(kinds(&r1), kinds(&r2));
    }

    #[test]
    fn recovery_options_validate_ranges() {
        assert!(RecoveryOptions::default().validate().is_ok());
        assert!(RecoveryOptions::defended().validate().is_ok());
        let r = RecoveryOptions { damping: 0.0, ..Default::default() };
        assert!(r.validate().is_err());
        let r = RecoveryOptions { rollback_factor: Some(0.5), ..Default::default() };
        assert!(r.validate().is_err());
        let mut o =
            AsyncOptions { criterion: StopCriterion::tolerance(f64::NAN), ..Default::default() };
        assert!(o.validate().is_err());
        o.criterion = StopCriterion::One;
        o.n_threads = 0;
        assert!(o.validate().is_err());
    }
}
