//! The classical multiplicative V(1,1)-cycle (Algorithm 1, "Mult").

use crate::additive::SolveResult;
use crate::setup::{CoarseSolve, MgSetup};
use crate::workspace::Workspace;
use asyncmg_sparse::vecops;
use asyncmg_telemetry::Probe;
use std::time::Instant;

/// One multiplicative V(1,1)-cycle: updates `x` in place given the current
/// fine-grid residual in `scratch.r[0]`. Allocation-free: every vector it
/// touches lives in the pre-sized [`Workspace`].
pub fn mult_vcycle(setup: &MgSetup, x: &mut [f64], scratch: &mut Workspace) {
    subcycle(setup, 0, scratch);
    vecops::axpy(1.0, &scratch.e[0], x);
}

/// The coarse-grid half of a multiplicative cycle, for callers that own the
/// fine level themselves (the sharded hub): restricts the fine-grid
/// residual `r_fine`, runs the V-cycle over levels `1..`, and prolongates
/// the level-1 correction into `c_fine` (overwritten). Returns `false`
/// without touching `c_fine` when the hierarchy has no coarse level.
pub fn coarse_correction(
    setup: &MgSetup,
    r_fine: &[f64],
    c_fine: &mut [f64],
    scratch: &mut Workspace,
) -> bool {
    if setup.n_levels() < 2 {
        return false;
    }
    setup.r(0).spmv(r_fine, &mut scratch.r[1]);
    subcycle(setup, 1, scratch);
    setup.p(0).spmv(&scratch.e[1], c_fine);
    true
}

/// The V-cycle over levels `top..`: consumes the residual in
/// `scratch.r[top]` and leaves the correction in `scratch.e[top]`.
/// `mult_vcycle` is `subcycle(0)` plus the fine-grid update.
fn subcycle(setup: &MgSetup, top: usize, scratch: &mut Workspace) {
    let ell = setup.n_levels() - 1;
    // Downward sweep: pre-smooth and restrict.
    for k in top..ell {
        let (r_head, r_tail) = scratch.r.split_at_mut(k + 1);
        let rk = &r_head[k];
        let ek = &mut scratch.e[k];
        let buf = &mut scratch.buf[k];
        // Pre-smoothing from zero initial guess: e_k = M_k⁻¹ r_k
        // (plus any extra sweeps for a V(s₁,s₂)-cycle).
        setup.smoothers[k].apply_zero_op(setup.op(k), rk, ek);
        for _ in 1..setup.opts.n_pre {
            setup.smoothers[k].relax_op(setup.op(k), rk, ek, buf);
        }
        // r_{k+1} = Rᵀ (r_k − A_k e_k).
        setup.op(k).spmv(ek, buf);
        for i in 0..buf.len() {
            buf[i] = rk[i] - buf[i];
        }
        setup.r(k).spmv(buf, &mut r_tail[0]);
    }
    // Coarsest solve: e_ℓ = A_ℓ⁻¹ r_ℓ.
    match (setup.opts.coarse, &setup.hierarchy.coarse_lu) {
        (CoarseSolve::Exact, Some(lu)) => lu.solve(&scratch.r[ell], &mut scratch.e[ell]),
        _ => {
            let sweeps = match setup.opts.coarse {
                CoarseSolve::Smooth { sweeps } => sweeps,
                CoarseSolve::Exact => 2,
            };
            setup.smoothers[ell].apply_zero_op(setup.op(ell), &scratch.r[ell], &mut scratch.e[ell]);
            for _ in 1..sweeps {
                let (r, e, buf) = (&scratch.r[ell], &mut scratch.e[ell], &mut scratch.buf[ell]);
                setup.smoothers[ell].relax_op(setup.op(ell), r, e, buf);
            }
        }
    }
    // Upward sweep: prolongate and post-smooth.
    for k in (top..ell).rev() {
        let (e_head, e_tail) = scratch.e.split_at_mut(k + 1);
        let ek = &mut e_head[k];
        setup.p(k).spmv(&e_tail[0], &mut scratch.buf[k]);
        for i in 0..ek.len() {
            ek[i] += scratch.buf[k][i];
        }
        // Post-smoothing: e_k ← e_k + M_k⁻¹ (r_k − A_k e_k).
        for _ in 0..setup.opts.n_post.max(1) {
            setup.smoothers[k].relax_op(setup.op(k), &scratch.r[k], ek, &mut scratch.buf[k]);
        }
    }
}

/// Runs up to `t_max` multiplicative V(1,1)-cycles from `x = 0`, recording
/// the relative residual after each cycle,
/// with tolerance-based early stopping and telemetry: each
/// cycle reports one correction event (the whole V-cycle, attributed to
/// grid 0) and one residual sample to `probe`, and the run ends as soon as
/// the relative residual drops below `tol` (when given).
pub fn solve_mult_probed<P: Probe + ?Sized>(
    setup: &MgSetup,
    b: &[f64],
    t_max: usize,
    tol: Option<f64>,
    probe: &P,
) -> SolveResult {
    let n = setup.n();
    let nb = vecops::norm2(b);
    let mut x = vec![0.0; n];
    // All per-cycle temporaries are pre-sized here; the loop below performs
    // no heap allocation.
    let mut scratch = Workspace::new(setup);
    let mut history = Vec::with_capacity(t_max);
    let epoch = Instant::now();
    for cycle in 0..t_max {
        setup.op(0).residual(b, &x, &mut scratch.r[0]);
        mult_vcycle(setup, &mut x, &mut scratch);
        setup.op(0).residual(b, &x, &mut scratch.res);
        let rel =
            if nb > 0.0 { vecops::norm2(&scratch.res) / nb } else { vecops::norm2(&scratch.res) };
        history.push(rel);
        if probe.enabled() {
            let t_ns = epoch.elapsed().as_nanos() as u64;
            probe.correction(0, 0, cycle, t_ns, rel);
            probe.residual_sample(t_ns, rel);
        }
        if tol.is_some_and(|t| rel < t) {
            break;
        }
    }
    SolveResult { x, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use crate::solver::{Method, SolveReport, Solver};
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_27pt, stencil::laplacian_7pt};
    use asyncmg_smoothers::SmootherKind;

    fn setup_n(n: usize, opts: MgOptions) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, opts)
    }

    fn run_mult(s: &MgSetup, b: &[f64], t_max: usize) -> SolveReport {
        Solver::new(s).method(Method::Mult).threads(0).t_max(t_max).run(b)
    }

    #[test]
    fn mult_converges_fast() {
        let s = setup_n(8, MgOptions::default());
        let b = random_rhs(s.n(), 11);
        let res = run_mult(&s, &b, 20);
        // Table I: sync Mult with ω-Jacobi needs ~75 cycles for 1e-9, i.e. a
        // convergence factor around 0.76; our hierarchy does a bit better.
        assert!(res.relres < 1e-4, "relres {}", res.relres);
        let res40 = run_mult(&s, &b, 40);
        assert!(res40.relres < 1e-9, "relres {}", res40.relres);
    }

    #[test]
    fn mult_converges_for_all_smoothers() {
        for kind in [
            SmootherKind::WJacobi { omega: 0.9 },
            SmootherKind::L1Jacobi,
            SmootherKind::HybridJgs,
            SmootherKind::AsyncGs,
        ] {
            let s = setup_n(6, MgOptions { smoother: kind, ..Default::default() });
            let b = random_rhs(s.n(), 2);
            let res = run_mult(&s, &b, 25);
            assert!(res.relres < 1e-7, "{}: {}", kind.name(), res.relres);
        }
    }

    #[test]
    fn grid_size_independent_convergence() {
        // The multigrid hallmark: residual reduction per cycle roughly flat
        // across problem sizes.
        let mut factors = Vec::new();
        for n in [6usize, 8, 10] {
            let s = setup_n(n, MgOptions::default());
            let b = random_rhs(s.n(), 7);
            let res = run_mult(&s, &b, 10);
            let f = (res.history[9] / res.history[4]).powf(1.0 / 5.0);
            factors.push(f);
        }
        for f in &factors {
            assert!(*f < 0.6, "convergence factor {f} too large: {factors:?}");
        }
        let spread = factors.iter().cloned().fold(0.0f64, f64::max)
            - factors.iter().cloned().fold(1.0f64, f64::min);
        assert!(spread < 0.3, "factors vary too much: {factors:?}");
    }

    #[test]
    fn mult_27pt_converges() {
        let a = laplacian_27pt(8, 8, 8);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s = MgSetup::new(h, MgOptions::default());
        let b = random_rhs(s.n(), 13);
        let res = run_mult(&s, &b, 20);
        assert!(res.relres < 1e-7, "relres {}", res.relres);
    }

    #[test]
    fn blocked_kernel_solve_is_bit_identical_to_csr() {
        // The whole point of the kernel layer: switching Csr ↔ Bsr must not
        // change a single bit of the solve.
        use asyncmg_problems::elasticity::elasticity_beam;
        use asyncmg_sparse::KernelSelect;
        let a = elasticity_beam(4, 2, 2, [4.0, 1.0, 1.0], Default::default());
        let b = random_rhs(a.nrows(), 5);
        let mut runs = Vec::new();
        for kernel in [KernelSelect::Csr, KernelSelect::Bsr] {
            let aopts = AmgOptions { num_functions: 3, kernel, ..AmgOptions::default() };
            let h = build_hierarchy(a.clone(), &aopts);
            // Elasticity needs the paper's damped settings (ω = 0.5 territory);
            // ℓ1-Jacobi gives guaranteed monotone decay on SPD systems.
            let mopts = MgOptions {
                smoother: SmootherKind::L1Jacobi,
                interp_omega: 0.5,
                ..Default::default()
            };
            let s = MgSetup::new(h, mopts);
            if kernel == KernelSelect::Bsr {
                assert_eq!(s.op(0).label(), "bsr", "fine elasticity level should be blocked");
            }
            runs.push(run_mult(&s, &b, 8));
        }
        // Scalar AMG on elasticity converges slowly (~0.94/cycle, see
        // bench/table1); just confirm the blocked run makes real progress.
        assert!(runs[1].relres.is_finite() && runs[1].relres < 0.9, "relres {}", runs[1].relres);
        for (u, v) in runs[0].x.iter().zip(&runs[1].x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(runs[0].history, runs[1].history);
    }

    #[test]
    fn zero_rhs_stays_zero() {
        let s = setup_n(5, MgOptions::default());
        let b = vec![0.0; s.n()];
        let res = run_mult(&s, &b, 3);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn v22_cycle_converges_faster_than_v11() {
        let a = laplacian_7pt(7, 7, 7);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s11 = MgSetup::new(h.clone(), MgOptions::default());
        let s22 = MgSetup::new(h, MgOptions { n_pre: 2, n_post: 2, ..Default::default() });
        let b = random_rhs(s11.n(), 21);
        let r11 = run_mult(&s11, &b, 10);
        let r22 = run_mult(&s22, &b, 10);
        assert!(r22.relres < r11.relres, "V(2,2) {} should beat V(1,1) {}", r22.relres, r11.relres);
    }
}
