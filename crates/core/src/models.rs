//! Sequential simulation of the asynchronous multigrid models
//! (Section III, Equations 6, 7 and 10).
//!
//! Grid `k` has an update probability `p_k` drawn once from `U[α, 1]`; at
//! each time instant every still-active grid updates with its probability,
//! reading solution (or residual) components from a bounded-delay history.
//! The delay sampling follows the paper with the `min` → `max` correction
//! discussed in DESIGN.md: `z ∈ (max(z_k(τ_k), t − δ), t]`, so reads never
//! go backwards and never exceed the maximum delay δ.

use crate::additive::{grid_correction, AdditiveMethod};
use crate::setup::MgSetup;
use crate::workspace::Workspace;
use asyncmg_sparse::vecops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which asynchronous model to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Equation 6: whole-vector reads from a single past instant.
    SemiAsync,
    /// Equation 7: per-component reads of the solution vector.
    FullAsyncSolution,
    /// Equation 10: per-component reads of the residual vector.
    FullAsyncResidual,
}

/// Simulation parameters.
///
/// Marked `#[non_exhaustive]`: construct with [`ModelOptions::default`] and
/// assign the fields you need.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct ModelOptions {
    /// The model to simulate.
    pub model: ModelKind,
    /// Minimum update probability α (`p_k ~ U[α, 1]`).
    pub alpha: f64,
    /// Maximum read delay δ.
    pub delta: usize,
    /// Updates per grid before it stops (the paper uses 20).
    pub updates_per_grid: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            model: ModelKind::SemiAsync,
            alpha: 0.5,
            delta: 0,
            updates_per_grid: 20,
            seed: 1,
        }
    }
}

impl ModelOptions {
    /// Validates field ranges, returning a description of the first
    /// violation. [`simulate`] panics on the same conditions.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha {} out of (0, 1]", self.alpha));
        }
        if self.updates_per_grid == 0 {
            return Err("updates_per_grid must be positive".into());
        }
        Ok(())
    }
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct ModelResult {
    /// Final approximation.
    pub x: Vec<f64>,
    /// Final relative residual 2-norm.
    pub final_relres: f64,
    /// Number of time instants simulated.
    pub instants: usize,
    /// Updates performed by each grid.
    pub grid_updates: Vec<usize>,
}

/// A ring buffer of the last `δ + 1` vector snapshots.
struct History {
    snaps: Vec<Vec<f64>>,
    newest: usize, // time instant of snaps[newest % len]
}

impl History {
    fn new(initial: Vec<f64>, delta: usize) -> Self {
        let len = delta + 1;
        let snaps = vec![initial; len];
        History { snaps, newest: 0 }
    }

    fn at(&self, t: usize) -> &[f64] {
        debug_assert!(t <= self.newest && t + self.snaps.len() > self.newest);
        &self.snaps[t % self.snaps.len()]
    }

    fn push(&mut self, t: usize, v: &[f64]) {
        debug_assert_eq!(t, self.newest + 1);
        let len = self.snaps.len();
        self.snaps[t % len].copy_from_slice(v);
        self.newest = t;
    }
}

/// Simulates the chosen asynchronous model of the additive method `method`
/// on `A x = b` (from `x = 0`).
///
/// # Reproducibility
///
/// The simulation is fully deterministic: all randomness (per-grid update
/// probabilities and delay draws) comes from a [`StdRng`] seeded with
/// `opts.seed`, and the update sweep is sequential. Calling `simulate`
/// twice with the same `setup`, `method`, `b`, and `ModelOptions` returns a
/// bit-identical [`ModelResult`] — every element of `x`, `final_relres`,
/// `instants`, and `grid_updates` — on any machine with IEEE-754 `f64`
/// arithmetic. Tests may therefore assert exact equality on replays;
/// [`simulate_mean`] inherits the guarantee run by run.
pub fn simulate(
    setup: &MgSetup,
    method: AdditiveMethod,
    b: &[f64],
    opts: &ModelOptions,
) -> ModelResult {
    if let Err(msg) = opts.validate() {
        panic!("invalid ModelOptions: {msg}");
    }
    let n = setup.n();
    let ngrids = setup.n_levels();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let p: Vec<f64> = (0..ngrids).map(|_| rng.gen_range(opts.alpha..=1.0)).collect();

    let residual_based = opts.model == ModelKind::FullAsyncResidual;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // current residual (residual-based model)
    let mut history = if residual_based {
        History::new(r.clone(), opts.delta)
    } else {
        History::new(x.clone(), opts.delta)
    };

    // Last-read instants: per grid (semi) or per grid per component (full).
    let mut last_whole = vec![0usize; ngrids];
    let mut last_comp: Vec<Vec<u32>> = match opts.model {
        ModelKind::SemiAsync => Vec::new(),
        _ => vec![vec![0u32; n]; ngrids],
    };

    let mut scratch = Workspace::new(setup);
    let mut corr = vec![0.0; n];
    let mut sum = vec![0.0; n];
    let mut read = vec![0.0; n];
    let mut rbuf = vec![0.0; n];
    let mut updates = vec![0usize; ngrids];

    let nb = vecops::norm2(b);
    let cap = opts.updates_per_grid * 200 / (opts.alpha.min(1.0) as usize + 1).max(1)
        + opts.updates_per_grid * 1000;
    let mut t = 0usize;
    while updates.iter().any(|&u| u < opts.updates_per_grid) && t < cap {
        vecops::zero_rows(0..n, &mut sum);
        let mut any = false;
        for k in 0..ngrids {
            if updates[k] >= opts.updates_per_grid || !rng.gen_bool(p[k]) {
                continue;
            }
            any = true;
            // Assemble the vector this grid reads.
            match opts.model {
                ModelKind::SemiAsync => {
                    let lo = last_whole[k].max(t.saturating_sub(opts.delta));
                    let z = if lo >= t { t } else { rng.gen_range(lo + 1..=t) };
                    last_whole[k] = z;
                    read.copy_from_slice(history.at(z));
                }
                ModelKind::FullAsyncSolution | ModelKind::FullAsyncResidual => {
                    let lc = &mut last_comp[k];
                    for i in 0..n {
                        let lo = (lc[i] as usize).max(t.saturating_sub(opts.delta));
                        let z = if lo >= t { t } else { rng.gen_range(lo + 1..=t) };
                        lc[i] = z as u32;
                        read[i] = history.at(z)[i];
                    }
                }
            }
            if residual_based {
                // C_k applied directly to the (mixed-instant) residual.
                grid_correction(setup, method, k, &read, &mut corr, &mut scratch);
            } else {
                // B_k(x) = correction from the residual b − A x_read.
                setup.op(0).residual(b, &read, &mut rbuf);
                grid_correction(setup, method, k, &rbuf, &mut corr, &mut scratch);
            }
            vecops::axpy(1.0, &corr, &mut sum);
            updates[k] += 1;
        }
        // Advance one time instant.
        t += 1;
        if residual_based {
            // r ← r − A Σ corrections; x tracks the accumulated corrections.
            setup.op(0).spmv(&sum, &mut rbuf);
            for i in 0..n {
                r[i] -= rbuf[i];
                x[i] += sum[i];
            }
            history.push(t, &r);
        } else {
            vecops::axpy(1.0, &sum, &mut x);
            history.push(t, &x);
        }
        let _ = any;
    }

    let final_relres = if residual_based {
        if nb > 0.0 {
            vecops::norm2(&r) / nb
        } else {
            vecops::norm2(&r)
        }
    } else {
        setup.op(0).residual(b, &x, &mut rbuf);
        if nb > 0.0 {
            vecops::norm2(&rbuf) / nb
        } else {
            vecops::norm2(&rbuf)
        }
    };
    ModelResult { x, final_relres, instants: t, grid_updates: updates }
}

/// Mean final relative residual over `runs` seeded simulations (the paper
/// reports means of 20 runs).
pub fn simulate_mean(
    setup: &MgSetup,
    method: AdditiveMethod,
    b: &[f64],
    opts: &ModelOptions,
    runs: usize,
) -> f64 {
    let mut acc = 0.0;
    for run in 0..runs {
        let o = ModelOptions { seed: opts.seed.wrapping_add(run as u64 * 7919), ..*opts };
        acc += simulate(setup, method, b, &o).final_relres;
    }
    acc / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::MgOptions;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};

    fn setup_n(n: usize) -> MgSetup {
        let a = laplacian_7pt(n, n, n);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    #[test]
    fn alpha_one_delta_zero_matches_synchronous_additive() {
        // With p_k ≡ 1 and δ = 0, the semi-async model *is* the synchronous
        // additive method.
        let s = setup_n(6);
        let b = random_rhs(s.n(), 3);
        let opts =
            ModelOptions { alpha: 1.0, delta: 0, updates_per_grid: 10, ..Default::default() };
        let sim = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        let sync = crate::additive::solve_additive_probed(
            &s,
            AdditiveMethod::Multadd,
            &b,
            10,
            None,
            &asyncmg_telemetry::NoopProbe,
        );
        assert_eq!(sim.instants, 10);
        assert!(
            (sim.final_relres - sync.final_relres()).abs() < 1e-10 * sync.final_relres().max(1e-30),
            "sim {} vs sync {}",
            sim.final_relres,
            sync.final_relres()
        );
    }

    #[test]
    fn semi_async_converges_with_small_alpha() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 5);
        let opts =
            ModelOptions { alpha: 0.1, delta: 0, updates_per_grid: 20, ..Default::default() };
        let sim = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        assert!(sim.final_relres < 1e-3, "relres {}", sim.final_relres);
        assert!(sim.grid_updates.iter().all(|&u| u == 20));
        assert!(sim.instants >= 20);
    }

    #[test]
    fn full_async_solution_converges_with_delay() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 5);
        let opts = ModelOptions {
            model: ModelKind::FullAsyncSolution,
            alpha: 0.3,
            delta: 4,
            updates_per_grid: 20,
            ..Default::default()
        };
        let sim = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        assert!(sim.final_relres < 1e-2, "relres {}", sim.final_relres);
    }

    #[test]
    fn full_async_residual_converges_with_delay() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 5);
        let opts = ModelOptions {
            model: ModelKind::FullAsyncResidual,
            alpha: 0.3,
            delta: 4,
            updates_per_grid: 20,
            ..Default::default()
        };
        let sim = simulate(&s, AdditiveMethod::Afacx, &b, &opts);
        assert!(sim.final_relres < 1e-1, "relres {}", sim.final_relres);
    }

    #[test]
    fn residual_based_x_is_consistent_with_r_when_delta_zero_alpha_one() {
        // With no asynchrony the tracked x must satisfy r = b − A x.
        let s = setup_n(5);
        let b = random_rhs(s.n(), 9);
        let opts = ModelOptions {
            model: ModelKind::FullAsyncResidual,
            alpha: 1.0,
            delta: 0,
            updates_per_grid: 8,
            ..Default::default()
        };
        let sim = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        let mut r = vec![0.0; s.n()];
        s.a(0).residual(&b, &sim.x, &mut r);
        let diff = vecops::norm2(&r) / vecops::norm2(&b);
        assert!(
            (diff - sim.final_relres).abs() < 1e-9,
            "tracked {} vs recomputed {}",
            sim.final_relres,
            diff
        );
    }

    #[test]
    fn smaller_alpha_converges_slower() {
        let s = setup_n(6);
        let b = random_rhs(s.n(), 4);
        let hi = ModelOptions { alpha: 0.9, updates_per_grid: 15, ..Default::default() };
        let lo = ModelOptions { alpha: 0.1, updates_per_grid: 15, ..Default::default() };
        let r_hi = simulate_mean(&s, AdditiveMethod::Multadd, &b, &hi, 5);
        let r_lo = simulate_mean(&s, AdditiveMethod::Multadd, &b, &lo, 5);
        assert!(r_lo > r_hi, "alpha .1 ({r_lo}) should be worse than .9 ({r_hi})");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = setup_n(5);
        let b = random_rhs(s.n(), 1);
        let opts =
            ModelOptions { alpha: 0.4, delta: 2, updates_per_grid: 10, ..Default::default() };
        let a = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        let c = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        assert_eq!(a.final_relres, c.final_relres);
        assert_eq!(a.instants, c.instants);
    }

    #[test]
    fn zero_delay_collapses_all_models_to_same_trajectory() {
        // With δ = 0 every read is the current vector and no delay samples
        // are drawn, so for a fixed seed the three models follow the exact
        // same trajectory.
        let s = setup_n(5);
        let b = random_rhs(s.n(), 12);
        let mk =
            |model| ModelOptions { model, alpha: 0.6, delta: 0, updates_per_grid: 12, seed: 31 };
        let semi = simulate(&s, AdditiveMethod::Multadd, &b, &mk(ModelKind::SemiAsync));
        let full = simulate(&s, AdditiveMethod::Multadd, &b, &mk(ModelKind::FullAsyncSolution));
        assert_eq!(semi.instants, full.instants);
        assert!(
            (semi.final_relres - full.final_relres).abs() < 1e-12 * semi.final_relres.max(1e-30)
        );
        for (a, c) in semi.x.iter().zip(&full.x) {
            assert!((a - c).abs() < 1e-14 * a.abs().max(1e-30));
        }
    }

    #[test]
    fn grids_stop_after_exactly_the_requested_updates() {
        let s = setup_n(5);
        let b = random_rhs(s.n(), 13);
        let opts = ModelOptions { alpha: 0.3, updates_per_grid: 7, ..Default::default() };
        let sim = simulate(&s, AdditiveMethod::Afacx, &b, &opts);
        assert!(sim.grid_updates.iter().all(|&u| u == 7), "{:?}", sim.grid_updates);
        // With α < 1 some instants must have skipped grids.
        assert!(sim.instants > 7);
    }

    #[test]
    fn bpx_model_overcorrects_too() {
        // The over-correction of BPX survives in the asynchronous model.
        let s = setup_n(5);
        let b = random_rhs(s.n(), 14);
        let opts = ModelOptions { alpha: 0.9, updates_per_grid: 12, ..Default::default() };
        let bpx = simulate(&s, AdditiveMethod::Bpx, &b, &opts);
        let ma = simulate(&s, AdditiveMethod::Multadd, &b, &opts);
        assert!(bpx.final_relres > 10.0 * ma.final_relres);
    }
}
