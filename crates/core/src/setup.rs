//! Solver setup: hierarchy + smoothed interpolants + per-level smoothers.

use asyncmg_amg::{smoothed_interpolants, Hierarchy, InterpSmoothing};
use asyncmg_smoothers::{LevelSmoother, SmootherKind};
use asyncmg_sparse::{Csr, Kernel};

/// How the coarsest-grid equations `A_ℓ e = r_ℓ` are solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoarseSolve {
    /// Dense LU (`A_ℓ⁻¹`, as in Algorithm 1 and Multadd's `Λ_ℓ`).
    Exact,
    /// Smoothing sweeps only (as in AFACx, Algorithm 2).
    Smooth {
        /// Number of sweeps.
        sweeps: usize,
    },
}

/// Options shared by every solver in this crate.
///
/// Marked `#[non_exhaustive]`: construct with [`MgOptions::default`] and
/// assign the fields you need.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct MgOptions {
    /// The smoother used on every non-coarsest level.
    pub smoother: SmootherKind,
    /// Jacobi weight used to *build the smoothed interpolants* `P̄`.
    /// The paper uses the ℓ1-Jacobi iteration matrix when the smoother is
    /// ℓ1-Jacobi and the ω-Jacobi iteration matrix otherwise ("to keep the
    /// smoothed interpolants sparse").
    pub interp_omega: f64,
    /// Number of modelled thread blocks for the block-GS smoothers in
    /// *sequential* executions (threaded executions override this with the
    /// actual team size).
    pub nblocks: usize,
    /// Coarsest-grid treatment for Mult/Multadd/BPX.
    pub coarse: CoarseSolve,
    /// Coarsest-grid treatment for AFACx (Algorithm 2 smooths).
    pub afacx_coarse: CoarseSolve,
    /// AFACx inner sweeps `s₁` (fine part of the V(s₁/s₂,0)-cycle).
    pub afacx_s1: usize,
    /// AFACx inner sweeps `s₂` (coarse part).
    pub afacx_s2: usize,
    /// Pre-smoothing sweeps of the multiplicative cycle (the paper uses
    /// V(1,1)).
    pub n_pre: usize,
    /// Post-smoothing sweeps of the multiplicative cycle.
    pub n_post: usize,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            smoother: SmootherKind::WJacobi { omega: 0.9 },
            interp_omega: 0.9,
            nblocks: 4,
            coarse: CoarseSolve::Exact,
            afacx_coarse: CoarseSolve::Smooth { sweeps: 1 },
            afacx_s1: 1,
            afacx_s2: 1,
            n_pre: 1,
            n_post: 1,
        }
    }
}

/// Everything precomputed before solving: the hierarchy, smoothed
/// interpolants, and per-level smoothers.
pub struct MgSetup {
    /// The AMG hierarchy (operators, interpolants, coarse LU).
    pub hierarchy: Hierarchy,
    /// Smoothed interpolants `(P̄_k, R̄_k = P̄_kᵀ)` for `k = 0..ℓ−1`.
    pub p_bar: Vec<(Csr, Csr)>,
    /// One smoother per level.
    pub smoothers: Vec<LevelSmoother>,
    /// The options this setup was built with.
    pub opts: MgOptions,
}

impl MgSetup {
    /// Builds the setup from a hierarchy.
    pub fn new(hierarchy: Hierarchy, opts: MgOptions) -> Self {
        let interp_kind = match opts.smoother {
            SmootherKind::L1Jacobi => InterpSmoothing::L1Jacobi,
            _ => InterpSmoothing::WJacobi { omega: opts.interp_omega },
        };
        let p_bar = smoothed_interpolants(&hierarchy, interp_kind);
        // The hierarchy caches each level's diagonal; building smoothers
        // from it avoids re-searching every matrix row.
        let smoothers = hierarchy
            .levels
            .iter()
            .map(|l| LevelSmoother::with_diag(&l.a, &l.diag, opts.smoother, opts.nblocks))
            .collect();
        MgSetup { hierarchy, p_bar, smoothers, opts }
    }

    /// Rebuilds the per-level smoothers with a different block count (used
    /// by the threaded solvers, where the block count is the team size).
    pub fn with_nblocks(&self, nblocks: usize) -> Vec<LevelSmoother> {
        self.hierarchy
            .levels
            .iter()
            .map(|l| LevelSmoother::with_diag(&l.a, &l.diag, self.opts.smoother, nblocks))
            .collect()
    }

    /// Number of levels (`ℓ + 1`).
    pub fn n_levels(&self) -> usize {
        self.hierarchy.n_levels()
    }

    /// Fine-grid size.
    pub fn n(&self) -> usize {
        self.hierarchy.levels[0].a.nrows()
    }

    /// The operator on level `k`.
    pub fn a(&self, k: usize) -> &Csr {
        &self.hierarchy.levels[k].a
    }

    /// The kernel handle for level `k`: blocked (BSR) when the hierarchy
    /// installed a block twin on that level, plain CSR otherwise. All kernel
    /// results are bit-identical across the two, so solvers may dispatch
    /// freely through this handle.
    pub fn op(&self, k: usize) -> Kernel<'_> {
        self.hierarchy.levels[k].op()
    }

    /// Plain prolongation `P_{k+1}^k`.
    pub fn p(&self, k: usize) -> &Csr {
        self.hierarchy.levels[k].p.as_ref().expect("no P on coarsest level")
    }

    /// Plain restriction `(P_{k+1}^k)ᵀ`.
    pub fn r(&self, k: usize) -> &Csr {
        self.hierarchy.levels[k].r.as_ref().expect("no R on coarsest level")
    }

    /// Smoothed prolongation `P̄_{k+1}^k`.
    pub fn p_bar(&self, k: usize) -> &Csr {
        &self.p_bar[k].0
    }

    /// Smoothed restriction `P̄ᵀ`.
    pub fn r_bar(&self, k: usize) -> &Csr {
        &self.p_bar[k].1
    }

    /// Estimated flops for one correction of grid `k` under the given
    /// additive method — the "work" of Section IV used to distribute
    /// threads over grids.
    pub fn grid_work(&self, k: usize, smoothed: bool) -> f64 {
        let ell = self.n_levels() - 1;
        let mut flops = 0.0;
        // Restriction down and prolongation up through levels 0..k.
        for j in 0..k {
            let nnz = if smoothed && j < self.p_bar.len() {
                self.p_bar[j].0.nnz()
            } else {
                self.hierarchy.levels[j].p.as_ref().map_or(0, |p| p.nnz())
            };
            flops += 4.0 * nnz as f64; // down + up, 2 flops per nnz
        }
        // Smoothing / solve at level k (+ level k+1 for AFACx-style work).
        flops += 2.0 * self.a(k).nnz() as f64;
        if k < ell {
            flops += 2.0 * self.a(k + 1).nnz() as f64;
        }
        flops.max(1.0)
    }

    /// Work estimates for all grids.
    pub fn work_estimates(&self, smoothed: bool) -> Vec<f64> {
        (0..self.n_levels()).map(|k| self.grid_work(k, smoothed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_amg::{build_hierarchy, AmgOptions};
    use asyncmg_problems::stencil::laplacian_7pt;

    fn setup() -> MgSetup {
        let a = laplacian_7pt(8, 8, 8);
        let h = build_hierarchy(a, &AmgOptions::default());
        MgSetup::new(h, MgOptions::default())
    }

    #[test]
    fn setup_has_consistent_shapes() {
        let s = setup();
        let ell = s.n_levels() - 1;
        assert_eq!(s.p_bar.len(), ell);
        assert_eq!(s.smoothers.len(), ell + 1);
        for k in 0..ell {
            assert_eq!(s.p(k).nrows(), s.a(k).nrows());
            assert_eq!(s.p(k).ncols(), s.a(k + 1).nrows());
            assert_eq!(s.p_bar(k).nrows(), s.p(k).nrows());
            assert_eq!(s.p_bar(k).ncols(), s.p(k).ncols());
        }
    }

    #[test]
    fn l1_smoother_switches_interp_weights() {
        let a = laplacian_7pt(6, 6, 6);
        let h = build_hierarchy(a, &AmgOptions::default());
        let s_j = MgSetup::new(
            h.clone(),
            MgOptions { smoother: SmootherKind::WJacobi { omega: 0.9 }, ..Default::default() },
        );
        let s_l1 =
            MgSetup::new(h, MgOptions { smoother: SmootherKind::L1Jacobi, ..Default::default() });
        assert!(s_j
            .p_bar(0)
            .vals()
            .iter()
            .zip(s_l1.p_bar(0).vals())
            .any(|(a, b)| (a - b).abs() > 1e-12));
    }

    #[test]
    fn work_estimates_are_positive_and_ordered_plain() {
        let s = setup();
        let w_smoothed = s.work_estimates(true);
        let w_plain = s.work_estimates(false);
        assert_eq!(w_smoothed.len(), s.n_levels());
        assert!(w_smoothed.iter().all(|&x| x >= 1.0));
        // Smoothed interpolants are denser, so per-grid work cannot shrink.
        for (ws, wp) in w_smoothed.iter().zip(&w_plain) {
            assert!(ws >= wp);
        }
        // With plain interpolants the finest grid carries the most work.
        assert!(w_plain[0] >= *w_plain.last().unwrap());
    }
}
