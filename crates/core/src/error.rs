//! The unified error surface of the workspace.
//!
//! Service callers touch every layer at once — matrix validation
//! ([`CsrError`]), hierarchy construction ([`BuildError`]), one-shot solves
//! ([`SolveError`]) and resilient sessions ([`SessionError`]) — so the crate
//! exports one top-level [`Error`] with `From` impls for each, all carrying
//! their source chains through [`std::error::Error::source`].

use crate::resilience::SessionError;
use crate::solver::SolveError;
use asyncmg_amg::BuildError;
use asyncmg_sparse::CsrError;

/// Any error the solver stack can produce, one layer per variant.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A one-shot solve was misconfigured or given invalid data.
    Solve(SolveError),
    /// A resilient session failed.
    Session(SessionError),
    /// AMG hierarchy construction rejected the matrix or options.
    Build(BuildError),
    /// The matrix itself is structurally or numerically invalid.
    Csr(CsrError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Solve(e) => write!(f, "solve failed: {e}"),
            Error::Session(e) => write!(f, "session failed: {e}"),
            Error::Build(e) => write!(f, "hierarchy build failed: {e}"),
            Error::Csr(e) => write!(f, "invalid matrix: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Solve(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Build(e) => Some(e),
            Error::Csr(e) => Some(e),
        }
    }
}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Self {
        Error::Solve(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<CsrError> for Error {
    fn from(e: CsrError) -> Self {
        Error::Csr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn from_impls_and_sources_chain() {
        let e: Error = SolveError::RhsLength { expected: 4, got: 3 }.into();
        assert!(matches!(e, Error::Solve(_)));
        assert!(e.source().is_some());

        let e: Error = SessionError::NoTolerance.into();
        assert!(matches!(e, Error::Session(_)));
        assert!(e.to_string().contains("session failed"));

        let e: Error = BuildError::EmptyMatrix.into();
        assert!(matches!(e, Error::Build(_)));

        let e: Error = CsrError::RowPtrNotMonotone { row: 2 }.into();
        assert!(matches!(e, Error::Csr(_)));
        assert!(e.source().unwrap().to_string().contains("row 2"));
    }

    #[test]
    fn nested_session_error_chains_to_solve_error() {
        let inner = SolveError::NonFiniteRhs { index: 7 };
        let e: Error = SessionError::from(inner).into();
        // Error -> SessionError -> SolveError.
        let s1 = e.source().unwrap();
        assert!(s1.source().is_some(), "session error must expose its solve cause");
    }
}
