//! Request/response types of the service API.
//!
//! A [`SolveRequest`] is a cheap *description* of one solve — the matrix (by
//! shared reference), the right-hand side, and the stopping policy. All the
//! heavy state (hierarchies, workspaces, the clock) lives inside the
//! service; a request owns nothing that is expensive to drop.

use std::sync::Arc;
use std::time::Duration;

use asyncmg_amg::{AmgOptions, BuildError};
use asyncmg_core::{MgOptions, SolveError};
use asyncmg_sparse::Csr;

/// Handle to a submitted request; redeem with
/// [`SolverService::status`](crate::SolverService::status) or
/// [`SolverService::take`](crate::SolverService::take).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// Stable numeric id (tickets are issued in submission order).
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One solve, described: matrix, right-hand side, stopping policy, and an
/// optional deadline for admission control.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The system matrix. `Arc` so many requests (and the service's cache
    /// key computation) share one copy.
    pub a: Arc<Csr>,
    /// Right-hand side (`len == a.nrows()`).
    pub b: Vec<f64>,
    /// Early-stopping tolerance on the relative residual (`None` runs the
    /// full cycle budget).
    pub tolerance: Option<f64>,
    /// Cycle budget (must be ≥ 1).
    pub t_max: usize,
    /// Service-clock budget: the request is rejected once
    /// `submit time + deadline` has passed without the solve starting, or
    /// when the service estimates the solve cannot finish in time.
    pub deadline: Option<Duration>,
}

impl SolveRequest {
    /// A request with the default stopping policy (no tolerance, 50 cycles)
    /// and no deadline.
    pub fn new(a: Arc<Csr>, b: Vec<f64>) -> Self {
        SolveRequest { a, b, tolerance: None, t_max: 50, deadline: None }
    }

    /// Sets the early-stopping tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = Some(tol);
        self
    }

    /// Sets the cycle budget.
    pub fn t_max(mut self, t_max: usize) -> Self {
        self.t_max = t_max;
        self
    }

    /// Sets the admission deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// The outcome of one completed solve.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveResponse {
    /// The solution.
    pub x: Vec<f64>,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relres: f64,
    /// Whether the tolerance was met (always `false` without one).
    pub converged: bool,
    /// V-cycles run before this request's column froze.
    pub cycles: usize,
    /// Relative residual after each cycle run.
    pub history: Vec<f64>,
    /// Whether the hierarchy came out of the cache (`false` means this
    /// dispatch paid for the AMG setup).
    pub cache_hit: bool,
    /// Number of right-hand sides coalesced into the dispatch that solved
    /// this request (1 means it ran alone).
    pub batch_size: usize,
}

/// Why a queued request was rejected at dispatch time.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The deadline passed before the request was dispatched.
    DeadlineExpired {
        /// Service-clock nanoseconds at which the deadline fell.
        deadline_ns: u64,
        /// Service-clock nanoseconds at the rejection.
        now_ns: u64,
    },
    /// The service's running cost estimate says the solve cannot finish
    /// before the deadline, so it is not worth starting.
    DeadlineInfeasible {
        /// Service-clock nanoseconds at which the deadline falls.
        deadline_ns: u64,
        /// Estimated solve cost in nanoseconds.
        estimated_ns: u64,
        /// Service-clock nanoseconds at the decision.
        now_ns: u64,
    },
    /// The AMG setup for the request's matrix failed.
    BuildFailed(BuildError),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::DeadlineExpired { deadline_ns, now_ns } => {
                write!(f, "deadline expired: due at {deadline_ns} ns, now {now_ns} ns")
            }
            Rejection::DeadlineInfeasible { deadline_ns, estimated_ns, now_ns } => write!(
                f,
                "deadline infeasible: due at {deadline_ns} ns, estimated {estimated_ns} ns \
                 from {now_ns} ns"
            ),
            Rejection::BuildFailed(e) => write!(f, "hierarchy build failed: {e}"),
        }
    }
}

impl std::error::Error for Rejection {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Rejection::BuildFailed(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a request was refused at submission time.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The queue is at capacity; try again after a `process_batch`.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request itself is malformed (wrong RHS length, non-finite RHS,
    /// zero cycle budget).
    Invalid(SolveError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} requests)")
            }
            SubmitError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SubmitError {
    fn from(e: SolveError) -> Self {
        SubmitError::Invalid(e)
    }
}

/// Where a submitted request currently stands.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestStatus {
    /// Still queued; a future `process_batch` will resolve it.
    Queued,
    /// Solved.
    Completed(SolveResponse),
    /// Rejected at dispatch.
    Rejected(Rejection),
}

/// Everything the blocking [`SolverService::solve`](crate::SolverService::solve)
/// convenience can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Refused at submission.
    Submit(SubmitError),
    /// Admitted but rejected at dispatch.
    Rejected(Rejection),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Submit(e) => write!(f, "submit failed: {e}"),
            ServiceError::Rejected(r) => write!(f, "request rejected: {r}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Submit(e) => Some(e),
            ServiceError::Rejected(r) => Some(r),
        }
    }
}

impl From<SubmitError> for ServiceError {
    fn from(e: SubmitError) -> Self {
        ServiceError::Submit(e)
    }
}

impl From<Rejection> for ServiceError {
    fn from(r: Rejection) -> Self {
        ServiceError::Rejected(r)
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Maximum number of cached hierarchies; the least recently used entry
    /// is evicted when a build would exceed it.
    pub cache_capacity: usize,
    /// Maximum number of queued requests; `submit` refuses beyond it.
    pub queue_capacity: usize,
    /// Maximum right-hand sides coalesced into one blocked dispatch.
    pub batch_window: usize,
    /// AMG setup options used for every cached hierarchy.
    pub amg: AmgOptions,
    /// Cycle options (smoother, coarse solve, sweep counts).
    pub mg: MgOptions,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 4,
            queue_capacity: 64,
            batch_window: 8,
            amg: AmgOptions::default(),
            mg: MgOptions::default(),
        }
    }
}
