//! Request/response types of the service API.
//!
//! A [`SolveRequest`] is a cheap *description* of one solve — the matrix (by
//! shared reference), the right-hand side, and the stopping policy. All the
//! heavy state (hierarchies, workspaces, the clock) lives inside the
//! service; a request owns nothing that is expensive to drop.

use std::sync::Arc;
use std::time::Duration;

use asyncmg_amg::{AmgOptions, BuildError};
use asyncmg_core::{MgOptions, SolveError};
use asyncmg_sparse::Csr;
use asyncmg_threads::FaultPlan;

use crate::chaos::ChaosPlan;

/// Handle to a submitted request; redeem with
/// [`SolverService::status`](crate::SolverService::status) or
/// [`SolverService::take`](crate::SolverService::take).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// Stable numeric id (tickets are issued in submission order).
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Overload-shedding priority of a request. Under pressure (queue depth
/// above [`ServiceOptions::shed_high_water`]) the service sheds the
/// lowest-priority, most-slack work first; priority never changes dispatch
/// order for admitted work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Shed only when nothing lower-priority is left.
    High,
}

impl Priority {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One solve, described: matrix, right-hand side, stopping policy, and an
/// optional deadline for admission control.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The system matrix. `Arc` so many requests (and the service's cache
    /// key computation) share one copy.
    pub a: Arc<Csr>,
    /// Right-hand side (`len == a.nrows()`).
    pub b: Vec<f64>,
    /// Early-stopping tolerance on the relative residual (`None` runs the
    /// full cycle budget).
    pub tolerance: Option<f64>,
    /// Cycle budget (must be ≥ 1).
    pub t_max: usize,
    /// Service-clock budget: the request is rejected once
    /// `submit time + deadline` has passed without the solve starting, or
    /// when the service estimates the solve cannot finish in time.
    pub deadline: Option<Duration>,
    /// Overload-shedding priority (see [`Priority`]).
    pub priority: Priority,
}

impl SolveRequest {
    /// A request with the default stopping policy (no tolerance, 50 cycles),
    /// no deadline, and normal priority.
    pub fn new(a: Arc<Csr>, b: Vec<f64>) -> Self {
        SolveRequest {
            a,
            b,
            tolerance: None,
            t_max: 50,
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Sets the early-stopping tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = Some(tol);
        self
    }

    /// Sets the cycle budget.
    pub fn t_max(mut self, t_max: usize) -> Self {
        self.t_max = t_max;
        self
    }

    /// Sets the admission deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the overload-shedding priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Why a completed solve stopped iterating.
///
/// This disambiguates the `tol: None` case that a bare `converged` flag
/// cannot express: a tolerance-free request that ran its full cycle budget
/// cleanly stops with [`Stopped::Budget`] and a finite
/// [`relres`](SolveResponse::relres) — that *is* its success condition,
/// even though `converged` (which means "the tolerance was met") stays
/// `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stopped {
    /// The relative residual met the request tolerance before the cycle
    /// budget ran out.
    Tolerance,
    /// The cycle budget ran to completion (the only way a `tol: None`
    /// request stops).
    Budget,
}

impl Stopped {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Stopped::Tolerance => "tolerance",
            Stopped::Budget => "budget",
        }
    }
}

/// The outcome of one completed solve.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveResponse {
    /// The solution.
    pub x: Vec<f64>,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relres: f64,
    /// Whether the tolerance was met (always `false` without one — see
    /// [`Stopped`] for the `tol: None` success condition).
    pub converged: bool,
    /// Why the solve stopped iterating ([`Stopped::Budget`] with a finite
    /// `relres` is the success condition for `tol: None` requests).
    pub stopped: Stopped,
    /// V-cycles run before this request's column froze.
    pub cycles: usize,
    /// Relative residual after each cycle run.
    pub history: Vec<f64>,
    /// Whether the hierarchy came out of the cache (`false` means this
    /// dispatch paid for the AMG setup).
    pub cache_hit: bool,
    /// Number of right-hand sides coalesced into the dispatch that solved
    /// this request (1 means it ran alone).
    pub batch_size: usize,
    /// Whether this answer came from a solo rescue down the degradation
    /// ladder after the request's batch column failed (defended services
    /// only; always `false` without [`ServiceOptions::resilience`]).
    pub rescued: bool,
}

/// Why a queued request was rejected at dispatch time.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The deadline passed before the request was dispatched.
    DeadlineExpired {
        /// Service-clock nanoseconds at which the deadline fell.
        deadline_ns: u64,
        /// Service-clock nanoseconds at the rejection.
        now_ns: u64,
    },
    /// The service's running cost estimate says the solve cannot finish
    /// before the deadline, so it is not worth starting.
    DeadlineInfeasible {
        /// Service-clock nanoseconds at which the deadline falls.
        deadline_ns: u64,
        /// Estimated solve cost in nanoseconds.
        estimated_ns: u64,
        /// Service-clock nanoseconds at the decision.
        now_ns: u64,
    },
    /// The AMG setup for the request's matrix failed.
    BuildFailed(BuildError),
    /// The matrix's circuit breaker is open after repeated failures: the
    /// request failed fast instead of queueing behind a sick fingerprint.
    CircuitOpen {
        /// Content fingerprint whose breaker is open.
        fingerprint: u64,
        /// Nanoseconds until a half-open probe will be allowed — the
        /// retry-after hint.
        retry_after_ns: u64,
    },
    /// The request was shed at the overload high-water mark (lowest
    /// priority, most slack goes first).
    Shed {
        /// Queue depth after the shed.
        queue_depth: usize,
    },
    /// The solve failed numerically and the rescue ladder was exhausted
    /// without reaching the request's goal.
    SolveFailed {
        /// Best relative residual the rescue session reached.
        relres: f64,
        /// Rescue-session attempts that were made.
        attempts: u32,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::DeadlineExpired { deadline_ns, now_ns } => {
                write!(f, "deadline expired: due at {deadline_ns} ns, now {now_ns} ns")
            }
            Rejection::DeadlineInfeasible { deadline_ns, estimated_ns, now_ns } => write!(
                f,
                "deadline infeasible: due at {deadline_ns} ns, estimated {estimated_ns} ns \
                 from {now_ns} ns"
            ),
            Rejection::BuildFailed(e) => write!(f, "hierarchy build failed: {e}"),
            Rejection::CircuitOpen { fingerprint, retry_after_ns } => write!(
                f,
                "circuit open for matrix {fingerprint:#x}: retry after {retry_after_ns} ns"
            ),
            Rejection::Shed { queue_depth } => {
                write!(f, "shed under overload (queue depth {queue_depth})")
            }
            Rejection::SolveFailed { relres, attempts } => {
                write!(f, "solve failed after {attempts} rescue attempts (best relres {relres:e})")
            }
        }
    }
}

impl std::error::Error for Rejection {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Rejection::BuildFailed(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a request was refused at submission time.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The queue is at capacity; try again after a `process_batch`.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request itself is malformed (wrong RHS length, non-finite RHS,
    /// zero cycle budget).
    Invalid(SolveError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} requests)")
            }
            SubmitError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SubmitError {
    fn from(e: SolveError) -> Self {
        SubmitError::Invalid(e)
    }
}

/// The resolved outcome of a request.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestStatus {
    /// Solved.
    Completed(SolveResponse),
    /// Rejected at dispatch.
    Rejected(Rejection),
}

/// Where a ticket stands, with every case distinguishable: an unknown
/// ticket is not the same thing as one whose outcome was already claimed.
#[derive(Clone, Debug, PartialEq)]
pub enum TicketState {
    /// Queued or currently dispatching; a future
    /// [`process_batch`](crate::SolverService::process_batch) resolves it.
    Queued,
    /// Resolved; the outcome is ready to
    /// [`take`](crate::SolverService::take).
    Ready(RequestStatus),
    /// Resolved and its outcome already taken — or evicted unclaimed when
    /// the resolved store hit [`ServiceOptions::resolved_capacity`].
    Claimed,
    /// Never issued by this service.
    Unknown,
}

/// Everything the blocking [`SolverService::solve`](crate::SolverService::solve)
/// convenience can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Refused at submission.
    Submit(SubmitError),
    /// Admitted but rejected at dispatch.
    Rejected(Rejection),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Submit(e) => write!(f, "submit failed: {e}"),
            ServiceError::Rejected(r) => write!(f, "request rejected: {r}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Submit(e) => Some(e),
            ServiceError::Rejected(r) => Some(r),
        }
    }
}

impl From<SubmitError> for ServiceError {
    fn from(e: SubmitError) -> Self {
        ServiceError::Submit(e)
    }
}

impl From<Rejection> for ServiceError {
    fn from(r: Rejection) -> Self {
        ServiceError::Rejected(r)
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Maximum number of cached hierarchies; the least recently used entry
    /// is evicted when a build would exceed it.
    pub cache_capacity: usize,
    /// Maximum number of queued requests; `submit` refuses beyond it.
    pub queue_capacity: usize,
    /// Maximum right-hand sides coalesced into one blocked dispatch.
    pub batch_window: usize,
    /// Maximum resolved-but-unclaimed outcomes retained; beyond it the
    /// oldest (lowest ticket id) is evicted deterministically and its
    /// ticket reads [`TicketState::Claimed`] thereafter.
    pub resolved_capacity: usize,
    /// Queue depth above which `submit` sheds the lowest-priority,
    /// most-slack queued request as [`Rejection::Shed`] (the shed ticket
    /// still resolves — never silently dropped). `None` never sheds; the
    /// queue simply hard-fills to `queue_capacity`.
    pub shed_high_water: Option<usize>,
    /// The fault-tolerant plane: circuit breakers, cache integrity
    /// checks, and solo rescue of sick batch columns down the degradation
    /// ladder. `None` (the default) leaves the service undefended with
    /// behaviour bit-identical to the classic dispatch path.
    pub resilience: Option<ResilienceOptions>,
    /// AMG setup options used for every cached hierarchy.
    pub amg: AmgOptions,
    /// Cycle options (smoother, coarse solve, sweep counts).
    pub mg: MgOptions,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 4,
            queue_capacity: 64,
            batch_window: 8,
            resolved_capacity: 1024,
            shed_high_water: None,
            resilience: None,
            amg: AmgOptions::default(),
            mg: MgOptions::default(),
        }
    }
}

/// Configuration of the fault-tolerant service plane
/// ([`ServiceOptions::resilience`]).
#[derive(Clone, Debug)]
pub struct ResilienceOptions {
    /// Consecutive failed dispatches of one fingerprint (build failure,
    /// hierarchy quarantine, or sick batch columns) that open its circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// Base duration a breaker stays open before a half-open probe is
    /// allowed; doubles on every re-open.
    pub breaker_backoff: Duration,
    /// Attempt cap for the rescue session of one sick column (each attempt
    /// escalates one rung of the degradation ladder).
    pub rescue_attempts: u32,
    /// Base backoff between rescue attempts (slept through the service
    /// clock; exponential).
    pub rescue_backoff: Duration,
    /// Worker threads for the asynchronous rungs of rescue sessions.
    pub rescue_threads: usize,
    /// Deterministic seed: the rescue session of ticket `t` runs seeded
    /// with `mix(seed, t)`, so a chaos run replays bit-identically.
    pub session_seed: Option<u64>,
    /// Faults injected into the asynchronous rungs of every rescue session
    /// (the harness uses this to push crashes and corruption *through* the
    /// service).
    pub fault_plan: Option<FaultPlan>,
    /// Service-level chaos: corrupt primary batch columns and poison
    /// cached hierarchies at chosen dispatches (see [`ChaosPlan`]).
    pub chaos: Option<ChaosPlan>,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(10),
            rescue_attempts: 5,
            rescue_backoff: Duration::from_millis(1),
            rescue_threads: 2,
            session_seed: None,
            fault_plan: None,
            chaos: None,
        }
    }
}
