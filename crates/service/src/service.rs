//! The long-lived solver service and its fault-tolerant plane.
//!
//! # Lock discipline: snapshot → dispatch → publish
//!
//! [`SolverService::process_batch`] holds the service-wide mutex only for
//! *admission* (deadline expiry, batch selection, breaker checks, cache
//! lookup) and *publication* (writing outcomes, stats, breaker
//! transitions). The numeric solve itself runs under the dispatched cache
//! entry's own lock, so `submit`/`status`/`take` — and dispatches of other
//! matrices — never stall behind a long solve. Same-fingerprint dispatches
//! serialize on the entry lock, which is exactly the ordering the blocked
//! workspace needs. Locks are always taken service-then-entry, never the
//! reverse, so the two can never deadlock.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use asyncmg_core::{
    solve_mult_batch_with, BatchSpec, RecoveryOptions, RetryPolicy, SolveError, Solver,
};
use asyncmg_sparse::{vecops, Csr};
use asyncmg_telemetry::{CacheEvent, ServiceEvent, ServiceStats};
use asyncmg_threads::{Clock, OsClock};

use crate::cache::{CachedSetup, HierarchyCache};
use crate::chaos::corrupt_value;
use crate::request::{
    Priority, Rejection, RequestStatus, ResilienceOptions, ServiceError, ServiceOptions,
    SolveRequest, SolveResponse, Stopped, SubmitError, Ticket, TicketState,
};

/// A queued request after submit-time validation.
struct Queued {
    ticket: u64,
    fingerprint: u64,
    a: Arc<Csr>,
    b: Vec<f64>,
    spec: BatchSpec,
    /// Absolute service-clock deadline, `u64::MAX` when none — also the
    /// slack ordering key (smaller deadline = less slack).
    deadline_ns: u64,
    priority: Priority,
}

/// How many recently fingerprinted matrices to remember by identity.
const FP_MEMO_CAP: usize = 8;

/// Per-fingerprint circuit breaker state.
#[derive(Clone, Copy, Debug, PartialEq)]
enum BreakerState {
    /// Serving normally; `failures` consecutive failed dispatches so far.
    Closed,
    /// Failing fast until `until_ns` on the service clock.
    Open { until_ns: u64 },
    /// Backoff elapsed; the next dispatch runs as a probe.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
struct Breaker {
    state: BreakerState,
    /// Consecutive failed dispatches (reset by any clean dispatch).
    failures: u32,
    /// Times this breaker has opened (doubles the backoff each time).
    trips: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker { state: BreakerState::Closed, failures: 0, trips: 0 }
    }
}

/// Everything one dispatch carries out of the admission phase.
struct Dispatch {
    fingerprint: u64,
    batch: Vec<Queued>,
    entry: Arc<Mutex<CachedSetup>>,
    hit: bool,
    dispatch: u64,
    /// Snapshot of the resilience configuration (None = undefended).
    resilience: Option<ResilienceOptions>,
    /// Whether this fingerprint is under suspicion — a half-open breaker
    /// probe, or a fingerprint that failed before. Arms the defended
    /// recovery posture in rescue sessions.
    probe: bool,
}

struct Inner {
    opts: ServiceOptions,
    cache: HierarchyCache,
    queue: Vec<Queued>,
    /// Resolved outcomes keyed by ticket id. A `BTreeMap` so the bounded
    /// store can evict the *oldest* unclaimed outcome deterministically
    /// (ticket ids are issued monotonically).
    resolved: BTreeMap<u64, RequestStatus>,
    /// Tickets popped from the queue and currently solving off-lock; they
    /// still read as [`TicketState::Queued`].
    in_flight: Vec<u64>,
    next_ticket: u64,
    /// Monotone dispatch counter (the chaos-plan key).
    dispatches: u64,
    stats: ServiceStats,
    /// Memoized content fingerprints keyed by matrix allocation identity,
    /// so resubmitting the same `Arc<Csr>` skips rehashing the matrix.
    fp_memo: Vec<(Weak<Csr>, u64)>,
    breakers: HashMap<u64, Breaker>,
    events: Vec<ServiceEvent>,
}

impl Inner {
    /// Content fingerprint of `a`, memoized by allocation identity. The
    /// `Weak` guard keeps a recycled address from ever aliasing a freed
    /// matrix: an entry only matches while its original `Arc` is alive,
    /// and `Arc::ptr_eq` on a live upgrade pins the exact allocation.
    /// Memoization never changes the value, only who pays for hashing.
    fn fingerprint_of(&mut self, a: &Arc<Csr>) -> u64 {
        self.fp_memo.retain(|(w, _)| w.strong_count() > 0);
        for (w, fp) in &self.fp_memo {
            if let Some(live) = w.upgrade() {
                if Arc::ptr_eq(&live, a) {
                    return *fp;
                }
            }
        }
        let fp = a.fingerprint();
        if self.fp_memo.len() >= FP_MEMO_CAP {
            self.fp_memo.remove(0);
        }
        self.fp_memo.push((Arc::downgrade(a), fp));
        fp
    }

    /// Stores an outcome, evicting the oldest unclaimed one beyond the
    /// resolved-store capacity.
    fn resolve(&mut self, ticket: u64, status: RequestStatus) {
        self.resolved.insert(ticket, status);
        let cap = self.opts.resolved_capacity.max(1);
        while self.resolved.len() > cap {
            self.resolved.pop_first();
            self.stats.resolved_evicted += 1;
        }
    }

    /// Mirrors the cache's counters into the stats snapshot.
    fn sync_cache_counters(&mut self) {
        let (h, m, ev) = self.cache.counters();
        self.stats.cache_hits = h;
        self.stats.cache_misses = m;
        self.stats.evictions = ev;
    }

    /// Records a failed dispatch of `fingerprint` (defended services
    /// only): opens the breaker at the threshold, or re-opens a half-open
    /// one with doubled backoff.
    fn breaker_failure(&mut self, fingerprint: u64, now_ns: u64) {
        let Some(res) = self.opts.resilience.as_ref() else { return };
        let threshold = res.breaker_threshold.max(1);
        let backoff_ns = res.breaker_backoff.as_nanos() as u64;
        let b = self.breakers.entry(fingerprint).or_insert_with(Breaker::new);
        b.failures += 1;
        let should_open = matches!(b.state, BreakerState::HalfOpen) || b.failures >= threshold;
        if should_open && !matches!(b.state, BreakerState::Open { .. }) {
            b.trips += 1;
            let until_ns =
                now_ns.saturating_add(backoff_ns.saturating_mul(1u64 << (b.trips - 1).min(20)));
            b.state = BreakerState::Open { until_ns };
            self.stats.breaker_opened += 1;
            self.events.push(ServiceEvent::BreakerOpened {
                fingerprint,
                until_ns,
                failures: b.failures,
            });
        }
    }

    /// Records a clean dispatch of `fingerprint`: closes a half-open
    /// breaker and resets the failure streak.
    fn breaker_success(&mut self, fingerprint: u64) {
        if self.opts.resilience.is_none() {
            return;
        }
        if let Some(b) = self.breakers.get_mut(&fingerprint) {
            if b.state == BreakerState::HalfOpen {
                b.state = BreakerState::Closed;
                self.stats.breaker_closed += 1;
                self.events.push(ServiceEvent::BreakerClosed { fingerprint });
            }
            b.failures = 0;
        }
    }

    /// Drops `tickets` from the in-flight set.
    fn land(&mut self, tickets: &[u64]) {
        self.in_flight.retain(|t| !tickets.contains(t));
    }
}

/// Splitmix64 finalizer: derives a rescue-session seed from the service
/// seed and the ticket id, so every rescue replays bit-identically yet
/// decorrelated from its neighbours.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A long-lived solver front end.
///
/// The service owns what [`Solver`](asyncmg_core::Solver) borrows per call:
/// AMG hierarchies (cached by matrix content fingerprint), blocked
/// workspaces, and the clock. Callers [`submit`](SolverService::submit)
/// cheap [`SolveRequest`] descriptions; each
/// [`process_batch`](SolverService::process_batch) dispatches the most
/// urgent queued matrix, coalescing up to `batch_window` same-matrix
/// right-hand sides into one blocked multiplicative solve. Batching is
/// *bit-transparent*: the blocked kernels keep per-column accumulation in
/// the exact order of the single-RHS path, so a request's solution is
/// bit-identical no matter how many neighbours rode along.
///
/// Admission control is deadline-aware. A request may carry a deadline on
/// the service clock; at dispatch the service rejects requests whose
/// deadline has already passed, and requests it estimates (from a running
/// per-matrix cost average) cannot finish in time. With a
/// [`VirtualClock`](asyncmg_threads::VirtualClock) the whole pipeline is
/// deterministic — solves take zero virtual time, so rejection depends only
/// on explicit `advance` calls, and the cache event log and stats replay
/// exactly.
///
/// With [`ServiceOptions::resilience`] configured the service is
/// *defended*: cached hierarchies are checksummed at build and re-verified
/// on every hit (poisoned entries quarantine and rebuild), sick batch
/// columns are split from their healthy batch-mates and retried solo down
/// the degradation ladder under a deadline-derived
/// [`RetryPolicy`](asyncmg_core::RetryPolicy), and repeated failed
/// dispatches of one fingerprint open a per-fingerprint circuit breaker
/// ([`Rejection::CircuitOpen`] fail-fast with a retry-after hint, half-open
/// probes after clock-based backoff). Every transition lands in
/// [`service_events`](SolverService::service_events). An undefended
/// service runs the classic dispatch path bit-identically.
pub struct SolverService {
    inner: Mutex<Inner>,
    clock: Arc<dyn Clock + Send + Sync>,
}

impl SolverService {
    /// A service on the OS clock.
    pub fn new(opts: ServiceOptions) -> Self {
        SolverService::with_clock(opts, Arc::new(OsClock::new()))
    }

    /// A service reading time (for deadlines, breaker backoff, and cost
    /// estimates) from the given clock.
    pub fn with_clock(opts: ServiceOptions, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        assert!(opts.batch_window >= 1, "batch window must be at least 1");
        assert!(opts.queue_capacity >= 1, "queue capacity must be at least 1");
        assert!(opts.resolved_capacity >= 1, "resolved capacity must be at least 1");
        let cache = HierarchyCache::new(opts.cache_capacity);
        SolverService {
            inner: Mutex::new(Inner {
                opts,
                cache,
                queue: Vec::new(),
                resolved: BTreeMap::new(),
                in_flight: Vec::new(),
                next_ticket: 0,
                dispatches: 0,
                stats: ServiceStats::default(),
                fp_memo: Vec::new(),
                breakers: HashMap::new(),
                events: Vec::new(),
            }),
            clock,
        }
    }

    /// Validates and enqueues a request.
    ///
    /// With [`ServiceOptions::shed_high_water`] set, pushing the queue past
    /// the high-water mark sheds the globally worst victim — lowest
    /// [`Priority`], then most slack, then youngest — as
    /// [`Rejection::Shed`]. The victim may be the request just submitted;
    /// either way its ticket resolves (never silently dropped), so `Ok`
    /// here means "admitted to the ticket space", not "will be solved".
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, SubmitError> {
        let n = req.a.nrows();
        if req.b.len() != n {
            return Err(SolveError::RhsLength { expected: n, got: req.b.len() }.into());
        }
        if let Some(i) = req.b.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFiniteRhs { index: i }.into());
        }
        if req.t_max == 0 {
            return Err(SolveError::InvalidOptions("t_max must be at least 1".into()).into());
        }

        let mut inner = self.inner.lock().unwrap();
        if inner.queue.len() >= inner.opts.queue_capacity {
            inner.stats.rejected_queue_full += 1;
            return Err(SubmitError::QueueFull { capacity: inner.opts.queue_capacity });
        }
        let deadline_ns = match req.deadline {
            Some(d) => self.clock.now_ns().saturating_add(d.as_nanos() as u64),
            None => u64::MAX,
        };
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let fingerprint = inner.fingerprint_of(&req.a);
        inner.queue.push(Queued {
            ticket,
            fingerprint,
            a: req.a,
            b: req.b,
            spec: BatchSpec { tol: req.tolerance, t_max: req.t_max },
            deadline_ns,
            priority: req.priority,
        });

        // Graceful overload shedding at the high-water mark.
        if let Some(hw) = inner.opts.shed_high_water {
            if inner.queue.len() > hw {
                let victim = (0..inner.queue.len())
                    .min_by_key(|&i| {
                        let q = &inner.queue[i];
                        (q.priority, std::cmp::Reverse(q.deadline_ns), std::cmp::Reverse(q.ticket))
                    })
                    .expect("queue is non-empty above the high-water mark");
                let shed = inner.queue.remove(victim);
                let queue_depth = inner.queue.len();
                inner
                    .resolve(shed.ticket, RequestStatus::Rejected(Rejection::Shed { queue_depth }));
                inner.stats.shed += 1;
                inner.events.push(ServiceEvent::Shed { ticket: shed.ticket });
            }
        }
        inner.stats.queue_depth = inner.queue.len() as u64;
        inner.stats.max_queue_depth = inner.stats.max_queue_depth.max(inner.stats.queue_depth);
        Ok(Ticket(ticket))
    }

    /// Dispatches one batch: expires overdue requests, picks the queued
    /// matrix with the least slack, coalesces up to `batch_window` of its
    /// right-hand sides, and runs one blocked solve — off the service
    /// lock. Returns the number of requests resolved (completed or
    /// rejected); 0 means the queue was empty.
    pub fn process_batch(&self) -> usize {
        // ---- Phase 1: admission, under the service lock. ----
        let (dispatch, mut resolved_count) = {
            let mut guard = self.inner.lock().unwrap();
            let inner = &mut *guard;
            if inner.queue.is_empty() {
                return 0;
            }
            let now = self.clock.now_ns();
            let mut resolved_count = 0usize;

            // Expire requests whose deadline has already passed.
            let mut i = 0;
            while i < inner.queue.len() {
                if inner.queue[i].deadline_ns <= now {
                    let q = inner.queue.remove(i);
                    inner.resolve(
                        q.ticket,
                        RequestStatus::Rejected(Rejection::DeadlineExpired {
                            deadline_ns: q.deadline_ns,
                            now_ns: now,
                        }),
                    );
                    inner.stats.rejected_deadline += 1;
                    resolved_count += 1;
                } else {
                    i += 1;
                }
            }
            if inner.queue.is_empty() {
                inner.stats.queue_depth = 0;
                return resolved_count;
            }

            // Least slack first; submission order breaks ties.
            inner.queue.sort_by_key(|q| (q.deadline_ns, q.ticket));
            let fp = inner.queue[0].fingerprint;
            let window = inner.opts.batch_window;
            let mut batch: Vec<Queued> = Vec::new();
            let mut i = 0;
            while i < inner.queue.len() && batch.len() < window {
                if inner.queue[i].fingerprint == fp {
                    batch.push(inner.queue.remove(i));
                } else {
                    i += 1;
                }
            }
            inner.stats.queue_depth = inner.queue.len() as u64;

            let resilience = inner.opts.resilience.clone();

            // Circuit breaker: fail fast while open, probe when the
            // backoff has elapsed.
            let mut probe = false;
            if resilience.is_some() {
                if let Some(b) = inner.breakers.get_mut(&fp) {
                    if let BreakerState::Open { until_ns } = b.state {
                        if now < until_ns {
                            let retry_after_ns = until_ns - now;
                            for q in batch {
                                inner.resolve(
                                    q.ticket,
                                    RequestStatus::Rejected(Rejection::CircuitOpen {
                                        fingerprint: fp,
                                        retry_after_ns,
                                    }),
                                );
                                inner.stats.rejected_circuit_open += 1;
                                resolved_count += 1;
                            }
                            return resolved_count;
                        }
                        b.state = BreakerState::HalfOpen;
                        probe = true;
                        inner.events.push(ServiceEvent::BreakerHalfOpen { fingerprint: fp });
                    }
                }
            }

            let dispatch_no = inner.dispatches;
            inner.dispatches += 1;

            // Chaos: forced poisoning of the cached hierarchy about to be
            // dispatched.
            if let Some(chaos) = resilience.as_ref().and_then(|r| r.chaos.as_ref()) {
                if chaos.poisons(dispatch_no) {
                    inner.cache.poison(fp);
                }
            }

            let fp_faulted = inner.breakers.get(&fp).is_some_and(|b| b.failures > 0 || b.trips > 0);

            let (entry, hit) = match inner.cache.get_or_build(fp, &batch[0].a, &inner.opts) {
                Ok(pair) => pair,
                Err(e) => {
                    for q in batch {
                        inner.resolve(
                            q.ticket,
                            RequestStatus::Rejected(Rejection::BuildFailed(e.clone())),
                        );
                        resolved_count += 1;
                    }
                    inner.breaker_failure(fp, now);
                    inner.sync_cache_counters();
                    return resolved_count;
                }
            };
            inner.in_flight.extend(batch.iter().map(|q| q.ticket));
            (
                Dispatch {
                    fingerprint: fp,
                    batch,
                    entry,
                    hit,
                    dispatch: dispatch_no,
                    resilience,
                    probe: probe || fp_faulted,
                },
                resolved_count,
            )
        };

        // ---- Phase 2: the numeric work, off the service lock. ----
        resolved_count += self.run_dispatch(dispatch);
        resolved_count
    }

    /// Runs one admitted dispatch: integrity check, the blocked solve,
    /// chaos injection, sick-column rescue, and publication.
    fn run_dispatch(&self, d: Dispatch) -> usize {
        let Dispatch { fingerprint: fp, batch, mut entry, mut hit, dispatch, resilience, .. } = d;
        let tickets: Vec<u64> = batch.iter().map(|q| q.ticket).collect();
        let defended = resilience.is_some();
        let mut primary_failed = false;
        let mut resolved_count = 0usize;

        let mut entry_guard = entry.lock().unwrap();

        // Cache integrity: cheap re-verify on every hit; quarantine and
        // rebuild poisoned entries (defended services only — verification
        // is the only defended step that touches the undefended path, and
        // it reads, never writes, so solutions stay bit-identical).
        if defended && hit && !entry_guard.verify() {
            drop(entry_guard);
            let rebuilt = {
                let mut guard = self.inner.lock().unwrap();
                let inner = &mut *guard;
                inner.cache.quarantine(fp);
                inner.stats.quarantined += 1;
                inner.events.push(ServiceEvent::Quarantined { fingerprint: fp });
                primary_failed = true;
                match inner.cache.get_or_build(fp, &batch[0].a, &inner.opts) {
                    Ok((e, _)) => {
                        inner.sync_cache_counters();
                        e
                    }
                    Err(e) => {
                        for q in &batch {
                            inner.resolve(
                                q.ticket,
                                RequestStatus::Rejected(Rejection::BuildFailed(e.clone())),
                            );
                            resolved_count += 1;
                        }
                        inner.breaker_failure(fp, self.clock.now_ns());
                        inner.land(&tickets);
                        inner.sync_cache_counters();
                        return resolved_count;
                    }
                }
            };
            entry = rebuilt;
            entry_guard = entry.lock().unwrap();
            hit = false;
        }

        // Deadline feasibility from the per-matrix cost average: a request
        // that cannot finish its full cycle budget in its remaining slack
        // is rejected instead of started. An estimate of 0 (no timed
        // dispatch yet — always the case under a virtual clock) admits.
        let now = self.clock.now_ns();
        let ema = entry_guard.ema_ns_per_cycle_rhs;
        let mut infeasible: Vec<(u64, Rejection)> = Vec::new();
        let mut batch = batch;
        if ema > 0.0 {
            batch.retain(|q| {
                if q.deadline_ns == u64::MAX {
                    return true;
                }
                let estimated_ns = (ema * q.spec.t_max as f64) as u64;
                if now.saturating_add(estimated_ns) > q.deadline_ns {
                    infeasible.push((
                        q.ticket,
                        Rejection::DeadlineInfeasible {
                            deadline_ns: q.deadline_ns,
                            estimated_ns,
                            now_ns: now,
                        },
                    ));
                    false
                } else {
                    true
                }
            });
        }
        if batch.is_empty() {
            drop(entry_guard);
            let mut guard = self.inner.lock().unwrap();
            let inner = &mut *guard;
            for (t, rej) in infeasible {
                inner.resolve(t, RequestStatus::Rejected(rej));
                inner.stats.rejected_deadline += 1;
                resolved_count += 1;
            }
            inner.land(&tickets);
            inner.sync_cache_counters();
            return resolved_count;
        }

        // One blocked solve over the coalesced right-hand sides.
        let k = batch.len();
        let n = entry_guard.setup.n();
        let mut b = vec![0.0; n * k];
        let mut specs = Vec::with_capacity(k);
        for (c, q) in batch.iter().enumerate() {
            b[c * n..(c + 1) * n].copy_from_slice(&q.b);
            specs.push(q.spec);
        }
        let t0 = self.clock.now_ns();
        let mut result = {
            let CachedSetup { setup, scratch, .. } = &mut *entry_guard;
            scratch.ensure(setup, k);
            solve_mult_batch_with(setup, &b, &specs, scratch)
        };
        let elapsed = self.clock.now_ns().saturating_sub(t0);
        let total_cycles: usize = result.cycles.iter().sum();
        if elapsed > 0 && total_cycles > 0 {
            let per = elapsed as f64 / total_cycles as f64;
            entry_guard.ema_ns_per_cycle_rhs = if ema > 0.0 { 0.5 * ema + 0.5 * per } else { per };
        }

        // Chaos: corrupt one solution column of this dispatch, then
        // recompute its *true* residual so detection earns its keep.
        if let Some(chaos) = resilience.as_ref().and_then(|r| r.chaos.as_ref()) {
            if let Some((col, kind)) = chaos.corrupt_column(dispatch) {
                if col < k {
                    let v = &mut result.x[col * n];
                    *v = corrupt_value(kind, *v);
                    let mut r = vec![0.0; n];
                    entry_guard.setup.a(0).residual(
                        &b[col * n..(col + 1) * n],
                        &result.x[col * n..(col + 1) * n],
                        &mut r,
                    );
                    let nb = vecops::norm2(&b[col * n..(col + 1) * n]).max(1e-300);
                    result.relres[col] = vecops::norm2(&r) / nb;
                }
            }
        }

        // Batch fault isolation: non-finite / diverged columns are split
        // out and retried solo down the degradation ladder; healthy
        // batch-mates complete normally.
        let sick = if defended { result.sick_columns() } else { Vec::new() };
        primary_failed |= !sick.is_empty();
        let mut rescues: HashMap<usize, (RequestStatus, ServiceEvent, u32)> = HashMap::new();
        if let Some(res) = resilience.as_ref().filter(|_| !sick.is_empty()) {
            let clock_ref: &dyn Clock = &*self.clock;
            for &c in &sick {
                let q = &batch[c];
                let mut retry = RetryPolicy {
                    max_attempts: res.rescue_attempts.max(1),
                    backoff: res.rescue_backoff,
                    deadline: None,
                };
                if q.deadline_ns != u64::MAX {
                    let now = self.clock.now_ns();
                    if now >= q.deadline_ns {
                        rescues.insert(
                            c,
                            (
                                RequestStatus::Rejected(Rejection::DeadlineExpired {
                                    deadline_ns: q.deadline_ns,
                                    now_ns: now,
                                }),
                                ServiceEvent::Rescued {
                                    ticket: q.ticket,
                                    attempts: 0,
                                    converged: false,
                                },
                                0,
                            ),
                        );
                        continue;
                    }
                    // Remaining slack becomes the session deadline; the
                    // session splits it evenly over the attempts left.
                    retry.deadline = Some(Duration::from_nanos(q.deadline_ns - now));
                }
                let mut solver = Solver::new(&entry_guard.setup)
                    .threads(res.rescue_threads.max(1))
                    .t_max(q.spec.t_max)
                    .retry(retry)
                    .session_clock(clock_ref);
                if let Some(t) = q.spec.tol {
                    solver = solver.tolerance(t);
                }
                if let Some(seed) = res.session_seed {
                    solver = solver.session_seed(mix(seed, q.ticket));
                }
                if let Some(plan) = res.fault_plan.as_ref() {
                    solver = solver.fault_plan(plan);
                }
                if d.probe {
                    // A fault was observed on this fingerprint before:
                    // arm the defensive posture from the first attempt.
                    solver = solver.recovery(RecoveryOptions::defended());
                }
                let (status, attempts, converged) = match solver.try_fallback(&q.b) {
                    Ok(report) => {
                        let attempts = report.attempts.len() as u32;
                        if report.converged {
                            (
                                RequestStatus::Completed(SolveResponse {
                                    x: report.x,
                                    relres: report.relres,
                                    converged: q.spec.tol.is_some_and(|t| report.relres <= t),
                                    stopped: if q.spec.tol.is_some() {
                                        Stopped::Tolerance
                                    } else {
                                        Stopped::Budget
                                    },
                                    cycles: result.cycles[c],
                                    history: result.history[c].clone(),
                                    cache_hit: hit,
                                    batch_size: k,
                                    rescued: true,
                                }),
                                attempts,
                                true,
                            )
                        } else {
                            (
                                RequestStatus::Rejected(Rejection::SolveFailed {
                                    relres: report.relres,
                                    attempts,
                                }),
                                attempts,
                                false,
                            )
                        }
                    }
                    // Session-level config errors cannot occur for a
                    // submit-validated request, but stay typed anyway.
                    Err(_) => (
                        RequestStatus::Rejected(Rejection::SolveFailed {
                            relres: f64::INFINITY,
                            attempts: 0,
                        }),
                        0,
                        false,
                    ),
                };
                rescues.insert(
                    c,
                    (
                        status,
                        ServiceEvent::Rescued { ticket: q.ticket, attempts, converged },
                        attempts,
                    ),
                );
            }
        }
        drop(entry_guard);

        // ---- Phase 3: publication, under the service lock. ----
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        for (t, rej) in infeasible {
            inner.resolve(t, RequestStatus::Rejected(rej));
            inner.stats.rejected_deadline += 1;
            resolved_count += 1;
        }
        for (c, q) in batch.iter().enumerate() {
            let status = match rescues.remove(&c) {
                Some((status, event, attempts)) => {
                    inner.events.push(event);
                    match &status {
                        RequestStatus::Completed(_) => {
                            inner.stats.rescued += 1;
                            inner.stats.retries += u64::from(attempts.saturating_sub(1));
                            inner.stats.completed += 1;
                        }
                        RequestStatus::Rejected(_) => {
                            inner.stats.rescue_failed += 1;
                            inner.stats.retries += u64::from(attempts.saturating_sub(1));
                        }
                    }
                    status
                }
                None => {
                    let relres = result.relres[c];
                    let converged = q.spec.tol.is_some_and(|t| relres <= t);
                    inner.stats.completed += 1;
                    RequestStatus::Completed(SolveResponse {
                        x: result.x[c * n..(c + 1) * n].to_vec(),
                        relres,
                        converged,
                        stopped: if converged { Stopped::Tolerance } else { Stopped::Budget },
                        cycles: result.cycles[c],
                        history: result.history[c].clone(),
                        cache_hit: hit,
                        batch_size: k,
                        rescued: false,
                    })
                }
            };
            inner.resolve(q.ticket, status);
            resolved_count += 1;
        }
        inner.stats.batches += 1;
        inner.stats.batched_rhs += k as u64;
        if defended {
            if primary_failed {
                inner.breaker_failure(fp, self.clock.now_ns());
            } else {
                inner.breaker_success(fp);
            }
        }
        inner.land(&tickets);
        inner.sync_cache_counters();
        resolved_count
    }

    /// Processes batches until the queue is empty; returns the number of
    /// requests resolved.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.process_batch();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    /// Where `ticket` currently stands — every case distinguishable:
    /// never-issued tickets read [`TicketState::Unknown`], already-claimed
    /// (or evicted-unclaimed) ones read [`TicketState::Claimed`].
    pub fn status(&self, ticket: Ticket) -> TicketState {
        let inner = self.inner.lock().unwrap();
        if ticket.0 >= inner.next_ticket {
            return TicketState::Unknown;
        }
        if let Some(s) = inner.resolved.get(&ticket.0) {
            return TicketState::Ready(s.clone());
        }
        if inner.in_flight.contains(&ticket.0) || inner.queue.iter().any(|q| q.ticket == ticket.0) {
            return TicketState::Queued;
        }
        TicketState::Claimed
    }

    /// Removes and returns `ticket`'s outcome. A still-queued ticket
    /// returns [`TicketState::Queued`] and stays queued; taking twice
    /// returns [`TicketState::Claimed`] the second time.
    pub fn take(&self, ticket: Ticket) -> TicketState {
        let mut inner = self.inner.lock().unwrap();
        if ticket.0 >= inner.next_ticket {
            return TicketState::Unknown;
        }
        if let Some(s) = inner.resolved.remove(&ticket.0) {
            return TicketState::Ready(s);
        }
        if inner.in_flight.contains(&ticket.0) || inner.queue.iter().any(|q| q.ticket == ticket.0) {
            return TicketState::Queued;
        }
        TicketState::Claimed
    }

    /// Submits `req` and processes batches until it resolves.
    ///
    /// Other queued requests may resolve along the way; their outcomes stay
    /// claimable by ticket.
    pub fn solve(&self, req: SolveRequest) -> Result<SolveResponse, ServiceError> {
        let ticket = self.submit(req)?;
        loop {
            match self.take(ticket) {
                TicketState::Ready(RequestStatus::Completed(r)) => return Ok(r),
                TicketState::Ready(RequestStatus::Rejected(r)) => return Err(r.into()),
                TicketState::Queued => {
                    self.process_batch();
                }
                TicketState::Claimed | TicketState::Unknown => {
                    unreachable!("ticket resolved but outcome missing (resolved store too small?)")
                }
            }
        }
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.lock().unwrap().stats
    }

    /// The cache event log so far, in decision order.
    pub fn cache_events(&self) -> Vec<CacheEvent> {
        self.inner.lock().unwrap().cache.events().to_vec()
    }

    /// The fault-plane event log so far (breaker transitions, quarantines,
    /// sheds, rescues), in decision order. Empty for undefended services
    /// unless shedding is enabled.
    pub fn service_events(&self) -> Vec<ServiceEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Number of hierarchies currently cached.
    pub fn cached_hierarchies(&self) -> usize {
        self.inner.lock().unwrap().cache.len()
    }
}
