//! The long-lived solver service.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

use asyncmg_core::{solve_mult_batch_with, BatchSpec, SolveError};
use asyncmg_sparse::Csr;
use asyncmg_telemetry::{CacheEvent, ServiceStats};
use asyncmg_threads::{Clock, OsClock};

use crate::cache::HierarchyCache;
use crate::request::{
    Rejection, RequestStatus, ServiceError, ServiceOptions, SolveRequest, SolveResponse,
    SubmitError, Ticket,
};

/// A queued request after submit-time validation.
struct Queued {
    ticket: u64,
    fingerprint: u64,
    a: Arc<Csr>,
    b: Vec<f64>,
    spec: BatchSpec,
    /// Absolute service-clock deadline, `u64::MAX` when none — also the
    /// slack ordering key (smaller deadline = less slack).
    deadline_ns: u64,
}

/// How many recently fingerprinted matrices to remember by identity.
const FP_MEMO_CAP: usize = 8;

struct Inner {
    opts: ServiceOptions,
    cache: HierarchyCache,
    queue: Vec<Queued>,
    resolved: HashMap<u64, RequestStatus>,
    next_ticket: u64,
    stats: ServiceStats,
    /// Memoized content fingerprints keyed by matrix allocation identity,
    /// so resubmitting the same `Arc<Csr>` skips rehashing the matrix.
    fp_memo: Vec<(Weak<Csr>, u64)>,
}

impl Inner {
    /// Content fingerprint of `a`, memoized by allocation identity. The
    /// `Weak` guard keeps a recycled address from ever aliasing a freed
    /// matrix: an entry only matches while its original `Arc` is alive,
    /// and `Arc::ptr_eq` on a live upgrade pins the exact allocation.
    /// Memoization never changes the value, only who pays for hashing.
    fn fingerprint_of(&mut self, a: &Arc<Csr>) -> u64 {
        self.fp_memo.retain(|(w, _)| w.strong_count() > 0);
        for (w, fp) in &self.fp_memo {
            if let Some(live) = w.upgrade() {
                if Arc::ptr_eq(&live, a) {
                    return *fp;
                }
            }
        }
        let fp = a.fingerprint();
        if self.fp_memo.len() >= FP_MEMO_CAP {
            self.fp_memo.remove(0);
        }
        self.fp_memo.push((Arc::downgrade(a), fp));
        fp
    }
}

/// A long-lived solver front end.
///
/// The service owns what [`Solver`](asyncmg_core::Solver) borrows per call:
/// AMG hierarchies (cached by matrix content fingerprint), blocked
/// workspaces, and the clock. Callers [`submit`](SolverService::submit)
/// cheap [`SolveRequest`] descriptions; each
/// [`process_batch`](SolverService::process_batch) dispatches the most
/// urgent queued matrix, coalescing up to `batch_window` same-matrix
/// right-hand sides into one blocked multiplicative solve. Batching is
/// *bit-transparent*: the blocked kernels keep per-column accumulation in
/// the exact order of the single-RHS path, so a request's solution is
/// bit-identical no matter how many neighbours rode along.
///
/// Admission control is deadline-aware. A request may carry a deadline on
/// the service clock; at dispatch the service rejects requests whose
/// deadline has already passed, and requests it estimates (from a running
/// per-matrix cost average) cannot finish in time. With a
/// [`VirtualClock`](asyncmg_threads::VirtualClock) the whole pipeline is
/// deterministic — solves take zero virtual time, so rejection depends only
/// on explicit `advance` calls, and the cache event log and stats replay
/// exactly.
pub struct SolverService {
    inner: Mutex<Inner>,
    clock: Arc<dyn Clock + Send + Sync>,
}

impl SolverService {
    /// A service on the OS clock.
    pub fn new(opts: ServiceOptions) -> Self {
        SolverService::with_clock(opts, Arc::new(OsClock::new()))
    }

    /// A service reading time (for deadlines and cost estimates) from the
    /// given clock.
    pub fn with_clock(opts: ServiceOptions, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        assert!(opts.batch_window >= 1, "batch window must be at least 1");
        assert!(opts.queue_capacity >= 1, "queue capacity must be at least 1");
        let cache = HierarchyCache::new(opts.cache_capacity);
        SolverService {
            inner: Mutex::new(Inner {
                opts,
                cache,
                queue: Vec::new(),
                resolved: HashMap::new(),
                next_ticket: 0,
                stats: ServiceStats::default(),
                fp_memo: Vec::new(),
            }),
            clock,
        }
    }

    /// Validates and enqueues a request.
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, SubmitError> {
        let n = req.a.nrows();
        if req.b.len() != n {
            return Err(SolveError::RhsLength { expected: n, got: req.b.len() }.into());
        }
        if let Some(i) = req.b.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFiniteRhs { index: i }.into());
        }
        if req.t_max == 0 {
            return Err(SolveError::InvalidOptions("t_max must be at least 1".into()).into());
        }

        let mut inner = self.inner.lock().unwrap();
        if inner.queue.len() >= inner.opts.queue_capacity {
            inner.stats.rejected_queue_full += 1;
            return Err(SubmitError::QueueFull { capacity: inner.opts.queue_capacity });
        }
        let deadline_ns = match req.deadline {
            Some(d) => self.clock.now_ns().saturating_add(d.as_nanos() as u64),
            None => u64::MAX,
        };
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let fingerprint = inner.fingerprint_of(&req.a);
        inner.queue.push(Queued {
            ticket,
            fingerprint,
            a: req.a,
            b: req.b,
            spec: BatchSpec { tol: req.tolerance, t_max: req.t_max },
            deadline_ns,
        });
        inner.stats.queue_depth = inner.queue.len() as u64;
        inner.stats.max_queue_depth = inner.stats.max_queue_depth.max(inner.stats.queue_depth);
        Ok(Ticket(ticket))
    }

    /// Dispatches one batch: expires overdue requests, picks the queued
    /// matrix with the least slack, coalesces up to `batch_window` of its
    /// right-hand sides, and runs one blocked solve. Returns the number of
    /// requests resolved (completed or rejected); 0 means the queue was
    /// empty.
    pub fn process_batch(&self) -> usize {
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        if inner.queue.is_empty() {
            return 0;
        }
        let now = self.clock.now_ns();
        let mut resolved = 0;

        // Expire requests whose deadline has already passed.
        let mut i = 0;
        while i < inner.queue.len() {
            if inner.queue[i].deadline_ns <= now {
                let q = inner.queue.remove(i);
                inner.resolved.insert(
                    q.ticket,
                    RequestStatus::Rejected(Rejection::DeadlineExpired {
                        deadline_ns: q.deadline_ns,
                        now_ns: now,
                    }),
                );
                inner.stats.rejected_deadline += 1;
                resolved += 1;
            } else {
                i += 1;
            }
        }
        if inner.queue.is_empty() {
            inner.stats.queue_depth = 0;
            return resolved;
        }

        // Least slack first; submission order breaks ties.
        inner.queue.sort_by_key(|q| (q.deadline_ns, q.ticket));
        let fp = inner.queue[0].fingerprint;
        let window = inner.opts.batch_window;
        let mut batch: Vec<Queued> = Vec::new();
        let mut i = 0;
        while i < inner.queue.len() && batch.len() < window {
            if inner.queue[i].fingerprint == fp {
                batch.push(inner.queue.remove(i));
            } else {
                i += 1;
            }
        }
        inner.stats.queue_depth = inner.queue.len() as u64;

        let (cached, hit) = match inner.cache.get_or_build(fp, &batch[0].a, &inner.opts) {
            Ok(pair) => pair,
            Err(e) => {
                for q in batch {
                    inner.resolved.insert(
                        q.ticket,
                        RequestStatus::Rejected(Rejection::BuildFailed(e.clone())),
                    );
                    resolved += 1;
                }
                let (h, m, ev) = inner.cache.counters();
                inner.stats.cache_hits = h;
                inner.stats.cache_misses = m;
                inner.stats.evictions = ev;
                return resolved;
            }
        };

        // Deadline feasibility from the per-matrix cost average: a request
        // that cannot finish its full cycle budget in its remaining slack
        // is rejected instead of started. An estimate of 0 (no timed
        // dispatch yet — always the case under a virtual clock) admits.
        let ema = cached.ema_ns_per_cycle_rhs;
        if ema > 0.0 {
            batch.retain(|q| {
                if q.deadline_ns == u64::MAX {
                    return true;
                }
                let estimated_ns = (ema * q.spec.t_max as f64) as u64;
                if now.saturating_add(estimated_ns) > q.deadline_ns {
                    inner.resolved.insert(
                        q.ticket,
                        RequestStatus::Rejected(Rejection::DeadlineInfeasible {
                            deadline_ns: q.deadline_ns,
                            estimated_ns,
                            now_ns: now,
                        }),
                    );
                    inner.stats.rejected_deadline += 1;
                    resolved += 1;
                    false
                } else {
                    true
                }
            });
        }
        if batch.is_empty() {
            let (h, m, ev) = inner.cache.counters();
            inner.stats.cache_hits = h;
            inner.stats.cache_misses = m;
            inner.stats.evictions = ev;
            return resolved;
        }

        // One blocked solve over the coalesced right-hand sides.
        let k = batch.len();
        let n = cached.setup.n();
        let mut b = vec![0.0; n * k];
        let mut specs = Vec::with_capacity(k);
        for (c, q) in batch.iter().enumerate() {
            b[c * n..(c + 1) * n].copy_from_slice(&q.b);
            specs.push(q.spec);
        }
        cached.scratch.ensure(&cached.setup, k);
        let t0 = self.clock.now_ns();
        let result = solve_mult_batch_with(&cached.setup, &b, &specs, &mut cached.scratch);
        let elapsed = self.clock.now_ns().saturating_sub(t0);

        let total_cycles: usize = result.cycles.iter().sum();
        if elapsed > 0 && total_cycles > 0 {
            let per = elapsed as f64 / total_cycles as f64;
            cached.ema_ns_per_cycle_rhs = if ema > 0.0 { 0.5 * ema + 0.5 * per } else { per };
        }

        for (c, q) in batch.into_iter().enumerate() {
            let relres = result.relres[c];
            let converged = q.spec.tol.is_some_and(|t| relres <= t);
            inner.resolved.insert(
                q.ticket,
                RequestStatus::Completed(SolveResponse {
                    x: result.x[c * n..(c + 1) * n].to_vec(),
                    relres,
                    converged,
                    cycles: result.cycles[c],
                    history: result.history[c].clone(),
                    cache_hit: hit,
                    batch_size: k,
                }),
            );
            resolved += 1;
        }
        inner.stats.batches += 1;
        inner.stats.batched_rhs += k as u64;
        inner.stats.completed += k as u64;
        let (h, m, ev) = inner.cache.counters();
        inner.stats.cache_hits = h;
        inner.stats.cache_misses = m;
        inner.stats.evictions = ev;
        resolved
    }

    /// Processes batches until the queue is empty; returns the number of
    /// requests resolved.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.process_batch();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    /// Where `ticket` currently stands (`None` for a ticket this service
    /// never issued or whose result was already taken).
    pub fn status(&self, ticket: Ticket) -> Option<RequestStatus> {
        let inner = self.inner.lock().unwrap();
        if let Some(s) = inner.resolved.get(&ticket.0) {
            return Some(s.clone());
        }
        if inner.queue.iter().any(|q| q.ticket == ticket.0) {
            return Some(RequestStatus::Queued);
        }
        None
    }

    /// Removes and returns `ticket`'s outcome. A still-queued ticket
    /// returns `Some(Queued)` and stays queued.
    pub fn take(&self, ticket: Ticket) -> Option<RequestStatus> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(s) = inner.resolved.remove(&ticket.0) {
            return Some(s);
        }
        if inner.queue.iter().any(|q| q.ticket == ticket.0) {
            return Some(RequestStatus::Queued);
        }
        None
    }

    /// Submits `req` and processes batches until it resolves.
    ///
    /// Other queued requests may resolve along the way; their outcomes stay
    /// claimable by ticket.
    pub fn solve(&self, req: SolveRequest) -> Result<SolveResponse, ServiceError> {
        let ticket = self.submit(req)?;
        loop {
            match self.take(ticket) {
                Some(RequestStatus::Completed(r)) => return Ok(r),
                Some(RequestStatus::Rejected(r)) => return Err(r.into()),
                Some(RequestStatus::Queued) => {
                    self.process_batch();
                }
                None => unreachable!("ticket resolved but outcome missing"),
            }
        }
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.lock().unwrap().stats
    }

    /// The cache event log so far, in decision order.
    pub fn cache_events(&self) -> Vec<CacheEvent> {
        self.inner.lock().unwrap().cache.events().to_vec()
    }

    /// Number of hierarchies currently cached.
    pub fn cached_hierarchies(&self) -> usize {
        self.inner.lock().unwrap().cache.len()
    }
}
