//! The hierarchy cache: content-fingerprinted AMG setups with LRU eviction
//! and build-time integrity checksums.
//!
//! The cache key is [`Csr::fingerprint`] — FNV-1a over the matrix shape and
//! CSR arrays — so two structurally identical matrices share one hierarchy
//! no matter how they were constructed. Every lookup appends a
//! [`CacheEvent`] to a log that is a pure function of the request stream,
//! which the harness folds into replay fingerprints.
//!
//! Entries are `Arc<Mutex<CachedSetup>>`: the service snapshots the `Arc`
//! under its own lock and runs the numeric solve under the *entry* lock
//! only, so a long solve on one matrix never stalls `submit`/`status` or
//! dispatches of other matrices. Each entry carries a sampled checksum of
//! its hierarchy values, computed at build; a defended service re-verifies
//! it cheaply on every hit and [`quarantine`](HierarchyCache::quarantine)s
//! poisoned entries for rebuild.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use asyncmg_amg::{try_build_hierarchy, BuildError};
use asyncmg_core::{BlockWorkspace, MgSetup};
use asyncmg_sparse::Csr;
use asyncmg_telemetry::CacheEvent;

use crate::request::ServiceOptions;

/// Cap on checksum samples per hierarchy level, so verification stays a
/// negligible fraction of even one V-cycle.
const CHECKSUM_SAMPLES_PER_LEVEL: usize = 1024;

/// FNV-1a over the hierarchy's operator values, sampled with a per-level
/// stride (index 0 of every level is always included, so single-value
/// corruption of a leading entry is always caught; strided corruption
/// elsewhere is caught with probability `samples / nnz`).
pub(crate) fn hierarchy_checksum(setup: &MgSetup) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |h: &mut u64, bits: u64| {
        *h ^= bits;
        *h = h.wrapping_mul(0x100_0000_01b3);
    };
    for k in 0..setup.n_levels() {
        let vals = setup.a(k).vals();
        fold(&mut h, vals.len() as u64);
        let stride = (vals.len() / CHECKSUM_SAMPLES_PER_LEVEL).max(1);
        let mut i = 0;
        while i < vals.len() {
            fold(&mut h, vals[i].to_bits());
            i += stride;
        }
    }
    h
}

/// A cached setup plus the per-matrix state the service reuses across
/// dispatches.
pub(crate) struct CachedSetup {
    /// The AMG hierarchy, interpolants and smoothers.
    pub setup: MgSetup,
    /// Blocked workspace, resized in place as batch widths change.
    pub scratch: BlockWorkspace,
    /// Exponential moving average of solve cost in nanoseconds per
    /// (cycle × right-hand side); 0 until the first timed dispatch. Feeds
    /// the deadline-infeasibility estimate.
    pub ema_ns_per_cycle_rhs: f64,
    /// Sampled checksum of the hierarchy values at build time.
    pub checksum: u64,
}

impl CachedSetup {
    /// Whether the hierarchy still matches its build-time checksum.
    pub fn verify(&self) -> bool {
        hierarchy_checksum(&self.setup) == self.checksum
    }
}

/// Fingerprint-keyed LRU cache of AMG setups.
pub(crate) struct HierarchyCache {
    map: HashMap<u64, (Arc<Mutex<CachedSetup>>, u64)>,
    capacity: usize,
    tick: u64,
    events: Vec<CacheEvent>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl HierarchyCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        HierarchyCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
            events: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached entry for `fingerprint`, building (and possibly
    /// evicting) on a miss. The returned flag is `true` on a hit.
    pub fn get_or_build(
        &mut self,
        fingerprint: u64,
        a: &Csr,
        opts: &ServiceOptions,
    ) -> Result<(Arc<Mutex<CachedSetup>>, bool), BuildError> {
        self.tick += 1;
        if let Some((entry, last_used)) = self.map.get_mut(&fingerprint) {
            self.hits += 1;
            self.events.push(CacheEvent::Hit { fingerprint });
            *last_used = self.tick;
            return Ok((entry.clone(), true));
        }

        let hierarchy = try_build_hierarchy(a.clone(), &opts.amg)?;
        let setup = MgSetup::new(hierarchy, opts.mg);
        let scratch = BlockWorkspace::new(&setup, 1);
        let checksum = hierarchy_checksum(&setup);

        if self.map.len() >= self.capacity {
            // Deterministic LRU: the stamp is a unique monotone counter, so
            // the minimum is unambiguous.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(&fp, _)| fp)
                .expect("cache is non-empty at capacity");
            self.map.remove(&victim);
            self.evictions += 1;
            self.events.push(CacheEvent::Evict { fingerprint: victim });
        }

        self.misses += 1;
        self.events.push(CacheEvent::Miss { fingerprint });
        let entry = Arc::new(Mutex::new(CachedSetup {
            setup,
            scratch,
            ema_ns_per_cycle_rhs: 0.0,
            checksum,
        }));
        self.map.insert(fingerprint, (entry.clone(), self.tick));
        Ok((entry, false))
    }

    /// Drops a poisoned entry and logs the quarantine. Returns whether the
    /// fingerprint was cached.
    pub fn quarantine(&mut self, fingerprint: u64) -> bool {
        if self.map.remove(&fingerprint).is_some() {
            self.events.push(CacheEvent::Quarantine { fingerprint });
            true
        } else {
            false
        }
    }

    /// Scribbles a non-finite value into the cached hierarchy of
    /// `fingerprint` (chaos injection: simulated memory corruption of
    /// long-lived cache state). Returns whether an entry was poisoned.
    pub fn poison(&mut self, fingerprint: u64) -> bool {
        match self.map.get(&fingerprint) {
            Some((entry, _)) => {
                let mut e = entry.lock().unwrap();
                if let Some(v) = e.setup.hierarchy.levels[0].a.vals_mut().first_mut() {
                    *v = f64::NAN;
                }
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::stencil::laplacian_7pt;

    fn opts() -> ServiceOptions {
        ServiceOptions::default()
    }

    #[test]
    fn hit_after_miss_and_lru_eviction() {
        let mut cache = HierarchyCache::new(2);
        let o = opts();
        let m1 = laplacian_7pt(4, 4, 4);
        let m2 = laplacian_7pt(5, 4, 4);
        let m3 = laplacian_7pt(6, 4, 4);
        let (f1, f2, f3) = (m1.fingerprint(), m2.fingerprint(), m3.fingerprint());

        assert!(!cache.get_or_build(f1, &m1, &o).unwrap().1);
        assert!(!cache.get_or_build(f2, &m2, &o).unwrap().1);
        assert!(cache.get_or_build(f1, &m1, &o).unwrap().1);
        // m2 is now least recently used; inserting m3 evicts it.
        assert!(!cache.get_or_build(f3, &m3, &o).unwrap().1);
        assert_eq!(cache.len(), 2);
        assert!(!cache.get_or_build(f2, &m2, &o).unwrap().1);

        assert_eq!(cache.counters(), (1, 4, 2));
        let evicted: Vec<u64> = cache
            .events()
            .iter()
            .filter(|e| matches!(e, CacheEvent::Evict { .. }))
            .map(|e| e.fingerprint())
            .collect();
        assert_eq!(evicted, vec![f2, f1]);
    }

    #[test]
    fn build_failure_surfaces_and_caches_nothing() {
        let mut cache = HierarchyCache::new(2);
        let bad = Csr::from_raw(2, 3, vec![0, 1, 1], vec![0], vec![1.0]);
        let err = match cache.get_or_build(bad.fingerprint(), &bad, &opts()) {
            Err(e) => e,
            Ok(_) => panic!("non-square matrix must not build"),
        };
        assert!(matches!(err, BuildError::NotSquare { .. }));
        assert_eq!(cache.len(), 0);
        assert!(cache.events().is_empty());
    }

    #[test]
    fn checksum_catches_poisoning_and_quarantine_drops_the_entry() {
        let mut cache = HierarchyCache::new(2);
        let o = opts();
        let m = laplacian_7pt(4, 4, 4);
        let fp = m.fingerprint();
        let (entry, _) = cache.get_or_build(fp, &m, &o).unwrap();
        assert!(entry.lock().unwrap().verify(), "fresh build must verify");

        assert!(cache.poison(fp));
        assert!(!entry.lock().unwrap().verify(), "poisoned entry must fail verification");

        assert!(cache.quarantine(fp));
        assert_eq!(cache.len(), 0);
        assert!(!cache.quarantine(fp), "already quarantined");
        assert_eq!(
            cache.events().last().map(|e| e.name()),
            Some("quarantine"),
            "quarantine must be logged"
        );
        // The rebuild is an ordinary miss with a fresh, verifying entry.
        let (rebuilt, hit) = cache.get_or_build(fp, &m, &o).unwrap();
        assert!(!hit);
        assert!(rebuilt.lock().unwrap().verify());
        assert!(!cache.poison(0xdead_beef), "unknown fingerprint is a no-op");
    }
}
