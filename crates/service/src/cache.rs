//! The hierarchy cache: content-fingerprinted AMG setups with LRU eviction.
//!
//! The cache key is [`Csr::fingerprint`] — FNV-1a over the matrix shape and
//! CSR arrays — so two structurally identical matrices share one hierarchy
//! no matter how they were constructed. Every lookup appends a
//! [`CacheEvent`] to a log that is a pure function of the request stream,
//! which the harness folds into replay fingerprints.

use std::collections::HashMap;

use asyncmg_amg::{try_build_hierarchy, BuildError};
use asyncmg_core::{BlockWorkspace, MgSetup};
use asyncmg_sparse::Csr;
use asyncmg_telemetry::CacheEvent;

use crate::request::ServiceOptions;

/// A cached setup plus the per-matrix state the service reuses across
/// dispatches.
pub(crate) struct CachedSetup {
    /// The AMG hierarchy, interpolants and smoothers.
    pub setup: MgSetup,
    /// Blocked workspace, resized in place as batch widths change.
    pub scratch: BlockWorkspace,
    /// Exponential moving average of solve cost in nanoseconds per
    /// (cycle × right-hand side); 0 until the first timed dispatch. Feeds
    /// the deadline-infeasibility estimate.
    pub ema_ns_per_cycle_rhs: f64,
    /// LRU stamp (monotone lookup counter).
    last_used: u64,
}

/// Fingerprint-keyed LRU cache of AMG setups.
pub(crate) struct HierarchyCache {
    map: HashMap<u64, CachedSetup>,
    capacity: usize,
    tick: u64,
    events: Vec<CacheEvent>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl HierarchyCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        HierarchyCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
            events: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached setup for `fingerprint`, building (and possibly
    /// evicting) on a miss. The returned flag is `true` on a hit.
    pub fn get_or_build(
        &mut self,
        fingerprint: u64,
        a: &Csr,
        opts: &ServiceOptions,
    ) -> Result<(&mut CachedSetup, bool), BuildError> {
        self.tick += 1;
        if self.map.contains_key(&fingerprint) {
            self.hits += 1;
            self.events.push(CacheEvent::Hit { fingerprint });
            let entry = self.map.get_mut(&fingerprint).unwrap();
            entry.last_used = self.tick;
            return Ok((entry, true));
        }

        let hierarchy = try_build_hierarchy(a.clone(), &opts.amg)?;
        let setup = MgSetup::new(hierarchy, opts.mg);
        let scratch = BlockWorkspace::new(&setup, 1);

        if self.map.len() >= self.capacity {
            // Deterministic LRU: the stamp is a unique monotone counter, so
            // the minimum is unambiguous.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&fp, _)| fp)
                .expect("cache is non-empty at capacity");
            self.map.remove(&victim);
            self.evictions += 1;
            self.events.push(CacheEvent::Evict { fingerprint: victim });
        }

        self.misses += 1;
        self.events.push(CacheEvent::Miss { fingerprint });
        let entry = self.map.entry(fingerprint).or_insert(CachedSetup {
            setup,
            scratch,
            ema_ns_per_cycle_rhs: 0.0,
            last_used: self.tick,
        });
        Ok((entry, false))
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmg_problems::stencil::laplacian_7pt;

    fn opts() -> ServiceOptions {
        ServiceOptions::default()
    }

    #[test]
    fn hit_after_miss_and_lru_eviction() {
        let mut cache = HierarchyCache::new(2);
        let o = opts();
        let m1 = laplacian_7pt(4, 4, 4);
        let m2 = laplacian_7pt(5, 4, 4);
        let m3 = laplacian_7pt(6, 4, 4);
        let (f1, f2, f3) = (m1.fingerprint(), m2.fingerprint(), m3.fingerprint());

        assert!(!cache.get_or_build(f1, &m1, &o).unwrap().1);
        assert!(!cache.get_or_build(f2, &m2, &o).unwrap().1);
        assert!(cache.get_or_build(f1, &m1, &o).unwrap().1);
        // m2 is now least recently used; inserting m3 evicts it.
        assert!(!cache.get_or_build(f3, &m3, &o).unwrap().1);
        assert_eq!(cache.len(), 2);
        assert!(!cache.get_or_build(f2, &m2, &o).unwrap().1);

        assert_eq!(cache.counters(), (1, 4, 2));
        let evicted: Vec<u64> = cache
            .events()
            .iter()
            .filter(|e| matches!(e, CacheEvent::Evict { .. }))
            .map(|e| e.fingerprint())
            .collect();
        assert_eq!(evicted, vec![f2, f1]);
    }

    #[test]
    fn build_failure_surfaces_and_caches_nothing() {
        let mut cache = HierarchyCache::new(2);
        let bad = Csr::from_raw(2, 3, vec![0, 1, 1], vec![0], vec![1.0]);
        let err = match cache.get_or_build(bad.fingerprint(), &bad, &opts()) {
            Err(e) => e,
            Ok(_) => panic!("non-square matrix must not build"),
        };
        assert!(matches!(err, BuildError::NotSquare { .. }));
        assert_eq!(cache.len(), 0);
        assert!(cache.events().is_empty());
    }
}
