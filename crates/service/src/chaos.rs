//! Deterministic service-level chaos injection.
//!
//! A [`FaultPlan`](asyncmg_threads::FaultPlan) injects faults into the
//! *asynchronous solver runtime* — stalled workers, crashed teams,
//! corrupted correction writes. The service's primary dispatch path is the
//! sequential blocked multiplicative solve, which that machinery cannot
//! reach. A [`ChaosPlan`] fills the gap: it attacks the *service plane*
//! itself, keyed by the service's monotone dispatch counter so a seeded
//! replay hits the exact same dispatches.
//!
//! Two attacks exist, mirroring the failure modes the fault-tolerant plane
//! defends against:
//!
//! * **Column corruption** — after the primary blocked solve of dispatch
//!   `d`, one solution column is corrupted (NaN / ∞ / a flipped exponent
//!   bit) and its true residual recomputed, simulating a silent numeric
//!   fault inside the solve. Detection must then notice the sick column
//!   and rescue it down the degradation ladder.
//! * **Hierarchy poisoning** — before dispatch `d`, a value of the cached
//!   hierarchy about to be used is scribbled, simulating memory
//!   corruption of long-lived cache state. The integrity checksum must
//!   quarantine the entry and rebuild it.

use asyncmg_threads::Corruption;

/// One scripted chaos event, keyed by the service dispatch counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosEvent {
    /// After the primary blocked solve of dispatch `dispatch`, corrupt
    /// solution column `column` (ignored if the batch has fewer columns).
    CorruptColumn {
        /// Dispatch counter value this event fires at.
        dispatch: u64,
        /// Batch column to corrupt.
        column: usize,
        /// How the column's leading entry is corrupted.
        kind: Corruption,
    },
    /// Before dispatch `dispatch`, poison the cached hierarchy of the
    /// fingerprint being dispatched (no-op on a cache miss).
    PoisonHierarchy {
        /// Dispatch counter value this event fires at.
        dispatch: u64,
    },
}

/// A deterministic script of service-plane attacks.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Adds one event (builder-style).
    pub fn with(mut self, event: ChaosEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// The column corruption scheduled for `dispatch`, if any.
    pub fn corrupt_column(&self, dispatch: u64) -> Option<(usize, Corruption)> {
        self.events.iter().find_map(|e| match *e {
            ChaosEvent::CorruptColumn { dispatch: d, column, kind } if d == dispatch => {
                Some((column, kind))
            }
            _ => None,
        })
    }

    /// Whether a hierarchy poisoning is scheduled for `dispatch`.
    pub fn poisons(&self, dispatch: u64) -> bool {
        self.events
            .iter()
            .any(|e| matches!(*e, ChaosEvent::PoisonHierarchy { dispatch: d } if d == dispatch))
    }
}

/// Applies `kind` to one value (NaN, ∞, or a flipped high exponent bit —
/// each makes the corrupted column's recomputed residual non-finite or
/// astronomically large, so sick-column detection fires).
pub(crate) fn corrupt_value(kind: Corruption, v: f64) -> f64 {
    match kind {
        Corruption::Nan => f64::NAN,
        Corruption::Inf => f64::INFINITY,
        Corruption::BitFlip => f64::from_bits(v.to_bits() ^ (1 << 62)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookups_are_keyed_by_dispatch() {
        let plan = ChaosPlan::new()
            .with(ChaosEvent::CorruptColumn { dispatch: 2, column: 1, kind: Corruption::Nan })
            .with(ChaosEvent::PoisonHierarchy { dispatch: 4 });
        assert!(!plan.is_empty());
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.corrupt_column(2), Some((1, Corruption::Nan)));
        assert_eq!(plan.corrupt_column(3), None);
        assert!(plan.poisons(4));
        assert!(!plan.poisons(2));
        assert!(ChaosPlan::new().is_empty());
    }

    #[test]
    fn corruption_makes_values_unmistakably_sick() {
        assert!(corrupt_value(Corruption::Nan, 1.0).is_nan());
        assert!(corrupt_value(Corruption::Inf, 1.0).is_infinite());
        let flipped = corrupt_value(Corruption::BitFlip, 1.0);
        assert!(!flipped.is_finite() || flipped.abs() > 1e100, "got {flipped}");
    }
}
