//! Solver-as-a-service for the asyncmg workspace.
//!
//! [`Solver`](asyncmg_core::Solver) is a per-call builder: the caller owns
//! the AMG setup and pays for it once per matrix, by hand. This crate
//! inverts that ownership for long-lived processes that field many solve
//! requests:
//!
//! * [`SolverService`] — the long-lived front end. It owns a
//!   fingerprint-keyed LRU cache of AMG hierarchies (setup is the dominant
//!   cost; repeat matrices skip it entirely), the blocked workspaces, and
//!   the clock.
//! * [`SolveRequest`] — a cheap description of one solve: matrix (`Arc`),
//!   right-hand side, tolerance / cycle budget, optional deadline and
//!   [`Priority`].
//! * Batched dispatch — each [`SolverService::process_batch`] coalesces up
//!   to `batch_window` queued right-hand sides that share a matrix into one
//!   blocked multiplicative solve
//!   ([`solve_mult_batch_with`](asyncmg_core::solve_mult_batch_with)). The
//!   blocked kernels preserve the single-RHS accumulation order, so each
//!   request's answer is bit-identical to a solo solve.
//! * Admission control — requests carry deadlines on the service clock;
//!   dispatch rejects overdue work and work the running per-matrix cost
//!   estimate says cannot finish in time, ordering the queue by slack.
//!   With [`ServiceOptions::shed_high_water`] set, overload sheds the
//!   lowest-priority, most-slack request instead of stalling the queue.
//! * Fault tolerance — with [`ServiceOptions::resilience`] configured the
//!   service is *defended*: cached hierarchies are checksummed and
//!   quarantined on corruption, sick batch columns are isolated from their
//!   healthy batch-mates and rescued down the degradation ladder, and
//!   per-fingerprint circuit breakers fail fast
//!   ([`Rejection::CircuitOpen`]) after repeated dispatch failures. A
//!   [`ChaosPlan`] drives deterministic fault injection through the whole
//!   plane. The numeric solve runs *off* the service lock, so
//!   `submit`/`status`/`take` never stall behind it.
//! * Telemetry — cache and fault-plane counters surface as
//!   [`ServiceStats`](asyncmg_telemetry::ServiceStats), plus ordered
//!   [`CacheEvent`](asyncmg_telemetry::CacheEvent) and
//!   [`ServiceEvent`](asyncmg_telemetry::ServiceEvent) logs, all
//!   deterministic under a [`VirtualClock`](asyncmg_threads::VirtualClock).
//!
//! ```
//! use std::sync::Arc;
//! use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
//! use asyncmg_service::{ServiceOptions, SolveRequest, SolverService};
//!
//! let service = SolverService::new(ServiceOptions::default());
//! let a = Arc::new(laplacian_7pt(8, 8, 8));
//! let b = random_rhs(a.nrows(), 0);
//!
//! // First solve pays for the AMG setup...
//! let cold = service
//!     .solve(SolveRequest::new(a.clone(), b.clone()).tolerance(1e-8))
//!     .unwrap();
//! assert!(!cold.cache_hit && cold.converged);
//! // ...the second finds the hierarchy in the cache.
//! let warm = service.solve(SolveRequest::new(a, b).tolerance(1e-8)).unwrap();
//! assert!(warm.cache_hit);
//! assert_eq!(warm.x, cold.x);
//! ```

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

mod cache;
mod chaos;
mod request;
mod service;

pub use chaos::{ChaosEvent, ChaosPlan};
pub use request::{
    Priority, Rejection, RequestStatus, ResilienceOptions, ServiceError, ServiceOptions,
    SolveRequest, SolveResponse, Stopped, SubmitError, Ticket, TicketState,
};
pub use service::SolverService;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use asyncmg_core::SolveError;
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
    use asyncmg_sparse::Csr;
    use asyncmg_telemetry::CacheEvent;
    use asyncmg_threads::VirtualClock;

    fn virtual_service(opts: ServiceOptions) -> (SolverService, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (SolverService::with_clock(opts, clock.clone()), clock)
    }

    fn completed(state: TicketState) -> SolveResponse {
        match state {
            TicketState::Ready(RequestStatus::Completed(r)) => r,
            other => panic!("expected completion, got {other:?}"),
        }
    }

    fn rejected(state: TicketState) -> Rejection {
        match state {
            TicketState::Ready(RequestStatus::Rejected(r)) => r,
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn submit_validates_the_request() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let n = a.nrows();

        let short = SolveRequest::new(a.clone(), vec![1.0; n - 1]);
        assert_eq!(
            service.submit(short).unwrap_err(),
            SubmitError::Invalid(SolveError::RhsLength { expected: n, got: n - 1 })
        );

        let mut b = vec![1.0; n];
        b[3] = f64::NAN;
        assert_eq!(
            service.submit(SolveRequest::new(a.clone(), b)).unwrap_err(),
            SubmitError::Invalid(SolveError::NonFiniteRhs { index: 3 })
        );

        let zero = SolveRequest::new(a, vec![1.0; n]).t_max(0);
        assert!(matches!(
            service.submit(zero).unwrap_err(),
            SubmitError::Invalid(SolveError::InvalidOptions(_))
        ));
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let opts = ServiceOptions { queue_capacity: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let b = random_rhs(a.nrows(), 1);

        service.submit(SolveRequest::new(a.clone(), b.clone())).unwrap();
        service.submit(SolveRequest::new(a.clone(), b.clone())).unwrap();
        assert_eq!(
            service.submit(SolveRequest::new(a, b)).unwrap_err(),
            SubmitError::QueueFull { capacity: 2 }
        );
        let stats = service.stats();
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(stats.max_queue_depth, 2);
    }

    #[test]
    fn same_matrix_requests_coalesce_into_one_batch() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(6, 6, 6));
        let tickets: Vec<Ticket> = (0..3)
            .map(|s| {
                let req = SolveRequest::new(a.clone(), random_rhs(a.nrows(), s))
                    .tolerance(1e-8)
                    .t_max(60);
                service.submit(req).unwrap()
            })
            .collect();

        assert_eq!(service.process_batch(), 3);
        for t in tickets {
            let r = completed(service.take(t));
            assert!(r.converged, "relres {} did not converge", r.relres);
            assert_eq!(r.stopped, Stopped::Tolerance);
            assert_eq!(r.batch_size, 3);
            assert!(!r.cache_hit && !r.rescued);
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_rhs, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn distinct_matrices_dispatch_separately_and_hit_on_repeat() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a1 = Arc::new(laplacian_7pt(5, 5, 5));
        let a2 = Arc::new(laplacian_7pt(6, 5, 5));

        let r1 = service.solve(SolveRequest::new(a1.clone(), random_rhs(a1.nrows(), 0))).unwrap();
        let r2 = service.solve(SolveRequest::new(a2.clone(), random_rhs(a2.nrows(), 1))).unwrap();
        let r3 = service.solve(SolveRequest::new(a1.clone(), random_rhs(a1.nrows(), 2))).unwrap();
        assert!(!r1.cache_hit && !r2.cache_hit && r3.cache_hit);

        let names: Vec<&str> = service.cache_events().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["miss", "miss", "hit"]);
        assert_eq!(service.cached_hierarchies(), 2);
    }

    #[test]
    fn expired_deadline_rejects_deterministically() {
        let (service, clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let b = random_rhs(a.nrows(), 3);

        let doomed = service
            .submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_millis(5)))
            .unwrap();
        let fine = service.submit(SolveRequest::new(a, b)).unwrap();

        clock.advance(Duration::from_millis(6));
        assert_eq!(service.process_batch(), 2);
        match rejected(service.take(doomed)) {
            Rejection::DeadlineExpired { deadline_ns, now_ns } => {
                assert_eq!(deadline_ns, 5_000_000);
                assert_eq!(now_ns, 6_000_000);
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        completed(service.take(fine));
        assert_eq!(service.stats().rejected_deadline, 1);
    }

    #[test]
    fn least_slack_request_dispatches_first() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a1 = Arc::new(laplacian_7pt(4, 4, 4));
        let a2 = Arc::new(laplacian_7pt(5, 4, 4));

        // a1 is submitted first but has no deadline; a2 is urgent.
        let relaxed = service.submit(SolveRequest::new(a1, random_rhs(64, 0))).unwrap();
        let urgent = service
            .submit(SolveRequest::new(a2, random_rhs(80, 1)).deadline(Duration::from_secs(1)))
            .unwrap();

        service.process_batch();
        assert!(matches!(service.status(urgent), TicketState::Ready(RequestStatus::Completed(_))));
        assert_eq!(service.status(relaxed), TicketState::Queued);
        service.drain();
        assert!(matches!(service.status(relaxed), TicketState::Ready(RequestStatus::Completed(_))));
    }

    #[test]
    fn build_failure_rejects_the_batch() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        // Structurally valid CSR with a non-finite value: submit-time checks
        // pass (they only look at the rhs), the AMG build rejects it.
        let bad = Arc::new(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![f64::NAN, 1.0]));
        let t = service.submit(SolveRequest::new(bad, vec![1.0, 1.0])).unwrap();
        assert_eq!(service.process_batch(), 1);
        assert!(matches!(rejected(service.take(t)), Rejection::BuildFailed(_)));
        assert_eq!(service.cached_hierarchies(), 0);
    }

    #[test]
    fn batch_window_caps_coalescing() {
        let opts = ServiceOptions { batch_window: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        for s in 0..3 {
            service.submit(SolveRequest::new(a.clone(), random_rhs(a.nrows(), s))).unwrap();
        }
        assert_eq!(service.process_batch(), 2);
        assert_eq!(service.process_batch(), 1);
        let stats = service.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn cache_eviction_under_size_cap() {
        let opts = ServiceOptions { cache_capacity: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let mats: Vec<Arc<Csr>> = (4..7).map(|nx| Arc::new(laplacian_7pt(nx, 4, 4))).collect();
        for m in &mats {
            service.solve(SolveRequest::new(m.clone(), random_rhs(m.nrows(), 0))).unwrap();
        }
        assert_eq!(service.cached_hierarchies(), 2);
        let stats = service.stats();
        assert_eq!(stats.evictions, 1);
        let evicted: Vec<u64> = service
            .cache_events()
            .iter()
            .filter(|e| matches!(e, CacheEvent::Evict { .. }))
            .map(|e| e.fingerprint())
            .collect();
        assert_eq!(evicted, vec![mats[0].fingerprint()]);
    }

    #[test]
    fn ticket_states_cover_the_whole_lifecycle() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(4, 4, 4));

        // Never issued.
        assert_eq!(service.status(Ticket(42)), TicketState::Unknown);
        assert_eq!(service.take(Ticket(42)), TicketState::Unknown);

        let t = service.submit(SolveRequest::new(a, random_rhs(64, 0))).unwrap();
        assert_eq!(service.status(t), TicketState::Queued);
        // Taking a queued ticket does not consume it.
        assert_eq!(service.take(t), TicketState::Queued);
        assert_eq!(service.status(t), TicketState::Queued);

        service.drain();
        assert!(matches!(service.status(t), TicketState::Ready(_)));
        completed(service.take(t));
        // Second take: outcome already claimed.
        assert_eq!(service.take(t), TicketState::Claimed);
        assert_eq!(service.status(t), TicketState::Claimed);
    }

    #[test]
    fn budget_requests_report_stopped_budget_not_converged() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(5, 5, 5));
        // No tolerance: the request runs its cycle budget. `converged` must
        // be false (there was no tolerance to meet) and `stopped` says why.
        let r = service.solve(SolveRequest::new(a, random_rhs(125, 0)).t_max(3)).unwrap();
        assert!(!r.converged);
        assert_eq!(r.stopped, Stopped::Budget);
        assert!(r.relres.is_finite());
    }

    #[test]
    fn resolved_store_is_bounded_with_oldest_first_eviction() {
        let opts = ServiceOptions { resolved_capacity: 4, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));

        let tickets: Vec<Ticket> = (0..8)
            .map(|s| {
                let t = service
                    .submit(SolveRequest::new(a.clone(), random_rhs(64, s)).t_max(5))
                    .unwrap();
                service.drain();
                t
            })
            .collect();

        // The four oldest outcomes were evicted and now read Claimed; the
        // four newest are still Ready.
        assert_eq!(service.stats().resolved_evicted, 4);
        for t in &tickets[..4] {
            assert_eq!(service.status(*t), TicketState::Claimed);
        }
        for t in &tickets[4..] {
            assert!(matches!(service.status(*t), TicketState::Ready(_)));
        }
    }

    #[test]
    fn overload_sheds_lowest_priority_most_slack_victim() {
        let opts = ServiceOptions { shed_high_water: Some(2), ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let b = random_rhs(64, 0);

        let urgent = service
            .submit(
                SolveRequest::new(a.clone(), b.clone())
                    .deadline(Duration::from_secs(1))
                    .priority(Priority::High),
            )
            .unwrap();
        let lazy = service
            .submit(SolveRequest::new(a.clone(), b.clone()).priority(Priority::Low))
            .unwrap();
        // Pushing past the high-water mark sheds `lazy`: lowest priority and
        // most slack, even though it is not the newest submission.
        let third = service.submit(SolveRequest::new(a, b)).unwrap();

        match rejected(service.take(lazy)) {
            Rejection::Shed { queue_depth } => assert_eq!(queue_depth, 2),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(service.stats().shed, 1);
        assert_eq!(
            service.service_events().iter().map(|e| e.name()).collect::<Vec<_>>(),
            vec!["shed"]
        );

        service.drain();
        completed(service.take(urgent));
        completed(service.take(third));
    }

    #[test]
    fn defended_breaker_opens_fails_fast_and_recloses() {
        let res = ResilienceOptions {
            breaker_threshold: 2,
            breaker_backoff: Duration::from_millis(10),
            ..Default::default()
        };
        let opts = ServiceOptions { resilience: Some(res), ..Default::default() };
        let (service, clock) = virtual_service(opts);
        // A matrix whose AMG build always fails: every dispatch is a
        // breaker-visible failure.
        let bad = Arc::new(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![f64::NAN, 1.0]));
        let fp = bad.fingerprint();
        let submit = |svc: &SolverService| {
            svc.submit(SolveRequest::new(bad.clone(), vec![1.0, 1.0])).unwrap()
        };

        // Two build failures trip the threshold-2 breaker...
        for _ in 0..2 {
            let t = submit(&service);
            service.process_batch();
            assert!(matches!(rejected(service.take(t)), Rejection::BuildFailed(_)));
        }
        assert_eq!(service.stats().breaker_opened, 1);

        // ...so the next dispatch fails fast without touching the builder.
        let t = submit(&service);
        service.process_batch();
        match rejected(service.take(t)) {
            Rejection::CircuitOpen { fingerprint, retry_after_ns } => {
                assert_eq!(fingerprint, fp);
                assert!(retry_after_ns > 0 && retry_after_ns <= 10_000_000);
            }
            other => panic!("expected circuit-open, got {other:?}"),
        }
        assert_eq!(service.stats().rejected_circuit_open, 1);

        // After the backoff, a half-open probe runs (and fails again,
        // re-opening with doubled backoff).
        clock.advance(Duration::from_millis(11));
        let t = submit(&service);
        service.process_batch();
        assert!(matches!(rejected(service.take(t)), Rejection::BuildFailed(_)));
        assert_eq!(service.stats().breaker_opened, 2);

        let names: Vec<&str> = service.service_events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["breaker_opened", "breaker_half_open", "breaker_opened"],
            "breaker transitions must be logged in order"
        );
    }

    #[test]
    fn poisoned_hierarchy_is_quarantined_and_rebuilt() {
        let chaos = ChaosPlan::new().with(ChaosEvent::PoisonHierarchy { dispatch: 1 });
        let res = ResilienceOptions { chaos: Some(chaos), ..Default::default() };
        let opts = ServiceOptions { resilience: Some(res), ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(6, 6, 6));
        let b = random_rhs(a.nrows(), 7);

        let clean = service
            .solve(SolveRequest::new(a.clone(), b.clone()).tolerance(1e-8).t_max(60))
            .unwrap();
        // Dispatch 1 poisons the cached hierarchy; the hit's integrity check
        // must quarantine it and rebuild, and the answer must match the
        // clean solve bit for bit.
        let healed = service.solve(SolveRequest::new(a, b).tolerance(1e-8).t_max(60)).unwrap();
        assert_eq!(healed.x, clean.x);
        assert!(!healed.cache_hit, "rebuilt entry is a miss");

        let stats = service.stats();
        assert_eq!(stats.quarantined, 1);
        assert!(service.service_events().iter().any(|e| e.name() == "quarantined"));
        let cache_names: Vec<&str> = service.cache_events().iter().map(|e| e.name()).collect();
        assert_eq!(cache_names, vec!["miss", "hit", "quarantine", "miss"]);
    }

    #[test]
    fn corrupted_column_is_isolated_and_rescued() {
        use asyncmg_threads::Corruption;
        let chaos = ChaosPlan::new().with(ChaosEvent::CorruptColumn {
            dispatch: 0,
            column: 1,
            kind: Corruption::Nan,
        });
        let res =
            ResilienceOptions { chaos: Some(chaos), session_seed: Some(7), ..Default::default() };
        let opts = ServiceOptions { resilience: Some(res), ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(6, 6, 6));

        let tickets: Vec<Ticket> = (0..3)
            .map(|s| {
                service
                    .submit(
                        SolveRequest::new(a.clone(), random_rhs(a.nrows(), s))
                            .tolerance(1e-8)
                            .t_max(60),
                    )
                    .unwrap()
            })
            .collect();
        assert_eq!(service.process_batch(), 3);

        // Columns 0 and 2 ride the batch unharmed; column 1 was corrupted,
        // detected, and rescued solo.
        for (i, t) in tickets.iter().enumerate() {
            let r = completed(service.take(*t));
            assert!(r.converged, "column {i}: relres {}", r.relres);
            assert_eq!(r.rescued, i == 1, "column {i}");
        }
        let stats = service.stats();
        assert_eq!(stats.rescued, 1);
        assert_eq!(stats.completed, 3);
        assert!(service.service_events().iter().any(|e| matches!(
            e,
            asyncmg_telemetry::ServiceEvent::Rescued { ticket: 1, converged: true, .. }
        )));
    }
}
