//! Solver-as-a-service for the asyncmg workspace.
//!
//! [`Solver`](asyncmg_core::Solver) is a per-call builder: the caller owns
//! the AMG setup and pays for it once per matrix, by hand. This crate
//! inverts that ownership for long-lived processes that field many solve
//! requests:
//!
//! * [`SolverService`] — the long-lived front end. It owns a
//!   fingerprint-keyed LRU cache of AMG hierarchies (setup is the dominant
//!   cost; repeat matrices skip it entirely), the blocked workspaces, and
//!   the clock.
//! * [`SolveRequest`] — a cheap description of one solve: matrix (`Arc`),
//!   right-hand side, tolerance / cycle budget, optional deadline.
//! * Batched dispatch — each [`SolverService::process_batch`] coalesces up
//!   to `batch_window` queued right-hand sides that share a matrix into one
//!   blocked multiplicative solve
//!   ([`solve_mult_batch_with`](asyncmg_core::solve_mult_batch_with)). The
//!   blocked kernels preserve the single-RHS accumulation order, so each
//!   request's answer is bit-identical to a solo solve.
//! * Admission control — requests carry deadlines on the service clock;
//!   dispatch rejects overdue work and work the running per-matrix cost
//!   estimate says cannot finish in time, ordering the queue by slack.
//! * Telemetry — cache hits/misses/evictions and queue counters surface as
//!   [`ServiceStats`](asyncmg_telemetry::ServiceStats) and an ordered
//!   [`CacheEvent`](asyncmg_telemetry::CacheEvent) log, both deterministic
//!   under a [`VirtualClock`](asyncmg_threads::VirtualClock).
//!
//! ```
//! use std::sync::Arc;
//! use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
//! use asyncmg_service::{ServiceOptions, SolveRequest, SolverService};
//!
//! let service = SolverService::new(ServiceOptions::default());
//! let a = Arc::new(laplacian_7pt(8, 8, 8));
//! let b = random_rhs(a.nrows(), 0);
//!
//! // First solve pays for the AMG setup...
//! let cold = service
//!     .solve(SolveRequest::new(a.clone(), b.clone()).tolerance(1e-8))
//!     .unwrap();
//! assert!(!cold.cache_hit && cold.converged);
//! // ...the second finds the hierarchy in the cache.
//! let warm = service.solve(SolveRequest::new(a, b).tolerance(1e-8)).unwrap();
//! assert!(warm.cache_hit);
//! assert_eq!(warm.x, cold.x);
//! ```

// Indexed loops over multiple parallel arrays are the house style for
// numerical kernels; the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

mod cache;
mod request;
mod service;

pub use request::{
    Rejection, RequestStatus, ServiceError, ServiceOptions, SolveRequest, SolveResponse,
    SubmitError, Ticket,
};
pub use service::SolverService;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use asyncmg_core::SolveError;
    use asyncmg_problems::{rhs::random_rhs, stencil::laplacian_7pt};
    use asyncmg_sparse::Csr;
    use asyncmg_telemetry::CacheEvent;
    use asyncmg_threads::VirtualClock;

    fn virtual_service(opts: ServiceOptions) -> (SolverService, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (SolverService::with_clock(opts, clock.clone()), clock)
    }

    #[test]
    fn submit_validates_the_request() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let n = a.nrows();

        let short = SolveRequest::new(a.clone(), vec![1.0; n - 1]);
        assert_eq!(
            service.submit(short).unwrap_err(),
            SubmitError::Invalid(SolveError::RhsLength { expected: n, got: n - 1 })
        );

        let mut b = vec![1.0; n];
        b[3] = f64::NAN;
        assert_eq!(
            service.submit(SolveRequest::new(a.clone(), b)).unwrap_err(),
            SubmitError::Invalid(SolveError::NonFiniteRhs { index: 3 })
        );

        let zero = SolveRequest::new(a, vec![1.0; n]).t_max(0);
        assert!(matches!(
            service.submit(zero).unwrap_err(),
            SubmitError::Invalid(SolveError::InvalidOptions(_))
        ));
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let opts = ServiceOptions { queue_capacity: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let b = random_rhs(a.nrows(), 1);

        service.submit(SolveRequest::new(a.clone(), b.clone())).unwrap();
        service.submit(SolveRequest::new(a.clone(), b.clone())).unwrap();
        assert_eq!(
            service.submit(SolveRequest::new(a, b)).unwrap_err(),
            SubmitError::QueueFull { capacity: 2 }
        );
        let stats = service.stats();
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(stats.max_queue_depth, 2);
    }

    #[test]
    fn same_matrix_requests_coalesce_into_one_batch() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(6, 6, 6));
        let tickets: Vec<Ticket> = (0..3)
            .map(|s| {
                let req = SolveRequest::new(a.clone(), random_rhs(a.nrows(), s))
                    .tolerance(1e-8)
                    .t_max(60);
                service.submit(req).unwrap()
            })
            .collect();

        assert_eq!(service.process_batch(), 3);
        for t in tickets {
            match service.take(t).unwrap() {
                RequestStatus::Completed(r) => {
                    assert!(r.converged, "relres {} did not converge", r.relres);
                    assert_eq!(r.batch_size, 3);
                    assert!(!r.cache_hit);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_rhs, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn distinct_matrices_dispatch_separately_and_hit_on_repeat() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a1 = Arc::new(laplacian_7pt(5, 5, 5));
        let a2 = Arc::new(laplacian_7pt(6, 5, 5));

        let r1 = service.solve(SolveRequest::new(a1.clone(), random_rhs(a1.nrows(), 0))).unwrap();
        let r2 = service.solve(SolveRequest::new(a2.clone(), random_rhs(a2.nrows(), 1))).unwrap();
        let r3 = service.solve(SolveRequest::new(a1.clone(), random_rhs(a1.nrows(), 2))).unwrap();
        assert!(!r1.cache_hit && !r2.cache_hit && r3.cache_hit);

        let names: Vec<&str> = service.cache_events().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["miss", "miss", "hit"]);
        assert_eq!(service.cached_hierarchies(), 2);
    }

    #[test]
    fn expired_deadline_rejects_deterministically() {
        let (service, clock) = virtual_service(ServiceOptions::default());
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        let b = random_rhs(a.nrows(), 3);

        let doomed = service
            .submit(SolveRequest::new(a.clone(), b.clone()).deadline(Duration::from_millis(5)))
            .unwrap();
        let fine = service.submit(SolveRequest::new(a, b)).unwrap();

        clock.advance(Duration::from_millis(6));
        assert_eq!(service.process_batch(), 2);
        match service.take(doomed).unwrap() {
            RequestStatus::Rejected(Rejection::DeadlineExpired { deadline_ns, now_ns }) => {
                assert_eq!(deadline_ns, 5_000_000);
                assert_eq!(now_ns, 6_000_000);
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        assert!(matches!(service.take(fine).unwrap(), RequestStatus::Completed(_)));
        assert_eq!(service.stats().rejected_deadline, 1);
    }

    #[test]
    fn least_slack_request_dispatches_first() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        let a1 = Arc::new(laplacian_7pt(4, 4, 4));
        let a2 = Arc::new(laplacian_7pt(5, 4, 4));

        // a1 is submitted first but has no deadline; a2 is urgent.
        let relaxed = service.submit(SolveRequest::new(a1, random_rhs(64, 0))).unwrap();
        let urgent = service
            .submit(SolveRequest::new(a2, random_rhs(80, 1)).deadline(Duration::from_secs(1)))
            .unwrap();

        service.process_batch();
        assert!(matches!(service.status(urgent).unwrap(), RequestStatus::Completed(_)));
        assert!(matches!(service.status(relaxed).unwrap(), RequestStatus::Queued));
        service.drain();
        assert!(matches!(service.status(relaxed).unwrap(), RequestStatus::Completed(_)));
    }

    #[test]
    fn build_failure_rejects_the_batch() {
        let (service, _clock) = virtual_service(ServiceOptions::default());
        // Structurally valid CSR with a non-finite value: submit-time checks
        // pass (they only look at the rhs), the AMG build rejects it.
        let bad = Arc::new(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![f64::NAN, 1.0]));
        let t = service.submit(SolveRequest::new(bad, vec![1.0, 1.0])).unwrap();
        assert_eq!(service.process_batch(), 1);
        assert!(matches!(
            service.take(t).unwrap(),
            RequestStatus::Rejected(Rejection::BuildFailed(_))
        ));
        assert_eq!(service.cached_hierarchies(), 0);
    }

    #[test]
    fn batch_window_caps_coalescing() {
        let opts = ServiceOptions { batch_window: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let a = Arc::new(laplacian_7pt(4, 4, 4));
        for s in 0..3 {
            service.submit(SolveRequest::new(a.clone(), random_rhs(a.nrows(), s))).unwrap();
        }
        assert_eq!(service.process_batch(), 2);
        assert_eq!(service.process_batch(), 1);
        let stats = service.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn cache_eviction_under_size_cap() {
        let opts = ServiceOptions { cache_capacity: 2, ..Default::default() };
        let (service, _clock) = virtual_service(opts);
        let mats: Vec<Arc<Csr>> = (4..7).map(|nx| Arc::new(laplacian_7pt(nx, 4, 4))).collect();
        for m in &mats {
            service.solve(SolveRequest::new(m.clone(), random_rhs(m.nrows(), 0))).unwrap();
        }
        assert_eq!(service.cached_hierarchies(), 2);
        let stats = service.stats();
        assert_eq!(stats.evictions, 1);
        let evicted: Vec<u64> = service
            .cache_events()
            .iter()
            .filter(|e| matches!(e, CacheEvent::Evict { .. }))
            .map(|e| e.fingerprint())
            .collect();
        assert_eq!(evicted, vec![mats[0].fingerprint()]);
    }
}
