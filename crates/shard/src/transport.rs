//! The transport abstraction: how shard ranks exchange [`Msg`]s.
//!
//! The solver never touches shared vectors across shard boundaries — every
//! inter-shard byte goes through a [`Transport`]. Two implementations ship:
//! [`InProcChannel`](crate::InProcChannel) (production, lock-free SPSC
//! rings) and [`VirtualTransport`](crate::VirtualTransport) (seeded delay /
//! reorder / drop for deterministic testing). The ROADMAP's network backend
//! slots in behind this same trait.

use crate::msg::Msg;
use asyncmg_telemetry::ShardMessageStats;

/// A non-blocking, unordered-at-worst message fabric between `n_ranks`
/// ranks.
///
/// Contract:
/// * [`Transport::send`] never blocks. A transport that cannot accept a
///   message counts it (dropped or overflowed) and returns.
/// * [`Transport::try_recv`] never blocks: `None` means "nothing deliverable
///   right now", not "stream ended".
/// * Control messages ([`Msg::is_control`]) are never dropped, though they
///   may be arbitrarily delayed or reordered.
/// * Counters satisfy conservation: every sent message is eventually
///   exactly one of delivered, dropped, overflowed, or still pending —
///   [`TransportStats::conserved`] checks the balance once the fabric is
///   quiescent.
pub trait Transport: Sync {
    /// Number of ranks the fabric connects (shards + hub).
    fn n_ranks(&self) -> usize;

    /// Queues `msg` from rank `from` to rank `to`. Never blocks.
    fn send(&self, from: usize, to: usize, msg: Msg);

    /// The next deliverable message addressed to `rank`, if any. Never
    /// blocks. Only rank `rank`'s own thread may call this (receive side is
    /// single-consumer per rank).
    fn try_recv(&self, rank: usize) -> Option<Msg>;

    /// Current counter snapshot (exact when the fabric is quiescent).
    fn stats(&self) -> TransportStats;
}

/// Message counters of one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankCounters {
    /// Messages this rank handed to the transport (including ones later
    /// dropped or overflowed).
    pub sent: u64,
    /// Messages this rank received via `try_recv`.
    pub delivered: u64,
    /// Messages addressed to this rank the transport dropped (lossy links).
    pub dropped: u64,
    /// Messages addressed to this rank rejected by a full queue.
    pub overflowed: u64,
}

/// A counter snapshot of a whole [`Transport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Counters by rank.
    pub per_rank: Vec<RankCounters>,
    /// Messages queued but not yet received (exact when quiescent).
    pub pending: u64,
}

impl TransportStats {
    /// Sum of a counter over all ranks.
    fn total(&self, f: impl Fn(&RankCounters) -> u64) -> u64 {
        self.per_rank.iter().map(f).sum()
    }

    /// Total messages handed to the transport.
    pub fn total_sent(&self) -> u64 {
        self.total(|c| c.sent)
    }

    /// Total messages received.
    pub fn total_delivered(&self) -> u64 {
        self.total(|c| c.delivered)
    }

    /// Total messages dropped by the transport.
    pub fn total_dropped(&self) -> u64 {
        self.total(|c| c.dropped)
    }

    /// Total messages rejected by full queues.
    pub fn total_overflowed(&self) -> u64 {
        self.total(|c| c.overflowed)
    }

    /// The message-conservation invariant: once the fabric is quiescent,
    /// `sent == delivered + dropped + overflowed + pending`.
    pub fn conserved(&self) -> bool {
        self.total_sent()
            == self.total_delivered()
                + self.total_dropped()
                + self.total_overflowed()
                + self.pending
    }

    /// The telemetry form of the snapshot (the trace's `"messages"` array).
    pub fn to_telemetry(&self) -> Vec<ShardMessageStats> {
        self.per_rank
            .iter()
            .enumerate()
            .map(|(rank, c)| ShardMessageStats {
                rank: rank as u32,
                sent: c.sent,
                delivered: c.delivered,
                dropped: c.dropped,
                overflowed: c.overflowed,
                retransmits: 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balance() {
        let stats = TransportStats {
            per_rank: vec![
                RankCounters { sent: 10, delivered: 7, dropped: 1, overflowed: 0 },
                RankCounters { sent: 5, delivered: 5, dropped: 0, overflowed: 1 },
            ],
            pending: 1,
        };
        assert_eq!(stats.total_sent(), 15);
        assert!(stats.conserved());
        let telemetry = stats.to_telemetry();
        assert_eq!(telemetry[1].rank, 1);
        assert_eq!(telemetry[0].delivered, 7);

        let unbalanced = TransportStats { pending: 0, ..stats };
        assert!(!unbalanced.conserved());
    }
}
